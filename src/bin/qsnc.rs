//! `qsnc` — command-line front end for the quantization-aware spiking
//! neuromorphic pipeline.
//!
//! ```bash
//! qsnc train     --model lenet --bits 4 --epochs 5 --out model.qsnc
//! qsnc evaluate  --model lenet --bits 4 --checkpoint model.qsnc
//! qsnc deploy    --model lenet --bits 4 --checkpoint model.qsnc \
//!                [--write-sigma 0.05] [--artifact model.qsnca]
//! qsnc serve     --artifact model.qsnca [--artifact canary=other.qsnca]... \
//!                [--addr 127.0.0.1:7643] [--admin 127.0.0.1:0] [--quota N]
//! qsnc hardware  --model alexnet --bits 4 [--crossbar 32] [--pipelined]
//! qsnc info
//! ```
//!
//! Every run is deterministic given `--seed`.

use qsnc::core::{
    deploy_to_snc, export_artifact, snc_accuracy, train_quant_aware, QuantConfig, TrainSettings,
};
use qsnc::data::{synth_digits, synth_objects, Dataset};
use qsnc::memristor::{network_geometry, ExecutionMode, HwModel};
use qsnc::nn::train::evaluate;
use qsnc::nn::{load_params, save_params, ModelKind, Sequential};
use qsnc::quant::{insert_signal_stages, ActivationQuantizer, ActivationRegularizer};
use qsnc::tensor::TensorRng;
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
qsnc — data quantization-aware deep networks for spiking neuromorphic systems

USAGE:
  qsnc <command> [--key value]...

COMMANDS:
  train      train a quantization-aware model and save a checkpoint
  evaluate   evaluate a saved checkpoint (software-quantized accuracy)
  deploy     compile a checkpoint onto the memristor substrate and measure
  serve      serve a .qsnca deployment artifact over TCP (no training stack)
  hardware   print the Table-5 style speed/energy/area model for a topology
  info       print the workspace's reproduction summary

COMMON OPTIONS:
  --model lenet|alexnet|resnet   network topology        [lenet]
  --bits N                       signal & weight bits    [4]
  --width F                      channel width multiple  [0.5]
  --epochs N                     training epochs         [4]
  --examples N                   dataset size            [4000]
  --seed N                       RNG seed                [2018]
  --checkpoint PATH / --out PATH checkpoint file
  --crossbar N                   crossbar edge (hardware) [32]
  --pipelined                    pipelined schedule (hardware)
  --write-sigma F                device write variation (deploy) [0]
  --artifact PATH                .qsnca artifact to write (deploy) or serve;
                                 `serve` falls back to QSNC_SERVE_ARTIFACT
                                 (a comma-separated list of the same syntax)
  --artifact NAME=PATH           (serve, repeatable) register the artifact
                                 under model NAME; the first artifact is the
                                 default model that v1/v2 clients reach
  --addr HOST:PORT               serve listen address [127.0.0.1:7643]
  --admin HOST:PORT              serve admin endpoint (metrics, GET /models,
                                 POST /models/swap); off by default
  --quota N                      serve per-model admission quota (default:
                                 unlimited; per-model Busy above it)
";

/// Parsed command-line arguments: a command plus `--key value` pairs.
/// Repeating an option accumulates values in order (`--artifact a
/// --artifact b`); single-valued accessors take the last occurrence.
#[derive(Debug, Clone, PartialEq)]
struct Args {
    command: String,
    options: HashMap<String, Vec<String>>,
    flags: Vec<String>,
}

/// Splits raw arguments into a command, `--key value` options, and bare
/// `--flag`s. Returns an error message for malformed input.
fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut iter = raw.iter().peekable();
    let command = iter
        .next()
        .ok_or_else(|| "missing command".to_string())?
        .clone();
    if command.starts_with("--") {
        return Err(format!("expected a command before {command}"));
    }
    let mut options: HashMap<String, Vec<String>> = HashMap::new();
    let mut flags = Vec::new();
    while let Some(arg) = iter.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected positional argument {arg}"))?;
        match iter.peek() {
            Some(next) if !next.starts_with("--") => {
                options
                    .entry(key.to_string())
                    .or_default()
                    .push(iter.next().unwrap().clone());
            }
            _ => flags.push(key.to_string()),
        }
    }
    Ok(Args {
        command,
        options,
        flags,
    })
}

impl Args {
    /// Last occurrence of a single-valued option, or `None`.
    fn get(&self, key: &str) -> Option<&String> {
        self.options.get(key).and_then(|v| v.last())
    }

    /// Every occurrence of a repeatable option, in command-line order.
    fn all(&self, key: &str) -> &[String] {
        self.options.get(key).map_or(&[], Vec::as_slice)
    }

    fn get_or(&self, key: &str, default: &str) -> String {
        self.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

fn model_kind(name: &str) -> Result<ModelKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "lenet" => Ok(ModelKind::Lenet),
        "alexnet" => Ok(ModelKind::Alexnet),
        "resnet" => Ok(ModelKind::Resnet),
        other => Err(format!("unknown model {other} (expected lenet|alexnet|resnet)")),
    }
}

fn dataset_for(kind: ModelKind, n: usize, rng: &mut TensorRng) -> Dataset {
    match kind {
        ModelKind::Lenet => synth_digits(n, rng),
        _ => synth_objects(n, rng),
    }
}

/// Rebuilds the quantized topology used by train/evaluate/deploy.
fn build_quantized_topology(
    kind: ModelKind,
    width: f32,
    bits: u32,
    classes: usize,
    seed: u64,
) -> Sequential {
    let mut rng = TensorRng::seed(seed);
    let mut net = qsnc::nn::models::build_model(kind, width, classes, &mut rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(bits),
        0.0,
        ActivationQuantizer::new(bits),
    );
    switch.set_enabled(true);
    net
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let kind = model_kind(&args.get_or("model", "lenet"))?;
    let bits: u32 = args.parse_or("bits", 4)?;
    let width: f32 = args.parse_or("width", 0.5)?;
    let epochs: usize = args.parse_or("epochs", 4)?;
    let examples: usize = args.parse_or("examples", 4000)?;
    let seed: u64 = args.parse_or("seed", 2018)?;
    let out = args.get_or("out", "model.qsnc");

    let mut rng = TensorRng::seed(seed);
    let (train, test) = dataset_for(kind, examples, &mut rng).split(0.8);
    let settings = TrainSettings {
        epochs,
        verbose: true,
        ..TrainSettings::default()
    };
    let quant = QuantConfig::paper(bits, bits);
    eprintln!("training {bits}-bit quantization-aware {kind} (width {width})…");
    let mut model = train_quant_aware(kind, width, &settings, &quant, &train, &test, seed);
    println!("fp32-signal accuracy : {:.2}%", model.float_accuracy * 100.0);
    println!("quantized accuracy   : {:.2}%", model.quantized_accuracy * 100.0);

    let file = std::fs::File::create(&out).map_err(|e| format!("cannot create {out}: {e}"))?;
    save_params(&mut model.net, file).map_err(|e| e.to_string())?;
    println!("checkpoint written to {out}");
    Ok(())
}

/// Loaded checkpoint state: the restored network plus the config it was
/// rebuilt under and the FNV-1a-64 digest of the exact checkpoint bytes
/// (artifact provenance).
struct LoadedCheckpoint {
    net: Sequential,
    kind: ModelKind,
    bits: u32,
    seed: u64,
    examples: usize,
    digest: u64,
}

fn load_into_topology(args: &Args) -> Result<LoadedCheckpoint, String> {
    let kind = model_kind(&args.get_or("model", "lenet"))?;
    let bits: u32 = args.parse_or("bits", 4)?;
    let width: f32 = args.parse_or("width", 0.5)?;
    let seed: u64 = args.parse_or("seed", 2018)?;
    let examples: usize = args.parse_or("examples", 4000)?;
    let path = args
        .get("checkpoint")
        .ok_or_else(|| "--checkpoint is required".to_string())?;
    let mut net = build_quantized_topology(kind, width, bits, 10, seed);
    // One read serves both the parameter restore and the provenance digest,
    // so the digest is over the exact bytes that shaped the network.
    let bytes = std::fs::read(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let digest = qsnc::nn::checkpoint_digest(&bytes);
    load_params(&mut net, bytes.as_slice()).map_err(|e| e.to_string())?;
    Ok(LoadedCheckpoint { net, kind, bits, seed, examples, digest })
}

fn cmd_evaluate(args: &Args) -> Result<(), String> {
    let LoadedCheckpoint { mut net, kind, seed, examples, .. } = load_into_topology(args)?;
    let mut rng = TensorRng::seed(seed);
    let (_, test) = dataset_for(kind, examples, &mut rng).split(0.8);
    let acc = evaluate(&mut net, &test.batches(64, None));
    println!("software-quantized accuracy: {:.2}%", acc * 100.0);
    Ok(())
}

fn cmd_deploy(args: &Args) -> Result<(), String> {
    let LoadedCheckpoint { net, kind, bits, seed, examples, digest } = load_into_topology(args)?;
    let write_sigma: f32 = args.parse_or("write-sigma", 0.0)?;
    let quant = QuantConfig::paper(bits, bits);
    let snn = if write_sigma > 0.0 {
        let mut cfg = qsnc::memristor::DeployConfig::paper(bits, bits);
        cfg.device = cfg.device.with_noise(write_sigma, 0.0);
        let mut noise_rng = TensorRng::seed(seed ^ 0xdead);
        qsnc::memristor::SpikingNetwork::compile(&net, &cfg, Some(&mut noise_rng))
            .map_err(|e| e.to_string())?
    } else {
        deploy_to_snc(&net, &quant, None).map_err(|e| e.to_string())?
    };
    println!(
        "deployed on {} crossbars / {} devices (write σ = {write_sigma})",
        snn.crossbar_count(),
        snn.device_count()
    );
    if let Some(artifact) = args.get("artifact") {
        export_artifact(&snn, kind, &quant, digest, artifact)
            .map_err(|e| format!("cannot write artifact {artifact}: {e}"))?;
        println!("artifact written to {artifact} (checkpoint digest {digest:016x})");
    }
    let mut rng = TensorRng::seed(seed);
    let (_, test) = dataset_for(kind, examples, &mut rng).split(0.8);
    let sample = test.batches(100, None);
    let acc = snc_accuracy(&snn, &sample[..1], None);
    println!("spiking accuracy on 100 examples: {:.2}%", acc * 100.0);
    Ok(())
}

/// Splits one `--artifact` value into `(model name, path)`: `NAME=PATH`
/// registers under `NAME` (only when the part before `=` looks like a
/// name, not a path), a bare `PATH` registers under `default`.
fn artifact_spec(raw: &str) -> (String, String) {
    match raw.split_once('=') {
        Some((name, path))
            if !name.is_empty() && !name.contains('/') && !name.contains('\\') =>
        {
            (name.to_string(), path.to_string())
        }
        _ => ("default".to_string(), raw.to_string()),
    }
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    // --artifact (repeatable) wins; QSNC_SERVE_ARTIFACT — a comma-separated
    // list of the same NAME=PATH / PATH syntax — lets process supervisors
    // point a plain `qsnc serve` at the deployment artifacts.
    let raw_artifacts: Vec<String> = if args.all("artifact").is_empty() {
        std::env::var("QSNC_SERVE_ARTIFACT")
            .map_err(|_| "--artifact (or QSNC_SERVE_ARTIFACT) is required".to_string())?
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    } else {
        args.all("artifact").to_vec()
    };
    if raw_artifacts.is_empty() {
        return Err("--artifact (or QSNC_SERVE_ARTIFACT) is required".to_string());
    }
    let addr = args.get_or("addr", "127.0.0.1:7643");

    let mut specs = Vec::with_capacity(raw_artifacts.len());
    for raw in &raw_artifacts {
        let (name, path) = artifact_spec(raw);
        let spec = qsnc::serve::ModelSpec::from_artifact(name, &path)
            .map_err(|e| format!("cannot load artifact {path}: {e}"))?;
        eprintln!(
            "loaded model '{}' from {path} ({} input dims, checkpoint digest {:016x})",
            spec.name,
            spec.input_dims.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("x"),
            spec.checkpoint_digest,
        );
        specs.push(spec);
    }

    let mut config = qsnc::serve::ServeConfig::from_env();
    if let Some(admin) = args.get("admin") {
        config.admin_addr = Some(admin.clone());
    }
    if let Some(quota) = args.get("quota") {
        let quota: usize = quota
            .parse()
            .map_err(|_| format!("invalid value for --quota: {quota}"))?;
        config.model_quota = Some(quota.max(1));
    }
    let server = qsnc::serve::Server::spawn_models(specs, addr.as_str(), config)
        .map_err(|e| format!("cannot serve on {addr}: {e}"))?;
    // Flushed lines with the resolved addresses: supervisors and tests
    // parse these to learn the ephemeral ports.
    println!("listening on {}", server.local_addr());
    if let Some(admin) = server.admin_local_addr() {
        println!("admin on {admin}");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    // Serve until killed; the server threads own all the work.
    loop {
        std::thread::park();
    }
}

fn cmd_hardware(args: &Args) -> Result<(), String> {
    let kind = model_kind(&args.get_or("model", "lenet"))?;
    let bits: u32 = args.parse_or("bits", 4)?;
    let width: f32 = args.parse_or("width", 1.0)?;
    let crossbar: usize = args.parse_or("crossbar", 32)?;
    let mode = if args.has_flag("pipelined") {
        ExecutionMode::Pipelined
    } else {
        ExecutionMode::LayerSequential
    };
    let mut rng = TensorRng::seed(0);
    let net = qsnc::nn::models::build_model(kind, width, 10, &mut rng);
    let geo = network_geometry(&net.synaptic_descriptors(), crossbar);
    let model = HwModel::calibrated();
    let r = model.evaluate_with_mode(&geo, bits, bits, mode);
    let base = model.evaluate(&geo, 8, 8);
    println!("{kind} @ {bits}-bit, {crossbar}×{crossbar} crossbars, {mode:?}:");
    println!("  layers     : {}", r.layers);
    println!("  crossbars  : {}", r.crossbars);
    println!("  speed      : {:.2} MHz ({:.1}× vs 8-bit)", r.speed_mhz, r.speedup_over(&base));
    println!("  energy     : {:.2} µJ ({:.1}% saving)", r.energy_uj, r.energy_saving_over(&base) * 100.0);
    println!("  area       : {:.2} mm² ({:.1}% saving)", r.area_mm2, r.area_saving_over(&base) * 100.0);
    Ok(())
}

fn cmd_info() -> Result<(), String> {
    println!("qsnc {}", env!("CARGO_PKG_VERSION"));
    println!("reproduction of Liu & Liu, DAC 2018 (arXiv:1805.03054)");
    println!("see DESIGN.md for the system inventory and EXPERIMENTS.md for");
    println!("paper-vs-measured results; regenerate tables with qsnc-bench bins.");
    Ok(())
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        println!("{USAGE}");
        return Ok(());
    }
    let args = parse_args(&raw)?;
    match args.command.as_str() {
        "train" => cmd_train(&args),
        "evaluate" => cmd_evaluate(&args),
        "deploy" => cmd_deploy(&args),
        "serve" => cmd_serve(&args),
        "hardware" => cmd_hardware(&args),
        "info" => cmd_info(),
        other => Err(format!("unknown command {other}\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_command_with_options_and_flags() {
        let a = parse_args(&args(&["train", "--model", "alexnet", "--pipelined", "--bits", "3"]))
            .unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.get("model"), Some(&"alexnet".to_string()));
        assert_eq!(a.get("bits"), Some(&"3".to_string()));
        assert!(a.has_flag("pipelined"));
    }

    #[test]
    fn repeated_options_accumulate_in_order() {
        let a = parse_args(&args(&[
            "serve", "--artifact", "a.qsnca", "--artifact", "canary=b.qsnca", "--addr", "x",
            "--addr", "y",
        ]))
        .unwrap();
        assert_eq!(a.all("artifact"), ["a.qsnca", "canary=b.qsnca"]);
        // Single-valued accessors take the last occurrence.
        assert_eq!(a.get_or("addr", "z"), "y");
        assert!(a.all("missing").is_empty());
    }

    #[test]
    fn artifact_specs_split_names_from_paths() {
        assert_eq!(artifact_spec("model.qsnca"), ("default".into(), "model.qsnca".into()));
        assert_eq!(artifact_spec("canary=b.qsnca"), ("canary".into(), "b.qsnca".into()));
        // A path containing '=' after a '/' is a path, not a name.
        assert_eq!(
            artifact_spec("/tmp/run=3/m.qsnca"),
            ("default".into(), "/tmp/run=3/m.qsnca".into())
        );
        assert_eq!(artifact_spec("=x.qsnca"), ("default".into(), "=x.qsnca".into()));
    }

    #[test]
    fn missing_command_is_error() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["--model", "lenet"])).is_err());
    }

    #[test]
    fn positional_arguments_rejected() {
        let err = parse_args(&args(&["train", "whoops"])).unwrap_err();
        assert!(err.contains("positional"));
    }

    #[test]
    fn defaults_and_parse_or() {
        let a = parse_args(&args(&["train", "--bits", "5"])).unwrap();
        assert_eq!(a.parse_or("bits", 4u32).unwrap(), 5);
        assert_eq!(a.parse_or("epochs", 4usize).unwrap(), 4);
        assert_eq!(a.get_or("model", "lenet"), "lenet");
    }

    #[test]
    fn invalid_numeric_value_is_reported() {
        let a = parse_args(&args(&["train", "--bits", "many"])).unwrap();
        let err = a.parse_or("bits", 4u32).unwrap_err();
        assert!(err.contains("--bits"));
    }

    #[test]
    fn model_kind_parsing() {
        assert_eq!(model_kind("LeNet").unwrap(), ModelKind::Lenet);
        assert_eq!(model_kind("resnet").unwrap(), ModelKind::Resnet);
        assert!(model_kind("vgg").is_err());
    }
}
