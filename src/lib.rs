//! # qsnc — quantization-aware spiking neuromorphic computing
//!
//! A full reproduction of *"Towards Accurate and High-Speed Spiking
//! Neuromorphic Systems with Data Quantization-Aware Deep Networks"*
//! (Fuqiang Liu and Chenchen Liu, DAC 2018), built from scratch in Rust:
//! tensor math, a neural-network training stack, the paper's Neuron
//! Convergence and Weight Clustering quantization methods, a behavioural
//! memristor-crossbar spiking substrate, and the hardware cost model that
//! regenerates the paper's Table 5.
//!
//! This umbrella crate re-exports the component crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`tensor`] | dense `f32` tensors, GEMM, im2col convolution |
//! | [`nn`] | layers, backprop, optimizers, the Table 1 model zoo |
//! | [`data`] | synthetic MNIST/CIFAR stand-ins, MNIST IDX loader |
//! | [`quant`] | Neuron Convergence, Weight Clustering, baselines |
//! | [`memristor`] | devices, crossbars, Eq. 1 mapping, spiking pipeline, hw model |
//! | [`serve`] | batched multi-model TCP serving with hot artifact swap |
//! | [`core`] | end-to-end train → quantize → deploy flows |
//! | [`telemetry`] | spans, counters, histograms (`QSNC_TELEMETRY`) |
//!
//! # Examples
//!
//! See `examples/quickstart.rs` for the five-minute tour:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

#![warn(missing_docs)]

pub use qsnc_core as core;
pub use qsnc_data as data;
pub use qsnc_memristor as memristor;
pub use qsnc_nn as nn;
pub use qsnc_quant as quant;
pub use qsnc_serve as serve;
pub use qsnc_telemetry as telemetry;
pub use qsnc_tensor as tensor;
