//! Objects QAT: quantization-aware AlexNet on the CIFAR-class task.
//!
//! The colored-shapes task (`synth_objects`) plays the role CIFAR-10 plays
//! in the paper: a harder, three-channel workload where low-bit
//! quantization hurts more and the proposed recovery matters more. This
//! example trains a width-reduced AlexNet with and without Neuron
//! Convergence at 3 bits and reports the recovered accuracy.
//!
//! ```bash
//! cargo run --release --example objects_qat
//! ```

use qsnc::core::report::{pct, Table};
use qsnc::core::{direct_quantize, train_float, train_quant_aware, QuantConfig, TrainSettings};
use qsnc::data::synth_objects;
use qsnc::nn::ModelKind;
use qsnc::tensor::TensorRng;

fn main() {
    let mut rng = TensorRng::seed(21);
    let (train, test) = synth_objects(3000, &mut rng).split(0.8);
    let settings = TrainSettings {
        epochs: 4,
        lr: 0.02,
        verbose: true,
        ..TrainSettings::default()
    };
    let width = 0.25;
    let test_batches = test.batches(64, None);
    let calibration = &train.batches(128, None)[0];

    println!("training fp32 AlexNet (width {width}) on synthetic objects…");
    let (mut float_net, ideal) =
        train_float(ModelKind::Alexnet, width, &settings, &train, &test, 2);
    println!("ideal fp32 accuracy: {}\n", pct(ideal));

    let bits = 3;
    println!("direct {bits}-bit quantization (no recovery)…");
    let (_sw, direct_acc) = direct_quantize(
        &mut float_net,
        &QuantConfig::direct(bits, bits),
        calibration,
        &test_batches,
    );

    println!("quantization-aware training at {bits} bits…");
    let quant = QuantConfig::paper(bits, bits);
    let model = train_quant_aware(ModelKind::Alexnet, width, &settings, &quant, &train, &test, 2);

    let mut table = Table::new(
        format!("AlexNet on synthetic objects, {bits}-bit signals and weights"),
        &["Variant", "Accuracy"],
    );
    table.row(&["ideal fp32".into(), pct(ideal)]);
    table.row(&["w/o (direct quantization)".into(), pct(direct_acc)]);
    table.row(&["w/ (proposed)".into(), pct(model.quantized_accuracy)]);
    table.row(&[
        "recovered".into(),
        pct(model.quantized_accuracy - direct_acc),
    ]);
    println!("\n{}", table.render());
}
