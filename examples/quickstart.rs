//! Quickstart: train a small LeNet, quantize it with the paper's method,
//! and deploy it on the simulated memristor spiking system.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use qsnc::core::{deploy_to_snc, snc_accuracy, train_quant_aware, QuantConfig, TrainSettings};
use qsnc::data::synth_digits;
use qsnc::nn::ModelKind;
use qsnc::tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A deterministic synthetic digit task (MNIST stand-in).
    let mut rng = TensorRng::seed(42);
    let (train, test) = synth_digits(4000, &mut rng).split(0.8);
    println!("dataset: {} train / {} test examples", train.len(), test.len());

    // 2. Quantization-aware training: Neuron Convergence regularization,
    //    straight-through fine-tune, Weight Clustering — all at 4 bits.
    let quant = QuantConfig::paper(4, 4);
    let settings = TrainSettings {
        epochs: 4,
        verbose: true,
        ..TrainSettings::default()
    };
    println!("\ntraining 4-bit quantization-aware LeNet…");
    let model = train_quant_aware(ModelKind::Lenet, 0.5, &settings, &quant, &train, &test, 1);
    println!("fp32-signal accuracy : {:.2}%", model.float_accuracy * 100.0);
    println!("4-bit quantized acc  : {:.2}%", model.quantized_accuracy * 100.0);

    // 3. Deploy on the memristor-crossbar spiking substrate.
    let snn = deploy_to_snc(&model.net, &quant, None)?;
    println!(
        "\ndeployed on {} crossbars ({} memristor devices)",
        snn.crossbar_count(),
        snn.device_count()
    );
    let sample = test.batches(100, None);
    let hw_acc = snc_accuracy(&snn, &sample[..1], None);
    println!("spiking-system accuracy on 100 examples: {:.2}%", hw_acc * 100.0);

    // 4. Hardware payoff versus the 8-bit dynamic fixed-point baseline.
    let r8 = qsnc::core::hardware_report(&model.net, 8, 8);
    let r4 = qsnc::core::hardware_report(&model.net, 4, 4);
    println!("\nhardware model (this network):");
    println!(
        "  8-bit baseline : {:.2} MHz, {:.2} µJ, {:.2} mm²",
        r8.speed_mhz, r8.energy_uj, r8.area_mm2
    );
    println!(
        "  4-bit proposed : {:.2} MHz, {:.2} µJ, {:.2} mm²",
        r4.speed_mhz, r4.energy_uj, r4.area_mm2
    );
    println!(
        "  speedup {:.1}×, energy saving {:.1}%, area saving {:.1}%",
        r4.speedup_over(&r8),
        r4.energy_saving_over(&r8) * 100.0,
        r4.area_saving_over(&r8) * 100.0
    );
    Ok(())
}
