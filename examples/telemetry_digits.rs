//! Telemetry walkthrough: a small quantization-aware training run on the
//! digit task with full instrumentation, finishing with a spiking
//! deployment — then the collected telemetry printed as JSON.
//!
//! ```bash
//! # Human-readable summary tables on stdout:
//! QSNC_TELEMETRY=1 cargo run --release --example telemetry_digits
//! # Machine-readable JSON document (CI parses this):
//! QSNC_TELEMETRY=json cargo run --release --example telemetry_digits
//! ```
//!
//! With `QSNC_TELEMETRY` unset the run is uninstrumented and prints only
//! the accuracy line — the hot paths check one atomic flag and skip all
//! recording.

use qsnc::core::report::pct;
use qsnc::core::{deploy_to_snc, snc_accuracy, train_quant_aware, QuantConfig, TrainSettings};
use qsnc::data::synth_digits;
use qsnc::nn::ModelKind;
use qsnc::telemetry::{self, TelemetryMode};
use qsnc::tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = TensorRng::seed(7);
    let (train, test) = synth_digits(1500, &mut rng).split(0.8);
    let settings = TrainSettings {
        epochs: 2,
        ..TrainSettings::default()
    };

    // 4-bit quantization-aware training: spans per layer/epoch, saturation
    // and sparsity counters, clustering residual histograms.
    let quant = QuantConfig::paper(4, 4);
    let model = train_quant_aware(ModelKind::Lenet, 0.25, &settings, &quant, &train, &test, 7);
    eprintln!("4-bit quantized accuracy: {}", pct(model.quantized_accuracy));

    // Spiking deployment: compile/infer spans, spike and IFC saturation
    // counters, crossbar tiling utilization.
    let snn = deploy_to_snc(&model.net, &quant, None)?;
    let test_batches = test.batches(64, None);
    let hw_acc = snc_accuracy(&snn, &test_batches[..1], None);
    eprintln!(
        "spiking deployment: {} crossbars, accuracy {}",
        snn.crossbar_count(),
        pct(hw_acc)
    );

    match telemetry::mode() {
        TelemetryMode::Json => println!("{}", telemetry::export_json()),
        TelemetryMode::Record => {
            for table in qsnc::core::telemetry_summary_tables(&telemetry::snapshot()) {
                print!("{}", table.render());
            }
        }
        TelemetryMode::Off => {
            eprintln!("telemetry off — rerun with QSNC_TELEMETRY=1 or QSNC_TELEMETRY=json");
        }
    }
    Ok(())
}
