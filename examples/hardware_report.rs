//! Hardware design-space report: the Table 5 cost model explored across
//! bit widths and crossbar sizes.
//!
//! No training involved — this example exercises the Eq. 1 mapper and the
//! calibrated speed/energy/area model over the paper's three networks.
//!
//! ```bash
//! cargo run --release --example hardware_report
//! ```

use qsnc::core::report::Table;
use qsnc::memristor::{network_geometry, HwModel};
use qsnc::nn::models::{build_model, ModelKind};
use qsnc::tensor::TensorRng;

fn main() {
    let model = HwModel::calibrated();
    let mut rng = TensorRng::seed(0);

    // Table 5 shape: each network at 8-bit baseline vs 4- and 3-bit.
    let mut t5 = Table::new(
        "Memristor SNC evaluation (model of the paper's Table 5)",
        &["Config", "Layers", "Crossbars", "Speed (MHz)", "Energy (µJ)", "Area (mm²)"],
    );
    for kind in [ModelKind::Lenet, ModelKind::Alexnet, ModelKind::Resnet] {
        let net = build_model(kind, 1.0, 10, &mut rng);
        let geo = network_geometry(&net.synaptic_descriptors(), 32);
        for (label, m, n) in [("8-bit", 8, 8), ("4-bit", 4, 4), ("3-bit", 3, 3)] {
            let r = model.evaluate(&geo, m, n);
            t5.row(&[
                format!("{kind} {label}"),
                r.layers.to_string(),
                r.crossbars.to_string(),
                format!("{:.2}", r.speed_mhz),
                format!("{:.2}", r.energy_uj),
                format!("{:.2}", r.area_mm2),
            ]);
        }
    }
    println!("{}", t5.render());

    // Design-space sweep: how the crossbar size changes LeNet's footprint.
    let net = build_model(ModelKind::Lenet, 1.0, 10, &mut rng);
    let descs = net.synaptic_descriptors();
    let mut sweep = Table::new(
        "Crossbar-size ablation (LeNet, 4-bit)",
        &["Crossbar t", "Crossbars (Eq. 1)", "Area (mm²)"],
    );
    for t in [16usize, 32, 64, 128] {
        let geo = network_geometry(&descs, t);
        let r = model.evaluate(&geo, 4, 4);
        let total: usize = geo.iter().map(|g| g.crossbars).sum();
        sweep.row(&[
            t.to_string(),
            total.to_string(),
            format!("{:.2}", r.area_mm2),
        ]);
    }
    println!("{}", sweep.render());

    // Bit-width sweep: Fig. 1a's speed-vs-precision curve.
    let geo = network_geometry(&descs, 32);
    let mut speed = Table::new(
        "Speed vs neuron precision (LeNet, Fig. 1a shape)",
        &["M (bits)", "Window (slots)", "Speed (MHz)"],
    );
    for m in 1..=8u32 {
        let r = model.evaluate(&geo, m, 4);
        speed.row(&[
            m.to_string(),
            (1u32 << m).to_string(),
            format!("{:.2}", r.speed_mhz),
        ]);
    }
    println!("{}", speed.render());
}
