//! Mixed-precision weights: spend a fixed device budget unevenly.
//!
//! An extension of the paper's Eq. 4/5 analysis: layers differ in
//! quantization sensitivity, so a fixed crossbar-device budget is better
//! spent per layer. This example compares uniform 3-bit weights against a
//! mixed assignment with the *same total stored bits*, and prints the
//! per-class confusion of the uniform model.
//!
//! ```bash
//! cargo run --release --example mixed_precision
//! ```

use qsnc::core::report::{pct, Table};
use qsnc::core::{train_float, TrainSettings};
use qsnc::data::synth_digits;
use qsnc::nn::train::evaluate;
use qsnc::nn::{Mode, ModelKind};
use qsnc::quant::{
    apply_mixed_precision, assign_mixed_precision, quantize_network_weights, WeightQuantMethod,
};
use qsnc::tensor::TensorRng;

fn main() {
    let mut rng = TensorRng::seed(13);
    let (train, test) = synth_digits(4000, &mut rng).split(0.8);
    let settings = TrainSettings {
        epochs: 4,
        ..TrainSettings::default()
    };
    println!("training fp32 LeNet…");
    let (mut net, ideal) = train_float(ModelKind::Lenet, 0.5, &settings, &train, &test, 1);
    let test_batches = test.batches(64, None);

    // Snapshot for the uniform variant.
    let weights: Vec<qsnc::tensor::Tensor> = net
        .params()
        .iter()
        .filter(|p| p.is_weight)
        .map(|p| p.value.clone())
        .collect();
    let restore = |net: &mut qsnc::nn::Sequential, snap: &[qsnc::tensor::Tensor]| {
        let mut it = snap.iter();
        for p in net.params() {
            if p.is_weight {
                *p.value = it.next().expect("snapshot").clone();
            }
        }
    };
    let total_weights: u64 = weights.iter().map(|t| t.len() as u64).sum();

    // Uniform 3-bit.
    quantize_network_weights(&mut net, 3, WeightQuantMethod::Clustered);
    let uniform_acc = evaluate(&mut net, &test_batches);

    // Mixed precision under the same budget (3 bits average).
    restore(&mut net, &weights);
    let assignment = assign_mixed_precision(&mut net, 2, 8, total_weights * 3);
    let mut table = Table::new(
        "Mixed-precision assignment (budget = 3 bits/weight average)",
        &["Layer", "Weights", "Bits", "Quant MSE"],
    );
    for a in &assignment {
        table.row(&[
            a.name.clone(),
            a.count.to_string(),
            a.bits.to_string(),
            format!("{:.2e}", a.mse),
        ]);
    }
    apply_mixed_precision(&mut net, &assignment);
    let mixed_acc = evaluate(&mut net, &test_batches);

    println!("{}", table.render());
    println!("ideal fp32      : {}", pct(ideal));
    println!("uniform 3-bit   : {}", pct(uniform_acc));
    println!("mixed (≤3 avg)  : {}", pct(mixed_acc));

    // Confusion analysis of the mixed model.
    let mut cm = qsnc::nn::ConfusionMatrix::new(10);
    for batch in &test_batches {
        let logits = net.forward(&batch.images, Mode::Eval);
        cm.record_batch(&logits, &batch.labels);
    }
    println!("\noverall {} across {} examples", pct(cm.accuracy()), cm.total());
    if let Some((a, p, n)) = cm.worst_confusion() {
        println!("worst confusion: digit {a} read as {p} ({n} times)");
    } else {
        println!("no misclassifications recorded");
    }
}
