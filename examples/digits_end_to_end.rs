//! Digits end-to-end: the paper's full comparison on the MNIST-class task.
//!
//! Trains a LeNet, then compares — at 5, 4, and 3 bits — the accuracy of
//! direct post-training quantization ("w/o") against the proposed Neuron
//! Convergence + Weight Clustering flow ("w/"), finishing with a spiking
//! deployment of the 4-bit model. This is a scaled-down interactive version
//! of the Table 4 experiment (`cargo run -p qsnc-bench --bin table4` runs
//! the full one).
//!
//! ```bash
//! cargo run --release --example digits_end_to_end
//! ```

use qsnc::core::report::{pct, pct_delta, Table};
use qsnc::core::{
    deploy_to_snc, direct_quantize, snc_accuracy, train_float, train_quant_aware, QuantConfig,
    TrainSettings,
};
use qsnc::data::synth_digits;
use qsnc::nn::ModelKind;
use qsnc::tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = TensorRng::seed(7);
    let (train, test) = synth_digits(5000, &mut rng).split(0.8);
    let settings = TrainSettings {
        epochs: 5,
        ..TrainSettings::default()
    };
    let test_batches = test.batches(64, None);
    let calibration = &train.batches(128, None)[0];

    // Ideal fp32 reference.
    let (_float_net, ideal) = train_float(ModelKind::Lenet, 0.5, &settings, &train, &test, 1);
    println!("ideal fp32 accuracy: {}\n", pct(ideal));

    let mut table = Table::new(
        "LeNet on synthetic digits — signals AND weights quantized",
        &["Bits", "w/o (direct)", "w/ (proposed)", "Recovered", "Drop vs ideal"],
    );

    let mut four_bit_model = None;
    for bits in [5u32, 4, 3] {
        // "w/o": fresh float training, then direct uniform quantization.
        let (mut net, _) = train_float(ModelKind::Lenet, 0.5, &settings, &train, &test, 1);
        let (_sw, direct_acc) = direct_quantize(
            &mut net,
            &QuantConfig::direct(bits, bits),
            calibration,
            &test_batches,
        );

        // "w/": the proposed flow at the same widths.
        let quant = QuantConfig::paper(bits, bits);
        let model =
            train_quant_aware(ModelKind::Lenet, 0.5, &settings, &quant, &train, &test, 1);
        table.row(&[
            format!("{bits}-bit"),
            pct(direct_acc),
            pct(model.quantized_accuracy),
            pct(model.quantized_accuracy - direct_acc),
            pct_delta(model.quantized_accuracy, ideal),
        ]);
        if bits == 4 {
            four_bit_model = Some(model);
        }
    }
    println!("{}", table.render());

    // Deploy the 4-bit model on the spiking substrate.
    let model = four_bit_model.expect("4-bit model trained above");
    let quant = QuantConfig::paper(4, 4);
    let snn = deploy_to_snc(&model.net, &quant, None)?;
    let hw_acc = snc_accuracy(&snn, &test_batches[..2], None);
    println!(
        "4-bit spiking deployment: {} crossbars, accuracy {} (software-quantized: {})",
        snn.crossbar_count(),
        pct(hw_acc),
        pct(model.quantized_accuracy)
    );
    Ok(())
}
