//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The qsnc build environment has no access to crates.io. The workspace only
//! uses serde as `#[derive(Serialize, Deserialize)]` annotations on plain
//! data types — no serializer is ever instantiated (checkpointing uses its
//! own text format). This stub therefore provides the two traits as markers
//! plus derive macros that emit empty impls, which keeps every annotation
//! compiling unchanged and leaves the door open to swapping in real serde
//! when a registry is available.

#![warn(missing_docs)]

/// Marker for types that can be serialized.
///
/// In upstream serde this carries a `serialize` method; no code in this
/// workspace calls it, so the offline stub keeps it as a pure marker.
pub trait Serialize {}

/// Marker for types that can be deserialized from a borrowed buffer.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

macro_rules! impl_primitives {
    ($($t:ty),+) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )+};
}
impl_primitives!(
    bool, char, f32, f64, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, String
);
