//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The qsnc build environment has no access to crates.io, so this vendored
//! crate re-implements exactly the slice of the `rand` 0.8 API that the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods `gen`, `gen_range`, and the
//! [`distributions::Distribution`] trait.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (which is ChaCha12), but the workspace only
//! relies on determinism and statistical quality, never on specific values.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator: the core 64-bit output interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++ here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that [`Rng::gen`] can produce uniformly at random.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::draw(rng);
                let v = self.start + (self.end - self.start) * u;
                // Floating-point rounding can land exactly on `end`; the
                // contract is a half-open interval.
                if v >= self.end {
                    <$t>::from_bits(self.end.to_bits() - 1)
                } else {
                    v
                }
            }
        }
    };
}
impl_float_range!(f32);
impl_float_range!(f64);

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2⁻⁶⁴ for the spans used here.
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )+};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Probability distributions (minimal subset).
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample using `rng`.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&v));
            let u: f32 = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..5usize);
            seen[v] = true;
            let w: usize = rng.gen_range(0..=4usize);
            assert!(w <= 4);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let sum: f64 = (0..100_000).map(|_| rng.gen::<f32>() as f64).sum();
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
