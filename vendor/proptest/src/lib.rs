//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The qsnc build environment has no access to crates.io, so this vendored
//! crate implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro, range and `collection::vec`
//! strategies, `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! values that failed but not a minimal counterexample), and the generator
//! is seeded deterministically per test from the test's name, so runs are
//! reproducible. The case count can be scaled globally with the
//! `PROPTEST_CASES` environment variable, which upstream also honours.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Harness configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Applies the `PROPTEST_CASES` environment override, if set.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
            .max(1)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(String),
}

/// Deterministic generation machinery used by the [`proptest!`] macro.
pub mod test_runner {
    /// SplitMix64 generator behind every strategy.
    #[derive(Debug, Clone)]
    pub struct Prng {
        state: u64,
    }

    impl Prng {
        /// Seeds deterministically from a test's name, so each property test
        /// has a stable, independent stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Prng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::Prng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, prng: &mut Prng) -> Self::Value;
    }

    macro_rules! impl_float_strategy {
        ($t:ty) => {
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, prng: &mut Prng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let v = self.start
                        + (self.end - self.start) * prng.unit_f64() as $t;
                    if v >= self.end {
                        <$t>::from_bits(self.end.to_bits() - 1)
                    } else {
                        v
                    }
                }
            }
        };
    }
    impl_float_strategy!(f32);
    impl_float_strategy!(f64);

    macro_rules! impl_int_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, prng: &mut Prng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + prng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, prng: &mut Prng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + prng.below(span) as i128) as $t
                }
            }
        )+};
    }
    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy wrapper produced by [`crate::collection::vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) min_len: usize,
        pub(crate) max_len_exclusive: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, prng: &mut Prng) -> Vec<S::Value> {
            let len = if self.max_len_exclusive > self.min_len {
                self.min_len
                    + prng.below((self.max_len_exclusive - self.min_len) as u64) as usize
            } else {
                self.min_len
            };
            (0..len).map(|_| self.element.generate(prng)).collect()
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use super::SizeRange;

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy {
            element,
            min_len: size.min,
            max_len_exclusive: size.max_exclusive,
        }
    }
}

/// Length specification for [`collection::vec`]: a fixed size or a
/// half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_exclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// item becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let mut prng = $crate::test_runner::Prng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            while accepted < cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut prng);)+
                // Rendered up front: the body may consume the drawn values.
                let rendered_inputs =
                    format!(concat!($(stringify!($arg), " = {:?} "),+), $(&$arg),+);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => {
                        let _ = &rendered_inputs;
                        accepted += 1;
                    }
                    Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < cases.saturating_mul(64).max(1024),
                            "proptest {}: too many prop_assume! rejections",
                            stringify!($name),
                        );
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed on case {}: {}\n(offline stub: no shrinking; \
                             inputs were: {})",
                            stringify!($name),
                            accepted,
                            msg,
                            rendered_inputs,
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Rejects the current case (re-drawn, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f32..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn fixed_size_vec() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0.0f32..1.0, 7usize);
        let mut prng = crate::test_runner::Prng::deterministic("fixed");
        assert_eq!(s.generate(&mut prng).len(), 7);
    }
}
