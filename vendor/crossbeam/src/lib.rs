//! Offline shim for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! scoped-thread API.
//!
//! The qsnc build environment has no access to crates.io. The workspace uses
//! crossbeam purely for structured scoped threads, which `std::thread::scope`
//! has provided since Rust 1.63 with equivalent semantics (spawned threads
//! may borrow from the enclosing scope; the scope joins them all before
//! returning and propagates panics). This crate therefore re-exports the
//! std implementation under the `crossbeam::thread` path the workspace
//! imports, keeping a later swap to the real crate a one-line change.

#![warn(missing_docs)]

/// Scoped threads, mirroring `crossbeam::thread` via `std::thread`.
///
/// Note the `std` call convention: closures passed to
/// [`Scope::spawn`](std::thread::Scope::spawn) take no argument (upstream
/// crossbeam passes the scope back in), and `scope` returns the closure's
/// value directly rather than a `Result`.
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut data = [0u32; 8];
        let (a, b) = data.split_at_mut(4);
        crate::thread::scope(|s| {
            s.spawn(|| a.iter_mut().for_each(|v| *v += 1));
            s.spawn(|| b.iter_mut().for_each(|v| *v += 2));
        });
        assert_eq!(data[..4], [1, 1, 1, 1]);
        assert_eq!(data[4..], [2, 2, 2, 2]);
    }
}
