//! Derive macros for the vendored offline `serde` stub.
//!
//! The traits are pure markers, so the derives only need the type's name:
//! they scan the item's tokens for `struct`/`enum`/`union`, take the
//! following identifier, and emit an empty impl. Written against raw
//! `proc_macro` tokens — `syn`/`quote` are unavailable offline.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the item being derived.
///
/// Walks past outer attributes, doc comments, and visibility qualifiers to
/// the `struct` / `enum` / `union` keyword and returns the next identifier.
/// Generic types are rejected: nothing in this workspace derives serde on a
/// generic type, and supporting them would require real parsing.
fn item_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("expected item name after `{kw}`, found {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = tokens.next() {
                    if p.as_char() == '<' {
                        panic!(
                            "the offline serde stub cannot derive for generic type `{name}`; \
                             write the impl by hand in vendor/serde"
                        );
                    }
                }
                return name;
            }
        }
    }
    panic!("no struct/enum/union found in derive input");
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl must parse")
}
