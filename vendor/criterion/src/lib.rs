//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The qsnc build environment has no access to crates.io, so this vendored
//! crate provides the criterion API surface the `qsnc-bench` benches use —
//! [`Criterion::bench_function`], benchmark groups, [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! adaptive timing loop instead of criterion's statistical machinery.
//!
//! Each benchmark warms up briefly, then runs batches until the measurement
//! window is filled and reports the mean time per iteration. Environment
//! knobs:
//!
//! - `QSNC_BENCH_MEASURE_MS`: measurement window per benchmark
//!   (default 300 ms).
//! - `QSNC_BENCH_JSON`: if set, appends one JSON line
//!   `{"name": .., "ns_per_iter": ..}` per benchmark to the given file.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

fn measure_window() -> Duration {
    let ms = std::env::var("QSNC_BENCH_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300)
        .max(10);
    Duration::from_millis(ms)
}

/// Runs one closure under the timing loop, inside [`Bencher::iter`].
pub struct Bencher {
    window: Duration,
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, storing the mean wall-clock time per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until ~10% of the window has elapsed, and derive the
        // batch size from the observed speed so the clock is read rarely.
        let warmup_target = self.window / 10;
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warmup_target || warm_iters == 0 {
            hint::black_box(f());
            warm_iters += 1;
        }
        let est_per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let batch = ((warmup_target.as_nanos() as f64 / est_per_iter).ceil() as u64).max(1);

        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            for _ in 0..batch {
                hint::black_box(f());
            }
            iters += batch;
            if start.elapsed() >= self.window {
                break;
            }
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, ns: f64) {
    println!("{name:<60} time: [{}]", human(ns));
    if let Ok(path) = std::env::var("QSNC_BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(f, "{{\"name\": \"{name}\", \"ns_per_iter\": {ns:.1}}}");
        }
    }
}

fn run_bench(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        window: measure_window(),
        ns_per_iter: f64::NAN,
    };
    f(&mut b);
    report(name, b.ns_per_iter);
}

/// Identifies one benchmark within a group, like `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The display name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.repr
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the offline harness sizes its
    /// measurement window from `QSNC_BENCH_MEASURE_MS` instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for criterion compatibility (see [`Self::sample_size`]).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.into_name()), &mut f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: IntoBenchmarkId, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.into_name()), &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("QSNC_BENCH_MEASURE_MS", "10");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(32), &32usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }
}
