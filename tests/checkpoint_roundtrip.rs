//! Integration test: persistence interoperates with training, quantization
//! and deployment.

use qsnc::core::{train_quant_aware, QuantConfig, TrainSettings};
use qsnc::data::synth_digits;
use qsnc::nn::train::evaluate;
use qsnc::nn::{load_params, save_params, ModelKind};
use qsnc::quant::{insert_signal_stages, ActivationQuantizer, ActivationRegularizer};
use qsnc::tensor::TensorRng;

#[test]
fn trained_quantized_model_survives_save_load() {
    let mut rng = TensorRng::seed(77);
    let (train, test) = synth_digits(1000, &mut rng).split(0.8);
    let settings = TrainSettings {
        epochs: 2,
        ..TrainSettings::default()
    };
    let quant = QuantConfig {
        finetune_epochs: 0,
        ..QuantConfig::paper(4, 4)
    };
    let mut model = train_quant_aware(ModelKind::Lenet, 0.5, &settings, &quant, &train, &test, 9);
    let test_batches = test.batches(50, None);
    let acc_before = evaluate(&mut model.net, &test_batches);

    // Serialize.
    let mut blob = Vec::new();
    save_params(&mut model.net, &mut blob).expect("save");

    // Rebuild the same topology (fresh weights) and restore.
    let mut rng2 = TensorRng::seed(1234);
    let mut rebuilt = qsnc::nn::models::lenet(0.5, 10, &mut rng2);
    let (switch, _) = insert_signal_stages(
        &mut rebuilt,
        ActivationRegularizer::neuron_convergence(4),
        0.0,
        ActivationQuantizer::new(4),
    );
    switch.set_enabled(true);
    load_params(&mut rebuilt, blob.as_slice()).expect("load");

    let acc_after = evaluate(&mut rebuilt, &test_batches);
    assert_eq!(
        acc_before, acc_after,
        "restored model must reproduce the quantized accuracy exactly"
    );

    // And the restored model deploys identically.
    let snn_a = qsnc::core::deploy_to_snc(&model.net, &quant, None).expect("deploy original");
    let snn_b = qsnc::core::deploy_to_snc(&rebuilt, &quant, None).expect("deploy restored");
    let hw_a = snn_a.evaluate(&test_batches[..1], None);
    let hw_b = snn_b.evaluate(&test_batches[..1], None);
    assert_eq!(hw_a, hw_b);
}

#[test]
fn checkpoint_blob_is_versioned_and_rejects_garbage() {
    let mut rng = TensorRng::seed(5);
    let mut net = qsnc::nn::models::lenet(0.25, 10, &mut rng);
    assert!(load_params(&mut net, &b"garbage-bytes"[..]).is_err());
}
