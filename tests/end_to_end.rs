//! Cross-crate integration tests: the full train → regularize → quantize →
//! deploy pipeline, exercised end to end on the digit task.

use qsnc::core::{
    deploy_to_snc, direct_quantize, snc_accuracy, train_float, train_quant_aware, QuantConfig,
    TrainSettings,
};
use qsnc::data::synth_digits;
use qsnc::memristor::{crossbars_for_layer, HwModel};
use qsnc::nn::ModelKind;
use qsnc::tensor::TensorRng;

fn settings() -> TrainSettings {
    TrainSettings {
        epochs: 3,
        batch_size: 32,
        ..TrainSettings::default()
    }
}

#[test]
fn full_pipeline_digits_4bit() {
    let mut rng = TensorRng::seed(10);
    let (train, test) = synth_digits(1500, &mut rng).split(0.8);
    let quant = QuantConfig {
        finetune_epochs: 1,
        ..QuantConfig::paper(4, 4)
    };
    let model = train_quant_aware(ModelKind::Lenet, 0.5, &settings(), &quant, &train, &test, 3);
    assert!(
        model.quantized_accuracy > 0.85,
        "4-bit quantized accuracy {}",
        model.quantized_accuracy
    );
    // Deployment: software-quantized and spiking accuracies agree.
    let snn = deploy_to_snc(&model.net, &quant, None).expect("deploy");
    let sample = test.batches(50, None);
    let hw_acc = snc_accuracy(&snn, &sample[..1], None);
    assert!(
        (hw_acc - model.quantized_accuracy).abs() < 0.1,
        "spiking {hw_acc} vs software {}",
        model.quantized_accuracy
    );
}

#[test]
fn proposed_method_beats_direct_quantization_at_3bit() {
    let mut rng = TensorRng::seed(11);
    let (train, test) = synth_digits(1500, &mut rng).split(0.8);
    let test_batches = test.batches(32, None);
    let calibration = &train.batches(64, None)[0];

    // Direct ("w/o") baseline at 2-bit signals and weights.
    let (mut float_net, float_acc) =
        train_float(ModelKind::Lenet, 0.5, &settings(), &train, &test, 4);
    let (_sw, direct_acc) = direct_quantize(
        &mut float_net,
        &QuantConfig::direct(2, 2),
        calibration,
        &test_batches,
    );

    // Proposed ("w/") flow at the same widths.
    let quant = QuantConfig {
        finetune_epochs: 2,
        ..QuantConfig::paper(2, 2)
    };
    let model = train_quant_aware(ModelKind::Lenet, 0.5, &settings(), &quant, &train, &test, 4);

    assert!(
        model.quantized_accuracy > direct_acc,
        "proposed {} should beat direct {} (float was {float_acc})",
        model.quantized_accuracy,
        direct_acc
    );
}

#[test]
fn deterministic_by_seed() {
    let mut rng_a = TensorRng::seed(12);
    let (train_a, test_a) = synth_digits(400, &mut rng_a).split(0.8);
    let mut rng_b = TensorRng::seed(12);
    let (train_b, test_b) = synth_digits(400, &mut rng_b).split(0.8);
    let s = TrainSettings {
        epochs: 1,
        ..settings()
    };
    let (_, acc_a) = train_float(ModelKind::Lenet, 0.25, &s, &train_a, &test_a, 5);
    let (_, acc_b) = train_float(ModelKind::Lenet, 0.25, &s, &train_b, &test_b, 5);
    assert_eq!(acc_a, acc_b, "same seed must reproduce identical runs");
}

#[test]
fn eq1_crossbar_counts_flow_through_deployment() {
    let mut rng = TensorRng::seed(13);
    let (train, test) = synth_digits(300, &mut rng).split(0.8);
    let s = TrainSettings {
        epochs: 1,
        ..settings()
    };
    let quant = QuantConfig {
        finetune_epochs: 0,
        ..QuantConfig::paper(4, 4)
    };
    let model = train_quant_aware(ModelKind::Lenet, 0.5, &s, &quant, &train, &test, 6);
    let snn = deploy_to_snc(&model.net, &quant, None).expect("deploy");
    let expected: usize = model
        .net
        .synaptic_descriptors()
        .iter()
        .map(|d| crossbars_for_layer(d, 32))
        .sum();
    assert_eq!(snn.crossbar_count(), expected);
}

#[test]
fn hardware_model_reproduces_lenet_paper_rows() {
    let mut rng = TensorRng::seed(14);
    let net = qsnc::nn::models::lenet(1.0, 10, &mut rng);
    let model = HwModel::calibrated();
    let geo = qsnc::memristor::network_geometry(&net.synaptic_descriptors(), 32);
    let base = model.evaluate(&geo, 8, 8);
    let ours4 = model.evaluate(&geo, 4, 4);
    let ours3 = model.evaluate(&geo, 3, 3);
    // Paper Table 5 LeNet rows: 13.9× / 24.4× speedup, 87.9% / 94.3%
    // energy saving, 29.7% / 37.2% area saving.
    assert!((ours4.speedup_over(&base) - 13.9).abs() < 1.0);
    assert!((ours3.speedup_over(&base) - 24.4).abs() < 1.5);
    assert!((ours4.energy_saving_over(&base) - 0.879).abs() < 0.05);
    assert!((ours4.area_saving_over(&base) - 0.297).abs() < 0.03);
}

#[test]
fn device_noise_degrades_gracefully() {
    let mut rng = TensorRng::seed(15);
    let (train, test) = synth_digits(1000, &mut rng).split(0.8);
    let quant = QuantConfig {
        finetune_epochs: 1,
        ..QuantConfig::paper(4, 4)
    };
    let s = TrainSettings {
        epochs: 2,
        ..settings()
    };
    let model = train_quant_aware(ModelKind::Lenet, 0.5, &s, &quant, &train, &test, 7);
    let sample = test.batches(40, None);

    // Ideal deployment.
    let snn = deploy_to_snc(&model.net, &quant, None).expect("deploy");
    let ideal = snc_accuracy(&snn, &sample[..1], None);

    // Deployment with strong programming variation.
    let mut cfg = qsnc::memristor::DeployConfig::paper(4, 4);
    cfg.device = cfg.device.with_noise(0.3, 0.0);
    let mut noise_rng = TensorRng::seed(99);
    let snn_noisy = qsnc::memristor::SpikingNetwork::compile(&model.net, &cfg, Some(&mut noise_rng))
        .expect("compile");
    let noisy = snc_accuracy(&snn_noisy, &sample[..1], None);

    // Noise can only plausibly hurt; it must not *improve* accuracy by a
    // wide margin, and the system should still be usable.
    assert!(noisy <= ideal + 0.08, "noisy {noisy} vs ideal {ideal}");
    assert!(noisy > 0.2, "noise destroyed the system: {noisy}");
}
