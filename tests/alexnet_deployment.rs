//! Integration test: the deeper AlexNet topology (conv stacks + three FC
//! layers) also deploys faithfully on the spiking substrate.

use qsnc::core::{deploy_to_snc, train_quant_aware, QuantConfig, TrainSettings};
use qsnc::data::synth_objects;
use qsnc::nn::{Mode, ModelKind};
use qsnc::tensor::{Tensor, TensorRng};

#[test]
fn alexnet_spiking_matches_software_quantized() {
    let mut rng = TensorRng::seed(42);
    let (train, test) = synth_objects(800, &mut rng).split(0.8);
    let settings = TrainSettings {
        epochs: 1,
        lr: 0.02,
        ..TrainSettings::default()
    };
    let quant = QuantConfig {
        finetune_epochs: 0,
        ..QuantConfig::paper(4, 4)
    };
    let model =
        train_quant_aware(ModelKind::Alexnet, 0.25, &settings, &quant, &train, &test, 11);
    let snn = deploy_to_snc(&model.net, &quant, None).expect("deploy alexnet");
    assert!(snn.crossbar_count() > 10, "alexnet needs many crossbars");

    // Per-example logit agreement between software-quantized and spiking.
    let mut net = model.net;
    let config = qsnc::memristor::DeployConfig::paper(4, 4);
    for i in 0..5 {
        let (x, _) = test.example(i);
        let coded = config.input_quantizer.quantize(&x);
        let sw = net.forward(&coded, Mode::Eval);
        let hw = snn.infer(&x, None);
        let sw_pred = sw.argmax();
        let hw_pred = hw.argmax();
        assert_eq!(
            sw_pred, hw_pred,
            "example {i}: software predicts {sw_pred}, hardware {hw_pred}"
        );
        for (a, b) in sw.iter().zip(hw.iter()) {
            assert!(
                (a - b).abs() < 5e-2 * (1.0 + a.abs()),
                "example {i}: logit mismatch {a} vs {b}"
            );
        }
    }
}

#[test]
fn maxpool_and_multiple_fc_layers_survive_compilation() {
    // Structural check without training: every AlexNet stage kind is
    // representable (conv, relu+stage, pools, flatten, 3 FC layers).
    use qsnc::quant::{
        insert_signal_stages, quantize_network_weights, ActivationQuantizer,
        ActivationRegularizer, WeightQuantMethod,
    };
    let mut rng = TensorRng::seed(3);
    let mut net = qsnc::nn::models::alexnet(0.125, 10, &mut rng);
    let (switch, stages) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(4),
        0.0,
        ActivationQuantizer::new(4),
    );
    assert_eq!(stages, 7, "AlexNet has 7 ReLUs");
    switch.set_enabled(true);
    quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
    let config = qsnc::memristor::DeployConfig::paper(4, 4);
    let snn = qsnc::memristor::SpikingNetwork::compile(&net, &config, None).expect("compile");
    let logits = snn.infer(&Tensor::zeros([1, 3, 32, 32]), None);
    assert_eq!(logits.dims(), &[1, 10]);
}
