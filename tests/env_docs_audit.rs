//! Keeps `docs/env.md` honest: every `QSNC_*` environment variable the
//! source actually reads must have a table row, and every table row must
//! correspond to a real read. Run by the CI docs job, so an undocumented
//! knob (or a stale row for a removed one) fails the build instead of
//! rotting quietly.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The three call shapes through which the codebase reads environment
/// variables. Doc comments and error messages mentioning a variable do
/// not count as reads.
const READ_PATTERNS: [&str; 3] = ["var(\"QSNC_", "var_os(\"QSNC_", "env_parse(\"QSNC_"];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Recursively collects `.rs` files, skipping `tests/` directories (test
/// helpers may set variables ad hoc) and build output.
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "tests" || name == "target" || name == ".git" {
                continue;
            }
            rust_sources(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Every `QSNC_*` variable read anywhere in the non-test source tree.
fn vars_read_in_source() -> BTreeSet<String> {
    let root = repo_root();
    let mut files = Vec::new();
    for dir in ["crates", "src", "examples", "vendor"] {
        rust_sources(&root.join(dir), &mut files);
    }
    assert!(files.len() > 10, "source scan found suspiciously few files: {}", files.len());
    let mut vars = BTreeSet::new();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        for pattern in READ_PATTERNS {
            for (at, _) in text.match_indices(pattern) {
                let start = at + pattern.len() - "QSNC_".len();
                let name: String = text[start..]
                    .chars()
                    .take_while(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_')
                    .collect();
                assert!(name.len() > "QSNC_".len(), "odd env read in {}", file.display());
                vars.insert(name);
            }
        }
    }
    vars
}

/// Every variable with a table row in docs/env.md. Only the first cell of
/// a row counts — descriptions freely mention other variables.
fn vars_documented() -> BTreeSet<String> {
    let path = repo_root().join("docs/env.md");
    let text = std::fs::read_to_string(&path).expect("read docs/env.md");
    let mut vars = BTreeSet::new();
    for line in text.lines() {
        let Some(rest) = line.trim_start().strip_prefix("| `QSNC_") else { continue };
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_')
            .collect();
        vars.insert(format!("QSNC_{name}"));
    }
    vars
}

#[test]
fn every_env_var_read_in_source_is_documented_and_vice_versa() {
    let read = vars_read_in_source();
    let documented = vars_documented();
    assert!(
        read.contains("QSNC_TELEMETRY") && read.contains("QSNC_SERVE_MAX_BATCH"),
        "scanner self-check failed; known reads missing from {read:?}"
    );

    let undocumented: Vec<_> = read.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "environment variables read in source but missing a docs/env.md table row: \
         {undocumented:?} — add a row (name, default, resolved-by, meaning)"
    );

    let stale: Vec<_> = documented.difference(&read).collect();
    assert!(
        stale.is_empty(),
        "docs/env.md documents variables nothing reads any more: {stale:?} — \
         delete the rows or restore the reads"
    );
}
