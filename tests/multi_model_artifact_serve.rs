//! Multi-process multi-model deployment test: two `.qsnca` artifacts are
//! served by one `qsnc serve` child process under distinct model names,
//! v3 routed frames must reach the right engine bit-exactly, and an
//! admin-plane HTTP swap must replace one model mid-traffic without the
//! other noticing. This is the end-to-end contract the CI `artifact` job
//! enforces on top of the single-model leg in `artifact_serve.rs`.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use qsnc::core::{deploy_to_snc, QuantConfig};
use qsnc::memristor::{save_artifact, Provenance, SpikingNetwork};
use qsnc::nn::ModelKind;
use qsnc::quant::{insert_signal_stages, ActivationQuantizer, ActivationRegularizer};
use qsnc::serve::protocol::{self, Status};
use qsnc::tensor::{init, TensorRng};

const BITS: u32 = 4;
const WIDTH: f32 = 0.5;
const INPUT_DIMS: [usize; 3] = [1, 28, 28];
const INPUT_LEN: usize = 28 * 28;

/// Kills the serve child on scope exit so a failing assertion never
/// leaks a listener process into the test runner.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// A deployed engine built exactly as `qsnc deploy` builds it; the seed
/// picks the (untrained) weights, so different seeds are distinguishable.
fn engine(seed: u64) -> SpikingNetwork {
    let mut rng = TensorRng::seed(seed);
    let mut net = qsnc::nn::models::build_model(ModelKind::Lenet, WIDTH, 10, &mut rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(BITS),
        0.0,
        ActivationQuantizer::new(BITS),
    );
    switch.set_enabled(true);
    let snn = deploy_to_snc(&net, &QuantConfig::paper(BITS, BITS), None).expect("deploy");
    assert!(snn.has_fast_path(), "4/4-bit LeNet must compile the integer engine");
    snn
}

fn write_engine(snn: &SpikingNetwork, digest: u64, path: &Path) {
    let provenance = Provenance {
        checkpoint_digest: digest,
        weight_bits: BITS,
        activation_bits: BITS,
        model: ModelKind::Lenet.to_string(),
    };
    save_artifact(snn, &INPUT_DIMS, &provenance, path).expect("save artifact");
}

fn reference_bits(snn: &SpikingNetwork, input: &[f32]) -> Vec<u32> {
    let x = qsnc::tensor::Tensor::from_vec(input.to_vec(), [1, 1, 28, 28]);
    snn.infer_reference(&x).as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Spawns `qsnc serve` and parses the inference and admin addresses from
/// its `listening on ADDR` / `admin on ADDR` stdout lines.
fn spawn_serve(configure: impl FnOnce(&mut Command)) -> (KillOnDrop, SocketAddr, SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_qsnc"));
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--admin", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    configure(&mut cmd);
    let mut child = cmd.spawn().expect("spawn qsnc serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut child = KillOnDrop(child);
    let mut reader = BufReader::new(stdout);
    let mut parse = |prefix: &str| -> SocketAddr {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read serve stdout");
        match line.trim().strip_prefix(prefix) {
            Some(addr) => addr.parse().expect("parse address"),
            None => {
                let mut err = String::new();
                if let Some(mut stderr) = child.0.stderr.take() {
                    let _ = stderr.read_to_string(&mut err);
                }
                panic!("serve did not print {prefix:?}: {line:?}\nstderr: {err}");
            }
        }
    };
    let addr = parse("listening on ");
    let admin = parse("admin on ");
    (child, addr, admin)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    stream
}

/// Issues one admin-plane HTTP request and returns the raw response.
fn http(addr: SocketAddr, request: &str) -> String {
    let mut stream = connect(addr);
    stream.write_all(request.as_bytes()).expect("write request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read response");
    body
}

#[test]
fn two_artifacts_one_process_with_admin_hot_swap() {
    let dir = std::env::temp_dir().join(format!("qsnc_multi_artifact_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let prod_artifact: PathBuf = dir.join("prod.qsnca");
    let canary_artifact: PathBuf = dir.join("canary.qsnca");
    let next_artifact: PathBuf = dir.join("canary_v2.qsnca");

    let prod = engine(1001);
    let canary = engine(2002);
    let next = engine(3003);
    write_engine(&prod, 0xA, &prod_artifact);
    write_engine(&canary, 0xB, &canary_artifact);
    write_engine(&next, 0xC, &next_artifact);

    let mut rng = TensorRng::seed(55);
    let input = init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng).as_slice()[..INPUT_LEN].to_vec();
    let want_prod = reference_bits(&prod, &input);
    let want_canary = reference_bits(&canary, &input);
    let want_next = reference_bits(&next, &input);
    assert_ne!(want_prod, want_canary);
    assert_ne!(want_canary, want_next);

    let (child, addr, admin) = spawn_serve(|cmd| {
        cmd.arg("--artifact")
            .arg(format!("prod={}", prod_artifact.display()))
            .arg("--artifact")
            .arg(format!("canary={}", canary_artifact.display()));
    });

    // Both models answer on one connection, routed by id; id-less v1
    // frames keep reaching the default (first-registered) model.
    fn routed(stream: &mut TcpStream, tag: u32, model: u32, input: &[f32]) -> protocol::Reply {
        protocol::write_request_routed(stream, tag, model, input).expect("write");
        protocol::read_reply(stream).expect("reply")
    }
    let mut stream = connect(addr);
    for (tag, model, want) in
        [(1u32, 0u32, &want_prod), (2, 1, &want_canary), (3, 0, &want_prod)]
    {
        let reply = routed(&mut stream, tag, model, &input);
        assert_eq!(reply.status, Status::Ok, "model {model}: {}", reply.message);
        assert_eq!(reply.tag, Some(tag));
        let got: Vec<u32> = reply.logits.iter().map(|v| v.to_bits()).collect();
        assert_eq!(&got, want, "model {model} reached the wrong engine");
    }
    protocol::write_request(&mut stream, &input).expect("v1 write");
    let reply = protocol::read_reply(&mut stream).expect("v1 reply");
    let got: Vec<u32> = reply.logits.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want_prod, "v1 frames must reach the default model");

    // The admin plane lists both models with their artifact provenance.
    let listing = http(admin, "GET /models HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
    assert!(listing.starts_with("HTTP/1.1 200"), "got {listing}");
    assert!(listing.contains("\"name\":\"prod\"") && listing.contains("\"name\":\"canary\""));
    assert!(listing.contains(&format!("{:016x}", 0xBu64)), "canary digest missing: {listing}");

    // Swap the canary mid-traffic through the admin plane while a client
    // hammers it with synchronous roundtrips: every reply must match one
    // of the two canary versions, none may be dropped, and prod must not
    // notice at all.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hammer = {
        let stop = std::sync::Arc::clone(&stop);
        let (input, want_canary, want_next) =
            (input.clone(), want_canary.clone(), want_next.clone());
        std::thread::spawn(move || {
            let mut stream = connect(addr);
            let mut replies = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                protocol::write_request_routed(&mut stream, 9, 1, &input).expect("write");
                let reply = protocol::read_reply(&mut stream).expect("admitted request died");
                assert_eq!(reply.status, Status::Ok, "{}", reply.message);
                let got: Vec<u32> = reply.logits.iter().map(|v| v.to_bits()).collect();
                assert!(
                    got == want_canary || got == want_next,
                    "canary reply matches neither engine version"
                );
                replies += 1;
            }
            replies
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    let swap = http(
        admin,
        &format!(
            "POST /models/swap?model=canary&artifact={} HTTP/1.1\r\n\
             Host: x\r\nConnection: close\r\n\r\n",
            next_artifact.display()
        ),
    );
    assert!(swap.starts_with("HTTP/1.1 200"), "got {swap}");
    assert!(swap.contains("\"new_version\":2") && swap.contains("\"drained\":true"));
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    assert!(hammer.join().expect("hammer thread") > 0);

    // Post-swap: canary serves the new engine, prod is untouched.
    let reply = routed(&mut stream, 20, 1, &input);
    assert_eq!(reply.status, Status::Ok, "{}", reply.message);
    let got: Vec<u32> = reply.logits.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want_next, "post-swap canary must serve the new artifact");
    let reply = routed(&mut stream, 21, 0, &input);
    let got: Vec<u32> = reply.logits.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want_prod, "prod must be untouched by the canary swap");
    drop(stream);
    drop(child);

    // The env fallback accepts the same NAME=PATH syntax, comma-separated.
    let (child, addr, _admin) = spawn_serve(|cmd| {
        cmd.env(
            "QSNC_SERVE_ARTIFACT",
            format!("prod={},canary={}", prod_artifact.display(), canary_artifact.display()),
        );
    });
    let mut stream = connect(addr);
    protocol::write_request_routed(&mut stream, 4, 1, &input).expect("write");
    let reply = protocol::read_reply(&mut stream).expect("reply");
    assert_eq!(reply.status, Status::Ok, "{}", reply.message);
    let got: Vec<u32> = reply.logits.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want_canary);
    drop(stream);
    drop(child);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_artifact_names_fail_loudly() {
    let dir = std::env::temp_dir().join(format!("qsnc_dup_artifact_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let artifact = dir.join("m.qsnca");
    write_engine(&engine(7), 0, &artifact);
    let out = Command::new(env!("CARGO_BIN_EXE_qsnc"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .arg("--artifact")
        .arg(format!("m={}", artifact.display()))
        .arg("--artifact")
        .arg(format!("m={}", artifact.display()))
        .output()
        .expect("run qsnc serve");
    assert!(!out.status.success(), "duplicate model names must be rejected");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("duplicate") || err.contains("m"), "stderr: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}
