//! Multi-process deployment-artifact test: `qsnc deploy` writes a
//! versioned `.qsnca` artifact in one process, a separate `qsnc serve`
//! process cold-starts from it (no training stack), and socket-level
//! replies must be bit-identical to the in-process engine that produced
//! the artifact. This is the end-to-end contract the CI `artifact` job
//! enforces.

use std::io::{BufRead as _, BufReader, Read as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use qsnc::core::{deploy_to_snc, QuantConfig};
use qsnc::nn::{save_params, ModelKind};
use qsnc::quant::{insert_signal_stages, ActivationQuantizer, ActivationRegularizer};
use qsnc::serve::protocol::{self, Status};
use qsnc::tensor::{init, TensorRng};

const SEED: u64 = 4242;
const BITS: u32 = 4;
const WIDTH: f32 = 0.5;
const INPUT_LEN: usize = 28 * 28;

/// Kills the serve child on scope exit so a failing assertion never
/// leaks a listener process into the test runner.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// The quantized LeNet topology exactly as the CLI builds it.
fn topology() -> qsnc::nn::Sequential {
    let mut rng = TensorRng::seed(SEED);
    let mut net = qsnc::nn::models::build_model(ModelKind::Lenet, WIDTH, 10, &mut rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(BITS),
        0.0,
        ActivationQuantizer::new(BITS),
    );
    switch.set_enabled(true);
    net
}

/// Runs `qsnc deploy` against `checkpoint`, writing `artifact`.
fn run_deploy(checkpoint: &Path, artifact: &Path) {
    let out = Command::new(env!("CARGO_BIN_EXE_qsnc"))
        .args([
            "deploy",
            "--model",
            "lenet",
            "--bits",
            "4",
            "--width",
            "0.5",
            "--seed",
            "4242",
            "--examples",
            "200",
            "--checkpoint",
        ])
        .arg(checkpoint)
        .arg("--artifact")
        .arg(artifact)
        .output()
        .expect("run qsnc deploy");
    assert!(
        out.status.success(),
        "deploy failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("artifact written"),
        "deploy did not confirm the artifact write"
    );
}

/// Spawns `qsnc serve` and parses the resolved ephemeral address from its
/// `listening on ADDR` stdout line.
fn spawn_serve(configure: impl FnOnce(&mut Command)) -> (KillOnDrop, std::net::SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_qsnc"));
    cmd.args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    configure(&mut cmd);
    let mut child = cmd.spawn().expect("spawn qsnc serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut child = KillOnDrop(child);
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read serve stdout");
    let addr = match line.trim().strip_prefix("listening on ") {
        Some(addr) => addr.parse().expect("parse listen address"),
        None => {
            let mut err = String::new();
            if let Some(mut stderr) = child.0.stderr.take() {
                let _ = stderr.read_to_string(&mut err);
            }
            panic!("serve did not announce its address: {line:?}\nstderr: {err}");
        }
    };
    (child, addr)
}

#[test]
fn served_artifact_replies_bit_identical_to_in_process_engine() {
    let dir = std::env::temp_dir().join(format!("qsnc_artifact_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let checkpoint: PathBuf = dir.join("model.qsnc");
    let artifact: PathBuf = dir.join("model.qsnca");

    // A checkpoint without training: compile cost and bit-identity do not
    // depend on the weight values, only the quantized topology.
    let mut net = topology();
    let file = std::fs::File::create(&checkpoint).expect("create checkpoint");
    save_params(&mut net, file).expect("save checkpoint");

    // Process 1: deploy + artifact write through the real CLI.
    run_deploy(&checkpoint, &artifact);

    // The artifact's provenance must digest the exact checkpoint bytes.
    let loaded = qsnc::memristor::load_artifact(&artifact).expect("load artifact in-process");
    let ckpt_bytes = std::fs::read(&checkpoint).expect("read checkpoint");
    assert_eq!(
        loaded.provenance.checkpoint_digest,
        qsnc::nn::checkpoint_digest(&ckpt_bytes),
        "artifact provenance does not digest the checkpoint it came from"
    );
    assert_eq!(loaded.provenance.model, ModelKind::Lenet.to_string());
    assert_eq!(loaded.input_dims, vec![1, 28, 28]);

    // In-process reference engine, compiled the same way `qsnc deploy`
    // compiles it.
    let snn = deploy_to_snc(&net, &QuantConfig::paper(BITS, BITS), None).expect("deploy");
    assert!(snn.has_fast_path(), "reference deploy must compile the integer engine");

    let mut rng = TensorRng::seed(99);
    let examples: Vec<_> = (0..4)
        .map(|_| init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng))
        .collect();
    let references: Vec<Vec<f32>> = examples
        .iter()
        .map(|x| {
            let mut out = Vec::new();
            assert!(snn.infer_into(x, &mut out));
            out
        })
        .collect();

    // Process 2: serve from the artifact alone (`--artifact` flag).
    let (child, addr) = spawn_serve(|cmd| {
        cmd.arg("--artifact").arg(&artifact);
    });
    let mut stream = TcpStream::connect(addr).expect("connect to serve child");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    for (i, (x, reference)) in examples.iter().zip(&references).enumerate() {
        let input = &x.as_slice()[..INPUT_LEN];
        // Alternate v1 and tagged v2 frames: both protocol paths must
        // reach the same engine.
        let tag = (i % 2 == 1).then_some(0xA000 + i as u32);
        match tag {
            Some(tag) => protocol::write_request_tagged(&mut stream, tag, input).expect("write"),
            None => protocol::write_request(&mut stream, input).expect("write"),
        }
        let reply = protocol::read_reply(&mut stream).expect("read reply");
        assert_eq!(reply.status, Status::Ok, "serve error: {}", reply.message);
        assert_eq!(reply.tag, tag);
        assert_eq!(reply.logits.len(), reference.len());
        assert!(
            reply.logits.iter().zip(reference).all(|(a, b)| a.to_bits() == b.to_bits()),
            "served logits are not bit-identical to the in-process engine \
             (example {i}: {:?} vs {:?})",
            reply.logits,
            reference,
        );
        // Lowest index wins on ties, matching the server's argmax rule.
        let argmax = reference
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |best, (i, &v)| {
                if v > best.1 {
                    (i, v)
                } else {
                    best
                }
            })
            .0 as u32;
        assert_eq!(reply.argmax, argmax);
    }
    drop(stream);
    drop(child);

    // And once more through the QSNC_SERVE_ARTIFACT fallback — the
    // supervisor-facing configuration path must reach the same engine.
    let (child, addr) = spawn_serve(|cmd| {
        cmd.env("QSNC_SERVE_ARTIFACT", &artifact);
    });
    let mut stream = TcpStream::connect(addr).expect("connect to env-configured child");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let input = &examples[0].as_slice()[..INPUT_LEN];
    protocol::write_request(&mut stream, input).expect("write");
    let reply = protocol::read_reply(&mut stream).expect("read reply");
    assert_eq!(reply.status, Status::Ok, "serve error: {}", reply.message);
    assert!(reply.logits.iter().zip(&references[0]).all(|(a, b)| a.to_bits() == b.to_bits()));
    drop(child);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_without_artifact_fails_loudly() {
    let out = Command::new(env!("CARGO_BIN_EXE_qsnc"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .env_remove("QSNC_SERVE_ARTIFACT")
        .output()
        .expect("run qsnc serve");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--artifact") && err.contains("QSNC_SERVE_ARTIFACT"),
        "error must name both configuration paths: {err}"
    );
}

#[test]
fn serve_rejects_corrupt_artifact_before_binding() {
    let dir = std::env::temp_dir().join(format!("qsnc_bad_artifact_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let bad = dir.join("bad.qsnca");
    std::fs::write(&bad, b"QSNAgarbage").expect("write bad artifact");
    let out = Command::new(env!("CARGO_BIN_EXE_qsnc"))
        .args(["serve", "--addr", "127.0.0.1:0", "--artifact"])
        .arg(&bad)
        .output()
        .expect("run qsnc serve");
    assert!(!out.status.success(), "serve must refuse a corrupt artifact");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot load artifact"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
