//! A fixed-capacity lock-free flight recorder of structured events.
//!
//! The counters and histograms answer "how much / how fast overall"; the
//! flight recorder answers "what did the last few *interesting* requests
//! actually do". It is a process-global ring of [`FLIGHT_CAPACITY`] slots:
//! recording claims the next slot with one `fetch_add` and overwrites the
//! oldest event, so writers never block and never allocate once a label
//! has been interned. The serving layer uses it to capture full stage
//! traces of slow requests (`QSNC_SERVE_SLOW_US`), dumped live from the
//! admin endpoint's `/slow` route.
//!
//! Every event is a label, a numeric id, and up to [`FLIGHT_MAX_FIELDS`]
//! `(key, u64)` fields. Labels and keys are interned to `u32` ids (a
//! short-lived read lock on a hit, same discipline as counter-name
//! resolution), so slot payloads are plain atomics — readers can race
//! writers without tearing memory-safety: a per-slot sequence number
//! (seqlock discipline) detects and discards events caught mid-overwrite.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// Number of events the flight recorder retains (oldest overwritten).
pub const FLIGHT_CAPACITY: usize = 256;

/// Most fields one event carries; extra fields are dropped silently.
pub const FLIGHT_MAX_FIELDS: usize = 12;

/// One decoded flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Event label (e.g. `serve.slow`).
    pub label: String,
    /// Caller-chosen id (e.g. the request id).
    pub id: u64,
    /// `(key, value)` fields in recording order.
    pub fields: Vec<(String, u64)>,
}

struct Slot {
    /// 0 = never written; `2t − 1` = ticket `t` writing; `2t` = complete.
    seq: AtomicU64,
    label: AtomicU32,
    id: AtomicU64,
    len: AtomicU32,
    keys: [AtomicU32; FLIGHT_MAX_FIELDS],
    vals: [AtomicU64; FLIGHT_MAX_FIELDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            label: AtomicU32::new(0),
            id: AtomicU64::new(0),
            len: AtomicU32::new(0),
            keys: std::array::from_fn(|_| AtomicU32::new(0)),
            vals: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

#[derive(Default)]
struct Interner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

struct Recorder {
    /// Tickets issued so far; ticket `t` (1-based) lives in slot
    /// `(t − 1) % FLIGHT_CAPACITY`.
    head: AtomicU64,
    slots: Vec<Slot>,
    interner: RwLock<Interner>,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        head: AtomicU64::new(0),
        slots: (0..FLIGHT_CAPACITY).map(|_| Slot::new()).collect(),
        interner: RwLock::new(Interner::default()),
    })
}

fn intern(name: &str) -> u32 {
    let rec = recorder();
    if let Some(&id) = rec.interner.read().unwrap().ids.get(name) {
        return id;
    }
    let mut interner = rec.interner.write().unwrap();
    if let Some(&id) = interner.ids.get(name) {
        return id;
    }
    let id = interner.names.len() as u32;
    interner.names.push(name.to_string());
    interner.ids.insert(name.to_string(), id);
    id
}

/// Records one event into the flight recorder, overwriting the oldest.
/// No-op when telemetry is disabled. Fields beyond [`FLIGHT_MAX_FIELDS`]
/// are dropped. Lock-free after `label` and all keys have been interned
/// once.
pub fn flight_record(label: &str, id: u64, fields: &[(&str, u64)]) {
    if !crate::enabled() {
        return;
    }
    let label_id = intern(label);
    let n = fields.len().min(FLIGHT_MAX_FIELDS);
    // Intern keys before claiming the slot so the write window stays short.
    let mut key_ids = [0u32; FLIGHT_MAX_FIELDS];
    for (slot, (key, _)) in key_ids.iter_mut().zip(fields.iter().take(n)) {
        *slot = intern(key);
    }
    let rec = recorder();
    let ticket = rec.head.fetch_add(1, Ordering::Relaxed) + 1;
    let slot = &rec.slots[(ticket as usize - 1) % FLIGHT_CAPACITY];
    // Seqlock write: odd while in flight, even (= 2·ticket) when complete.
    slot.seq.store(2 * ticket - 1, Ordering::Release);
    slot.label.store(label_id, Ordering::Relaxed);
    slot.id.store(id, Ordering::Relaxed);
    slot.len.store(n as u32, Ordering::Relaxed);
    for i in 0..n {
        slot.keys[i].store(key_ids[i], Ordering::Relaxed);
        slot.vals[i].store(fields[i].1, Ordering::Relaxed);
    }
    slot.seq.store(2 * ticket, Ordering::Release);
}

/// Copies out the retained events, oldest first. Events caught mid-write
/// by a concurrent recorder (or already overwritten) are skipped.
pub fn flight_events() -> Vec<FlightEvent> {
    let rec = recorder();
    let head = rec.head.load(Ordering::Acquire);
    let first = head.saturating_sub(FLIGHT_CAPACITY as u64) + 1;
    let names: Vec<String> = rec.interner.read().unwrap().names.clone();
    let name = |id: u32| -> String {
        names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("?{id}"))
    };
    let mut events = Vec::new();
    for ticket in first..=head {
        let slot = &rec.slots[(ticket as usize - 1) % FLIGHT_CAPACITY];
        if slot.seq.load(Ordering::Acquire) != 2 * ticket {
            continue; // mid-write or already claimed by a newer ticket
        }
        let label = slot.label.load(Ordering::Relaxed);
        let id = slot.id.load(Ordering::Relaxed);
        let len = (slot.len.load(Ordering::Relaxed) as usize).min(FLIGHT_MAX_FIELDS);
        let fields: Vec<(u32, u64)> = (0..len)
            .map(|i| {
                (
                    slot.keys[i].load(Ordering::Relaxed),
                    slot.vals[i].load(Ordering::Relaxed),
                )
            })
            .collect();
        std::sync::atomic::fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != 2 * ticket {
            continue; // torn by a wrap-around writer mid-copy
        }
        events.push(FlightEvent {
            label: name(label),
            id,
            fields: fields.into_iter().map(|(k, v)| (name(k), v)).collect(),
        });
    }
    events
}

/// Clears the flight recorder (called by [`crate::reset`]).
pub(crate) fn flight_reset() {
    let rec = recorder();
    // Order matters for concurrent readers: invalidate slots first, then
    // rewind the head; a racing reader sees empty slots either way.
    for slot in &rec.slots {
        slot.seq.store(0, Ordering::Release);
    }
    rec.head.store(0, Ordering::Release);
    let mut interner = rec.interner.write().unwrap();
    interner.ids.clear();
    interner.names.clear();
}

/// Renders `events` as a JSON array (the `/slow` admin route's payload).
pub fn flight_json(events: &[FlightEvent]) -> crate::json::Json {
    use crate::json::Json;
    Json::Arr(
        events
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("label", Json::Str(e.label.clone())),
                    ("id", Json::Num(e.id as f64)),
                    (
                        "fields",
                        Json::obj(
                            e.fields
                                .iter()
                                .map(|(k, v)| (k.as_str(), Json::Num(*v as f64)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_mode, testing, TelemetryMode};

    fn with_recording<R>(f: impl FnOnce() -> R) -> R {
        let _guard = testing::lock();
        set_mode(TelemetryMode::Record);
        crate::reset();
        let out = f();
        crate::reset();
        set_mode(TelemetryMode::Off);
        out
    }

    #[test]
    fn records_and_dumps_in_order() {
        with_recording(|| {
            for i in 0..5u64 {
                flight_record("test.event", i, &[("a", i * 10), ("b", i + 1)]);
            }
            let events = flight_events();
            assert_eq!(events.len(), 5);
            for (i, e) in events.iter().enumerate() {
                assert_eq!(e.label, "test.event");
                assert_eq!(e.id, i as u64);
                assert_eq!(e.fields, vec![("a".into(), i as u64 * 10), ("b".into(), i as u64 + 1)]);
            }
        });
    }

    #[test]
    fn wraps_keeping_newest() {
        with_recording(|| {
            let total = FLIGHT_CAPACITY as u64 + 17;
            for i in 0..total {
                flight_record("wrap", i, &[("i", i)]);
            }
            let events = flight_events();
            assert_eq!(events.len(), FLIGHT_CAPACITY);
            assert_eq!(events.first().unwrap().id, total - FLIGHT_CAPACITY as u64);
            assert_eq!(events.last().unwrap().id, total - 1);
        });
    }

    #[test]
    fn excess_fields_are_dropped() {
        with_recording(|| {
            let fields: Vec<(String, u64)> =
                (0..20).map(|i| (format!("k{i}"), i as u64)).collect();
            let borrowed: Vec<(&str, u64)> =
                fields.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            flight_record("overflow", 1, &borrowed);
            let events = flight_events();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].fields.len(), FLIGHT_MAX_FIELDS);
        });
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _guard = testing::lock();
        set_mode(TelemetryMode::Off);
        crate::reset();
        flight_record("ghost", 1, &[("x", 1)]);
        assert!(flight_events().is_empty());
    }

    #[test]
    fn concurrent_writers_never_produce_torn_events() {
        with_recording(|| {
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    s.spawn(move || {
                        for i in 0..2_000u64 {
                            let id = t * 1_000_000 + i;
                            // Field value mirrors the id: a torn slot would
                            // show a mismatch.
                            flight_record("conc", id, &[("echo", id)]);
                        }
                    });
                }
            });
            let events = flight_events();
            assert!(!events.is_empty());
            for e in &events {
                assert_eq!(e.label, "conc");
                assert_eq!(e.fields.len(), 1);
                assert_eq!(e.fields[0].1, e.id, "torn event: {e:?}");
            }
        });
    }
}
