//! # qsnc-telemetry
//!
//! Process-global, env-gated observability for the qsnc pipelines:
//! hierarchical wall-clock **spans**, atomic **counters**, fixed-bucket
//! **histograms**, log-bucketed **quantile sketches** (~1% relative error,
//! [`quantile_observe`]), per-step **series**, and a fixed-capacity
//! **flight recorder** of structured events ([`flight_record`]), exported
//! as JSON or rendered by `qsnc_core::report`. Scrapers that want
//! per-interval rates instead of lifetime totals take windowed deltas via
//! [`snapshot_since`] / [`DeltaCursor`].
//!
//! ## Gating
//!
//! Telemetry is controlled by the `QSNC_TELEMETRY` environment variable,
//! read once per process (or overridden programmatically with
//! [`set_mode`]):
//!
//! - unset / `0` / `off` — **disabled**. Every instrumentation point costs
//!   a single relaxed atomic load; nothing is recorded or allocated.
//! - `1` / `on` — record in memory; callers may render an ASCII summary.
//! - `json` — record, and programs that finish a run should emit
//!   [`export_json`] (the bench binaries and examples do).
//!
//! ## Recording
//!
//! ```
//! let _guard = qsnc_telemetry::testing::lock();
//! qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Record);
//! {
//!     let _span = qsnc_telemetry::span!("train.epoch");
//!     qsnc_telemetry::counter_add("train.batches", 1);
//!     qsnc_telemetry::observe("quant.cluster.residual", 0.003, &[0.001, 0.01, 0.1]);
//!     qsnc_telemetry::record_series("train.loss", 0, 2.31);
//! }
//! let snap = qsnc_telemetry::snapshot();
//! assert_eq!(snap.counter("train.batches"), Some(1));
//! qsnc_telemetry::reset();
//! qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Off);
//! ```
//!
//! Span names nest: a span started while another is active on the same
//! thread records under the joined path (`"train.epoch/nn.forward.00"`),
//! which is how per-layer timings appear inside their epoch. Counters and
//! histograms are flat, named by a dotted taxonomy documented in
//! README.md § Observability — the names are a public contract. Names may
//! embed a runtime-chosen segment (the serving layer's per-model
//! `serve.model.{name}.*` family does); such families are still part of
//! the taxonomy — the *pattern* is frozen, and emitters must keep the
//! segment cardinality bounded (model names come from an operator-sized
//! registry, not from request data) and pre-format the name once rather
//! than formatting per event on a hot path.
//!
//! All mutation is lock-free on the hot increment paths (atomics), so the
//! scoped worker threads of `qsnc_tensor::parallel` can record
//! concurrently; name → instrument resolution takes a short-lived lock.

#![warn(missing_docs)]

mod flight;
pub mod json;
mod quantile;

pub use flight::{
    flight_events, flight_json, flight_record, FlightEvent, FLIGHT_CAPACITY, FLIGHT_MAX_FIELDS,
};
pub use quantile::{
    bucket_index, bucket_value, QuantileHistogram, QuantileSnapshot, QUANTILE_BUCKETS,
    QUANTILE_GAMMA, QUANTILE_RELATIVE_ERROR,
};

use json::Json;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Telemetry operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryMode {
    /// Disabled: instrumentation points are a single relaxed atomic load.
    Off,
    /// Record spans/counters/histograms/series in memory.
    Record,
    /// Record, and signal to binaries that they should emit JSON on exit.
    Json,
}

const MODE_UNINIT: u8 = 0;
const MODE_OFF: u8 = 1;
const MODE_RECORD: u8 = 2;
const MODE_JSON: u8 = 3;

/// Current mode; `MODE_UNINIT` until first query resolves `QSNC_TELEMETRY`.
static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

fn init_mode_from_env() -> u8 {
    let v = match std::env::var("QSNC_TELEMETRY") {
        Ok(v) => v.trim().to_ascii_lowercase(),
        Err(_) => String::new(),
    };
    let code = match v.as_str() {
        "1" | "on" | "true" => MODE_RECORD,
        "json" => MODE_JSON,
        _ => MODE_OFF,
    };
    // A concurrent set_mode wins over the env default.
    match MODE.compare_exchange(MODE_UNINIT, code, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => code,
        Err(current) => current,
    }
}

/// Returns the process-wide telemetry mode.
pub fn mode() -> TelemetryMode {
    match MODE.load(Ordering::Relaxed) {
        MODE_RECORD => TelemetryMode::Record,
        MODE_JSON => TelemetryMode::Json,
        MODE_OFF => TelemetryMode::Off,
        _ => match init_mode_from_env() {
            MODE_RECORD => TelemetryMode::Record,
            MODE_JSON => TelemetryMode::Json,
            _ => TelemetryMode::Off,
        },
    }
}

/// Whether telemetry is recording. This is the hot-path guard: after the
/// first call it is one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        MODE_OFF => false,
        MODE_RECORD | MODE_JSON => true,
        _ => mode() != TelemetryMode::Off,
    }
}

/// Overrides the mode (tests, or programs enabling telemetry explicitly).
pub fn set_mode(m: TelemetryMode) {
    let code = match m {
        TelemetryMode::Off => MODE_OFF,
        TelemetryMode::Record => MODE_RECORD,
        TelemetryMode::Json => MODE_JSON,
    };
    MODE.store(code, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Aggregate timing for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct SpanStat {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

/// A fixed-bucket histogram with explicit underflow/overflow buckets.
///
/// For sorted edges `e₀ < e₁ < … < eₙ₋₁` there are `n + 1` buckets:
/// bucket 0 counts `v < e₀`, bucket `i` counts `eᵢ₋₁ ≤ v < eᵢ`, and the
/// last bucket counts `v ≥ eₙ₋₁`.
#[derive(Debug)]
struct Histogram {
    edges: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum of observed values, stored as `f64` bits (CAS loop).
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(edges: &[f64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one bucket edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        Histogram {
            edges: edges.to_vec(),
            buckets: (0..=edges.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn observe(&self, value: f64) {
        let idx = self.edges.partition_point(|&e| e <= value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
    quantiles: RwLock<HashMap<String, Arc<QuantileHistogram>>>,
    spans: Mutex<HashMap<String, SpanStat>>,
    series: Mutex<HashMap<String, Vec<(u64, f64)>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

thread_local! {
    /// Active span names on this thread, innermost last.
    static SPAN_STACK: std::cell::RefCell<Vec<String>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// An RAII guard recording wall-clock time from creation to drop under the
/// hierarchical path active at creation. Created by [`start_span`] or the
/// [`span!`] macro.
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when telemetry was disabled at creation: drop is a no-op.
    started: Option<Instant>,
    path: String,
}

impl SpanGuard {
    /// The full hierarchical path this guard records under.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(started) = self.started else { return };
        let elapsed_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let mut spans = registry().spans.lock().unwrap();
        let stat = spans.entry(std::mem::take(&mut self.path)).or_default();
        stat.count += 1;
        stat.total_ns += elapsed_ns;
        stat.max_ns = stat.max_ns.max(elapsed_ns);
        stat.min_ns = if stat.count == 1 {
            elapsed_ns
        } else {
            stat.min_ns.min(elapsed_ns)
        };
    }
}

/// Starts a span named `name`, nested under any span already active on this
/// thread. Returns an inert guard when telemetry is disabled; prefer the
/// [`span!`] macro, which also skips the name allocation in that case.
pub fn start_span(name: impl Into<String>) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            started: None,
            path: String::new(),
        };
    }
    let name = name.into();
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = if stack.is_empty() {
            name.clone()
        } else {
            format!("{}/{}", stack.join("/"), name)
        };
        stack.push(name);
        path
    });
    SpanGuard {
        started: Some(Instant::now()),
        path,
    }
}

/// Starts a span with a `format!`-style name, paying for the formatting and
/// the guard only when telemetry is enabled.
///
/// Evaluates to `Option<SpanGuard>`; bind it (`let _span = span!(…)`) so it
/// lives to the end of the scope.
///
/// # Examples
///
/// ```
/// qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Record);
/// {
///     let _epoch = qsnc_telemetry::span!("train.epoch");
///     let _batch = qsnc_telemetry::span!("batch_{}", 7); // nests under it
/// } // guards drop here, recording wall-clock time
///
/// let snap = qsnc_telemetry::snapshot();
/// assert!(snap.spans.iter().any(|s| s.path == "train.epoch"));
/// assert!(snap.spans.iter().any(|s| s.path == "train.epoch/batch_7"));
/// ```
#[macro_export]
macro_rules! span {
    ($($arg:tt)*) => {
        if $crate::enabled() {
            Some($crate::start_span(format!($($arg)*)))
        } else {
            None
        }
    };
}

// ---------------------------------------------------------------------------
// Counters / histograms / series
// ---------------------------------------------------------------------------

/// Adds `n` to the named counter. No-op when telemetry is disabled.
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    let reg = registry();
    if let Some(c) = reg.counters.read().unwrap().get(name) {
        c.fetch_add(n, Ordering::Relaxed);
        return;
    }
    let mut counters = reg.counters.write().unwrap();
    counters
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(AtomicU64::new(0)))
        .fetch_add(n, Ordering::Relaxed);
}

/// Records `value` into the named fixed-bucket histogram. The first call
/// for a name fixes its bucket edges; later calls ignore `edges`. No-op
/// when telemetry is disabled.
///
/// # Panics
///
/// Panics if a first call passes empty or unsorted `edges`.
pub fn observe(name: &str, value: f64, edges: &[f64]) {
    if !enabled() {
        return;
    }
    let reg = registry();
    if let Some(h) = reg.histograms.read().unwrap().get(name) {
        h.observe(value);
        return;
    }
    let mut histograms = reg.histograms.write().unwrap();
    histograms
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(Histogram::new(edges)))
        .observe(value);
}

/// Records `value` into the named log-bucketed quantile histogram
/// ([`QuantileHistogram`]) — the right instrument for latency-style
/// distributions whose quantiles matter: any `quantile(q)` read from the
/// snapshot is within [`QUANTILE_RELATIVE_ERROR`] (~1%) of a true
/// observation, with no per-site bucket tuning. No-op when telemetry is
/// disabled.
pub fn quantile_observe(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let reg = registry();
    if let Some(h) = reg.quantiles.read().unwrap().get(name) {
        h.observe(value);
        return;
    }
    let mut quantiles = reg.quantiles.write().unwrap();
    quantiles
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(QuantileHistogram::new()))
        .observe(value);
}

/// Appends `(step, value)` to the named time series (e.g. per-epoch loss).
/// No-op when telemetry is disabled.
pub fn record_series(name: &str, step: u64, value: f64) {
    if !enabled() {
        return;
    }
    registry()
        .series
        .lock()
        .unwrap()
        .entry(name.to_string())
        .or_default()
        .push((step, value));
}

/// Clears all recorded telemetry (spans, counters, histograms, quantile
/// sketches, series, and the flight recorder). The mode is unchanged.
pub fn reset() {
    let reg = registry();
    reg.counters.write().unwrap().clear();
    reg.histograms.write().unwrap().clear();
    reg.quantiles.write().unwrap().clear();
    reg.spans.lock().unwrap().clear();
    reg.series.lock().unwrap().clear();
    flight::flight_reset();
}

// ---------------------------------------------------------------------------
// Snapshot + export
// ---------------------------------------------------------------------------

/// Aggregate timing of one span path in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Hierarchical path, segments joined by `/`.
    pub path: String,
    /// Number of completed spans under this path.
    pub count: u64,
    /// Total wall-clock nanoseconds.
    pub total_ns: u64,
    /// Fastest single span.
    pub min_ns: u64,
    /// Slowest single span.
    pub max_ns: u64,
}

/// One histogram in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Bucket edges (strictly increasing).
    pub edges: Vec<f64>,
    /// Bucket counts, `edges.len() + 1` entries: `[underflow, …, overflow]`.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// A point-in-time copy of everything recorded, sorted by name for
/// deterministic output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Span aggregates.
    pub spans: Vec<SpanSnapshot>,
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Histograms.
    pub histograms: Vec<HistogramSnapshot>,
    /// Log-bucketed quantile sketches.
    pub quantiles: Vec<QuantileSnapshot>,
    /// Time series, each a list of `(step, value)`.
    pub series: Vec<(String, Vec<(u64, f64)>)>,
}

impl Snapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a span aggregate by exact path.
    pub fn span(&self, path: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Looks up a quantile sketch by name.
    pub fn quantile_sketch(&self, name: &str) -> Option<&QuantileSnapshot> {
        self.quantiles.iter().find(|q| q.name == name)
    }

    /// Looks up a series by name.
    pub fn series(&self, name: &str) -> Option<&[(u64, f64)]> {
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, points)| points.as_slice())
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.histograms.is_empty()
            && self.quantiles.is_empty()
            && self.series.is_empty()
    }

    /// The difference `self − baseline`: what was recorded *between* the
    /// two snapshots. Scrapers use this (via [`snapshot_since`]) to see
    /// per-interval rates instead of lifetime totals.
    ///
    /// Semantics per instrument kind:
    ///
    /// - **Counters** subtract (saturating; a name absent from the
    ///   baseline keeps its full value). Zero-delta counters are kept, so
    ///   scrape output has a stable set of names.
    /// - **Histograms** subtract bucket-wise when the edges match;
    ///   mismatched edges (a reset in between) fall back to the current
    ///   values.
    /// - **Quantile sketches** subtract bucket-wise
    ///   ([`QuantileSnapshot::delta_since`]); windowed quantiles stay
    ///   within the error bound, but `min`/`max` remain lifetime extremes.
    /// - **Spans** subtract `count`/`total_ns`; `min_ns`/`max_ns` remain
    ///   lifetime extremes (per-window extremes are not recoverable).
    /// - **Series** keep only the points appended since the baseline.
    pub fn delta_since(&self, baseline: &Snapshot) -> Snapshot {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                let base = baseline.spans.iter().find(|b| b.path == s.path);
                SpanSnapshot {
                    path: s.path.clone(),
                    count: s.count.saturating_sub(base.map_or(0, |b| b.count)),
                    total_ns: s.total_ns.saturating_sub(base.map_or(0, |b| b.total_ns)),
                    min_ns: s.min_ns,
                    max_ns: s.max_ns,
                }
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| {
                let base = baseline.counter(name).unwrap_or(0);
                (name.clone(), v.saturating_sub(base))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                match baseline.histogram(&h.name) {
                    Some(b) if b.edges == h.edges && b.buckets.len() == h.buckets.len() => {
                        HistogramSnapshot {
                            name: h.name.clone(),
                            edges: h.edges.clone(),
                            buckets: h
                                .buckets
                                .iter()
                                .zip(&b.buckets)
                                .map(|(&cur, &base)| cur.saturating_sub(base))
                                .collect(),
                            count: h.count.saturating_sub(b.count),
                            sum: h.sum - b.sum,
                        }
                    }
                    _ => h.clone(),
                }
            })
            .collect();
        let quantiles = self
            .quantiles
            .iter()
            .map(|q| match baseline.quantile_sketch(&q.name) {
                Some(b) => q.delta_since(b),
                None => q.clone(),
            })
            .collect();
        let series = self
            .series
            .iter()
            .map(|(name, points)| {
                let skip = baseline.series(name).map_or(0, <[(u64, f64)]>::len);
                (name.clone(), points.iter().skip(skip).copied().collect())
            })
            .collect();
        Snapshot { spans, counters, histograms, quantiles, series }
    }

    /// Converts to the JSON export shape (see [`export_json`]).
    pub fn to_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("path", Json::Str(s.path.clone())),
                    ("count", Json::Num(s.count as f64)),
                    ("total_ns", Json::Num(s.total_ns as f64)),
                    ("mean_ns", Json::Num(s.total_ns as f64 / s.count.max(1) as f64)),
                    ("min_ns", Json::Num(s.min_ns as f64)),
                    ("max_ns", Json::Num(s.max_ns as f64)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, value)| {
                Json::obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("value", Json::Num(*value as f64)),
                ])
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                Json::obj(vec![
                    ("name", Json::Str(h.name.clone())),
                    ("edges", Json::Arr(h.edges.iter().map(|&e| Json::Num(e)).collect())),
                    (
                        "buckets",
                        Json::Arr(h.buckets.iter().map(|&b| Json::Num(b as f64)).collect()),
                    ),
                    ("count", Json::Num(h.count as f64)),
                    ("sum", Json::Num(h.sum)),
                ])
            })
            .collect();
        let quantiles = self
            .quantiles
            .iter()
            .map(|q| {
                Json::obj(vec![
                    ("name", Json::Str(q.name.clone())),
                    ("count", Json::Num(q.count as f64)),
                    ("sum", Json::Num(q.sum)),
                    ("min", Json::Num(q.min)),
                    ("max", Json::Num(q.max)),
                    (
                        "bucket_index",
                        Json::Arr(q.buckets.iter().map(|&(i, _)| Json::Num(i as f64)).collect()),
                    ),
                    (
                        "bucket_count",
                        Json::Arr(q.buckets.iter().map(|&(_, n)| Json::Num(n as f64)).collect()),
                    ),
                ])
            })
            .collect();
        let series = self
            .series
            .iter()
            .map(|(name, points)| {
                Json::obj(vec![
                    ("name", Json::Str(name.clone())),
                    (
                        "steps",
                        Json::Arr(points.iter().map(|&(s, _)| Json::Num(s as f64)).collect()),
                    ),
                    (
                        "values",
                        Json::Arr(points.iter().map(|&(_, v)| Json::Num(v)).collect()),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("source", Json::Str("qsnc-telemetry".into())),
            ("version", Json::Num(2.0)),
            ("spans", Json::Arr(spans)),
            ("counters", Json::Arr(counters)),
            ("histograms", Json::Arr(histograms)),
            ("quantiles", Json::Arr(quantiles)),
            ("series", Json::Arr(series)),
        ])
    }

    /// Parses a snapshot back from its JSON export (inverse of
    /// [`Snapshot::to_json`], up to f64 rounding of counts).
    ///
    /// # Errors
    ///
    /// Returns an error string for malformed JSON or a missing field.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let root = Json::parse(text).map_err(|e| e.to_string())?;
        let arr = |key: &str| -> Result<Vec<Json>, String> {
            Ok(root
                .get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("missing array field `{key}`"))?
                .to_vec())
        };
        let str_field = |v: &Json, key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("missing string field `{key}`"))?
                .to_string())
        };
        let num_field = |v: &Json, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing number field `{key}`"))
        };
        let num_list = |v: &Json, key: &str| -> Result<Vec<f64>, String> {
            v.get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("missing array field `{key}`"))?
                .iter()
                .map(|x| x.as_f64().ok_or_else(|| format!("non-number in `{key}`")))
                .collect()
        };

        let mut snap = Snapshot::default();
        for s in arr("spans")? {
            snap.spans.push(SpanSnapshot {
                path: str_field(&s, "path")?,
                count: num_field(&s, "count")? as u64,
                total_ns: num_field(&s, "total_ns")? as u64,
                min_ns: num_field(&s, "min_ns")? as u64,
                max_ns: num_field(&s, "max_ns")? as u64,
            });
        }
        for c in arr("counters")? {
            snap.counters
                .push((str_field(&c, "name")?, num_field(&c, "value")? as u64));
        }
        for h in arr("histograms")? {
            snap.histograms.push(HistogramSnapshot {
                name: str_field(&h, "name")?,
                edges: num_list(&h, "edges")?,
                buckets: num_list(&h, "buckets")?.into_iter().map(|b| b as u64).collect(),
                count: num_field(&h, "count")? as u64,
                sum: num_field(&h, "sum")?,
            });
        }
        // Absent in version-1 documents (recorded before quantile sketches
        // existed); treat missing as empty rather than failing the parse.
        if root.get("quantiles").is_some() {
            for q in arr("quantiles")? {
                let indexes = num_list(&q, "bucket_index")?;
                let counts = num_list(&q, "bucket_count")?;
                if indexes.len() != counts.len() {
                    return Err("quantile bucket_index/bucket_count length mismatch".into());
                }
                snap.quantiles.push(QuantileSnapshot {
                    name: str_field(&q, "name")?,
                    count: num_field(&q, "count")? as u64,
                    sum: num_field(&q, "sum")?,
                    min: num_field(&q, "min")?,
                    max: num_field(&q, "max")?,
                    buckets: indexes
                        .into_iter()
                        .map(|i| i as u32)
                        .zip(counts.into_iter().map(|n| n as u64))
                        .collect(),
                });
            }
        }
        for s in arr("series")? {
            let steps = num_list(&s, "steps")?;
            let values = num_list(&s, "values")?;
            if steps.len() != values.len() {
                return Err("series steps/values length mismatch".into());
            }
            snap.series.push((
                str_field(&s, "name")?,
                steps
                    .into_iter()
                    .map(|x| x as u64)
                    .zip(values)
                    .collect(),
            ));
        }
        Ok(snap)
    }
}

/// Copies out everything recorded so far, sorted by name/path.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let mut spans: Vec<SpanSnapshot> = reg
        .spans
        .lock()
        .unwrap()
        .iter()
        .map(|(path, s)| SpanSnapshot {
            path: path.clone(),
            count: s.count,
            total_ns: s.total_ns,
            min_ns: s.min_ns,
            max_ns: s.max_ns,
        })
        .collect();
    spans.sort_by(|a, b| a.path.cmp(&b.path));
    let mut counters: Vec<(String, u64)> = reg
        .counters
        .read()
        .unwrap()
        .iter()
        .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
        .collect();
    counters.sort();
    let mut histograms: Vec<HistogramSnapshot> = reg
        .histograms
        .read()
        .unwrap()
        .iter()
        .map(|(name, h)| HistogramSnapshot {
            name: name.clone(),
            edges: h.edges.clone(),
            buckets: h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: h.count.load(Ordering::Relaxed),
            sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    let mut quantiles: Vec<QuantileSnapshot> = reg
        .quantiles
        .read()
        .unwrap()
        .iter()
        .map(|(name, q)| q.snapshot_named(name))
        .collect();
    quantiles.sort_by(|a, b| a.name.cmp(&b.name));
    let mut series: Vec<(String, Vec<(u64, f64)>)> = reg
        .series
        .lock()
        .unwrap()
        .iter()
        .map(|(name, points)| (name.clone(), points.clone()))
        .collect();
    series.sort_by(|a, b| a.0.cmp(&b.0));
    Snapshot {
        spans,
        counters,
        histograms,
        quantiles,
        series,
    }
}

/// A scraper's position in the telemetry stream: holds the snapshot taken
/// at the previous [`snapshot_since`] call, so each call returns only the
/// window recorded since. One cursor per scraper; cursors are independent.
#[derive(Debug, Clone, Default)]
pub struct DeltaCursor {
    baseline: Snapshot,
}

impl DeltaCursor {
    /// A fresh cursor: the first [`snapshot_since`] returns lifetime
    /// totals (delta against nothing).
    pub fn new() -> DeltaCursor {
        DeltaCursor::default()
    }
}

/// Takes a snapshot, returns its delta against `cursor`'s baseline, and
/// advances the cursor — so consecutive calls see disjoint windows whose
/// counters sum to the lifetime totals.
///
/// # Examples
///
/// ```
/// let _guard = qsnc_telemetry::testing::lock();
/// qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Record);
/// qsnc_telemetry::reset();
/// let mut cursor = qsnc_telemetry::DeltaCursor::new();
///
/// qsnc_telemetry::counter_add("reqs", 3);
/// assert_eq!(qsnc_telemetry::snapshot_since(&mut cursor).counter("reqs"), Some(3));
/// qsnc_telemetry::counter_add("reqs", 2);
/// assert_eq!(qsnc_telemetry::snapshot_since(&mut cursor).counter("reqs"), Some(2));
///
/// qsnc_telemetry::reset();
/// qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Off);
/// ```
pub fn snapshot_since(cursor: &mut DeltaCursor) -> Snapshot {
    let current = snapshot();
    let delta = current.delta_since(&cursor.baseline);
    cursor.baseline = current;
    delta
}

/// Renders the current snapshot as a pretty-printed JSON document in the
/// BENCH_*.json house shape (`source`/`version` header plus `spans`,
/// `counters`, `histograms`, `series` sections).
pub fn export_json() -> String {
    snapshot().to_json().render_pretty(2)
}

/// Test support: serializing access to the process-global registry/mode.
pub mod testing {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serializes tests that toggle [`super::set_mode`] or call
    /// [`super::reset`] within one test binary. Lock, set the mode, run,
    /// reset, restore `Off` — see the crate-level example.
    pub fn lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(Mutex::default)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_recording<R>(f: impl FnOnce() -> R) -> R {
        let _guard = testing::lock();
        set_mode(TelemetryMode::Record);
        reset();
        let out = f();
        reset();
        set_mode(TelemetryMode::Off);
        out
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _guard = testing::lock();
        set_mode(TelemetryMode::Off);
        reset();
        {
            let _span = span!("ghost.{}", 1);
            counter_add("ghost.counter", 5);
            observe("ghost.hist", 1.0, &[0.5]);
            record_series("ghost.series", 0, 1.0);
        }
        let snap = snapshot();
        assert!(snap.is_empty(), "{snap:?}");
    }

    #[test]
    fn counters_accumulate() {
        with_recording(|| {
            counter_add("a", 2);
            counter_add("a", 3);
            counter_add("b", 1);
            counter_add("zero", 0); // no-op, not even registered
            let snap = snapshot();
            assert_eq!(snap.counter("a"), Some(5));
            assert_eq!(snap.counter("b"), Some(1));
            assert_eq!(snap.counter("zero"), None);
        });
    }

    #[test]
    fn spans_nest_into_paths() {
        with_recording(|| {
            {
                let outer = start_span("outer");
                assert_eq!(outer.path(), "outer");
                let inner = start_span("inner");
                assert_eq!(inner.path(), "outer/inner");
            }
            {
                let _again = start_span("outer");
            }
            let snap = snapshot();
            let outer = snap.span("outer").unwrap();
            assert_eq!(outer.count, 2);
            assert!(outer.min_ns <= outer.max_ns);
            assert!(outer.total_ns >= outer.max_ns);
            assert_eq!(snap.span("outer/inner").unwrap().count, 1);
            // The stack unwound: a fresh span is top-level again.
            let fresh = start_span("fresh");
            assert_eq!(fresh.path(), "fresh");
        });
    }

    #[test]
    fn histogram_buckets_cover_underflow_and_overflow() {
        with_recording(|| {
            let edges = [0.0, 1.0, 2.0];
            observe("h", -5.0, &edges); // underflow: v < 0.0
            observe("h", 0.0, &edges); // [0, 1)
            observe("h", 0.99, &edges); // [0, 1)
            observe("h", 1.0, &edges); // [1, 2)
            observe("h", 2.0, &edges); // overflow: v >= 2.0
            observe("h", 100.0, &edges); // overflow
            let h = snapshot().histogram("h").unwrap().clone();
            assert_eq!(h.buckets, vec![1, 2, 1, 2]);
            assert_eq!(h.count, 6);
            assert!((h.sum - 99.0 + 0.01).abs() < 1e-9, "sum {}", h.sum);
        });
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_edges() {
        let _h = Histogram::new(&[1.0, 1.0]);
    }

    #[test]
    fn concurrent_counter_increments_are_exact() {
        with_recording(|| {
            const THREADS: usize = 4;
            const PER_THREAD: u64 = 10_000;
            std::thread::scope(|s| {
                for _ in 0..THREADS {
                    s.spawn(|| {
                        for _ in 0..PER_THREAD {
                            counter_add("conc", 1);
                            observe("conc.h", 1.5, &[1.0, 2.0]);
                        }
                    });
                }
            });
            let snap = snapshot();
            assert_eq!(snap.counter("conc"), Some(THREADS as u64 * PER_THREAD));
            let h = snap.histogram("conc.h").unwrap();
            assert_eq!(h.count, THREADS as u64 * PER_THREAD);
            assert_eq!(h.buckets[1], THREADS as u64 * PER_THREAD);
            assert!((h.sum - 1.5 * (THREADS as u64 * PER_THREAD) as f64).abs() < 1e-6);
        });
    }

    #[test]
    fn series_preserve_order() {
        with_recording(|| {
            record_series("loss", 0, 2.0);
            record_series("loss", 1, 1.5);
            record_series("loss", 2, 1.1);
            let snap = snapshot();
            assert_eq!(snap.series("loss").unwrap(), &[(0, 2.0), (1, 1.5), (2, 1.1)]);
        });
    }

    #[test]
    fn snapshot_json_round_trips() {
        with_recording(|| {
            counter_add("c.one", 7);
            observe("h.one", 0.5, &[0.0, 1.0]);
            quantile_observe("q.one", 125.0);
            quantile_observe("q.one", 3_000.0);
            record_series("s.one", 3, 0.25);
            {
                let _sp = start_span("root");
                let _in = start_span("leaf");
            }
            let snap = snapshot();
            let text = snap.to_json().render_pretty(2);
            let back = Snapshot::from_json(&text).expect("parse own export");
            assert_eq!(back, snap);
            // Export contains the contractual top-level keys.
            let root = Json::parse(&text).unwrap();
            for key in [
                "source", "version", "spans", "counters", "histograms", "quantiles", "series",
            ] {
                assert!(root.get(key).is_some(), "missing {key}");
            }
        });
    }

    #[test]
    fn version1_documents_without_quantiles_still_parse() {
        let doc = r#"{
            "source": "qsnc-telemetry", "version": 1,
            "spans": [], "counters": [{"name": "c", "value": 4}],
            "histograms": [], "series": []
        }"#;
        let snap = Snapshot::from_json(doc).expect("v1 doc");
        assert_eq!(snap.counter("c"), Some(4));
        assert!(snap.quantiles.is_empty());
    }

    #[test]
    fn quantile_registry_records_and_queries() {
        with_recording(|| {
            for i in 1..=100 {
                quantile_observe("lat", i as f64);
            }
            let snap = snapshot();
            let q = snap.quantile_sketch("lat").expect("registered");
            assert_eq!(q.count, 100);
            assert_eq!(q.quantile(0.0), 1.0);
            assert_eq!(q.quantile(1.0), 100.0);
            let p50 = q.quantile(0.5);
            assert!((p50 - 50.0).abs() / 50.0 < 0.02, "p50 {p50}");
        });
    }

    #[test]
    fn delta_snapshots_window_every_instrument_kind() {
        with_recording(|| {
            let mut cursor = DeltaCursor::new();
            counter_add("d.c", 10);
            observe("d.h", 1.5, &[1.0, 2.0]);
            quantile_observe("d.q", 100.0);
            record_series("d.s", 0, 1.0);
            let first = snapshot_since(&mut cursor);
            assert_eq!(first.counter("d.c"), Some(10));
            assert_eq!(first.histogram("d.h").unwrap().count, 1);
            assert_eq!(first.quantile_sketch("d.q").unwrap().count, 1);
            assert_eq!(first.series("d.s").unwrap().len(), 1);

            counter_add("d.c", 5);
            quantile_observe("d.q", 9_000.0);
            quantile_observe("d.q", 9_000.0);
            record_series("d.s", 1, 2.0);
            let second = snapshot_since(&mut cursor);
            assert_eq!(second.counter("d.c"), Some(5));
            assert_eq!(second.histogram("d.h").unwrap().count, 0);
            let q = second.quantile_sketch("d.q").unwrap();
            assert_eq!(q.count, 2);
            // The window holds only the 9000s, so its p50 must not see the
            // baseline's 100.
            let p50 = q.quantile(0.5);
            assert!((p50 - 9_000.0).abs() / 9_000.0 < 0.011, "windowed p50 {p50}");
            assert_eq!(second.series("d.s").unwrap(), &[(1, 2.0)]);

            // A third, idle window is all zeros but keeps the names.
            let third = snapshot_since(&mut cursor);
            assert_eq!(third.counter("d.c"), Some(0));
            assert_eq!(third.quantile_sketch("d.q").unwrap().count, 0);
        });
    }

    #[test]
    fn span_macro_skips_formatting_when_off() {
        let _guard = testing::lock();
        set_mode(TelemetryMode::Off);
        let guard = span!("never.{}", 1);
        assert!(guard.is_none());
    }

    #[test]
    fn env_values_parse() {
        // Exercised via set_mode since MODE is already initialized here.
        for (m, on) in [
            (TelemetryMode::Off, false),
            (TelemetryMode::Record, true),
            (TelemetryMode::Json, true),
        ] {
            let _guard = testing::lock();
            set_mode(m);
            assert_eq!(enabled(), on);
            assert_eq!(mode(), m);
            set_mode(TelemetryMode::Off);
        }
    }
}
