//! Log-bucketed quantile histograms (HDR/DDSketch-style).
//!
//! The fixed-bucket [`crate::observe`] histograms answer "how many values
//! fell in each of *my* ranges" — good for ranges a call site knows in
//! advance (queue depths, batch sizes), bad for latency tails, where a
//! coarse edge quantizes p99 onto whatever bucket boundary it happens to
//! straddle. A [`QuantileHistogram`] instead uses geometrically spaced
//! buckets fixed by the *implementation*: bucket `i` covers
//! `[γ^(i-1-OFFSET), γ^(i-OFFSET))` with `γ = 1.02`, so any reported
//! quantile is within **1% relative error** of an actually observed value
//! ([`QUANTILE_RELATIVE_ERROR`]), at any magnitude from ~0.01 to ~10^15,
//! with no per-site tuning.
//!
//! Recording is lock-free: one `ln`, one index clamp, and four relaxed
//! atomic updates (bucket, count, CAS'd sum, CAS'd min/max) — safe to call
//! from the scoped worker threads of `qsnc_tensor::parallel` and from
//! serve worker threads concurrently with snapshotting. Exact `count`,
//! `sum`, `min`, and `max` ride along, so `quantile(0.0)` / `quantile(1.0)`
//! are exact and means need no bucket arithmetic.

use std::sync::atomic::{AtomicU64, Ordering};

/// Geometric bucket growth factor. `γ = 1.02` bounds the relative error of
/// any reported quantile at `√γ − 1 < 1%`.
pub const QUANTILE_GAMMA: f64 = 1.02;

/// `ln(QUANTILE_GAMMA)`, precomputed (checked against `f64::ln` in tests).
const LN_GAMMA: f64 = 0.019_802_627_296_179_73;

/// Number of buckets reserved for values below `1.0`; the smallest
/// distinguishable value is `γ^-OFFSET ≈ 0.0063`.
const OFFSET: i64 = 256;

/// Total bucket count: index 0 holds `v ≤ 0`, index 1 underflows, the last
/// index overflows; everything between is geometric. The top of the range
/// is `γ^(BUCKETS-2-OFFSET) ≈ 2.5e15`.
pub const QUANTILE_BUCKETS: usize = 2048;

/// Documented worst-case relative error of a reported quantile against the
/// true rank-selected observation: `√γ − 1`.
pub const QUANTILE_RELATIVE_ERROR: f64 = 0.00995;

/// Bucket index for `value` (0 = non-positive, clamped at both ends).
#[inline]
pub fn bucket_index(value: f64) -> usize {
    if value <= 0.0 || value.is_nan() {
        return 0;
    }
    let i = (value.ln() / LN_GAMMA).floor() as i64 + OFFSET + 1;
    i.clamp(1, QUANTILE_BUCKETS as i64 - 1) as usize
}

/// Representative value of bucket `index`: the geometric midpoint of its
/// range (0 for the non-positive bucket).
#[inline]
pub fn bucket_value(index: usize) -> f64 {
    if index == 0 {
        return 0.0;
    }
    ((index as f64 - OFFSET as f64 - 0.5) * LN_GAMMA).exp()
}

/// A lock-free log-bucketed quantile histogram.
///
/// Use the registry front door [`crate::quantile_observe`] for named,
/// env-gated process-wide sketches; construct one directly when a program
/// wants a private sketch regardless of the telemetry mode (the
/// `serve_load` bench does this to validate the error bound against exact
/// percentiles).
///
/// # Examples
///
/// ```
/// use qsnc_telemetry::QuantileHistogram;
///
/// let h = QuantileHistogram::new();
/// for v in 1..=1000 {
///     h.observe(v as f64);
/// }
/// let snap = h.snapshot_named("demo");
/// let p50 = snap.quantile(0.5);
/// assert!((p50 - 500.0).abs() / 500.0 < 0.01, "p50 {p50}");
/// assert_eq!(snap.quantile(1.0), 1000.0); // exact max rides along
/// ```
#[derive(Debug)]
pub struct QuantileHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Running sum as `f64` bits (CAS loop, same scheme as `observe`).
    sum_bits: AtomicU64,
    /// Exact smallest observation as `f64` bits (`+inf` until first).
    min_bits: AtomicU64,
    /// Exact largest observation as `f64` bits (`-inf` until first).
    max_bits: AtomicU64,
}

impl Default for QuantileHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// CAS-updates an `f64`-bits atomic with `op` (used for sum/min/max).
fn cas_f64(cell: &AtomicU64, op: impl Fn(f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = op(f64::from_bits(current)).to_bits();
        if next == current {
            return;
        }
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

impl QuantileHistogram {
    /// An empty sketch ([`QUANTILE_BUCKETS`] zeroed buckets).
    pub fn new() -> Self {
        QuantileHistogram {
            buckets: (0..QUANTILE_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation. Lock-free; NaN counts into the
    /// non-positive bucket and is excluded from min/max.
    pub fn observe(&self, value: f64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if !value.is_nan() {
            cas_f64(&self.sum_bits, |s| s + value);
            cas_f64(&self.min_bits, |m| m.min(value));
            cas_f64(&self.max_bits, |m| m.max(value));
        }
    }

    /// Copies the sketch out as a named sparse snapshot.
    pub fn snapshot_named(&self, name: &str) -> QuantileSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let (min, max) = if count == 0 {
            (0.0, 0.0)
        } else {
            (
                f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
                f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            )
        };
        QuantileSnapshot {
            name: name.to_string(),
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min,
            max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of one [`QuantileHistogram`], sparse (only
/// non-empty buckets), as it appears in [`crate::Snapshot::quantiles`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantileSnapshot {
    /// Sketch name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Exact sum of observed values.
    pub sum: f64,
    /// Exact smallest observation (0 when empty).
    pub min: f64,
    /// Exact largest observation (0 when empty).
    pub max: f64,
    /// `(bucket index, count)` pairs, ascending by index, counts > 0.
    pub buckets: Vec<(u32, u64)>,
}

impl QuantileSnapshot {
    /// The `q`-quantile (`q ∈ [0, 1]`), within
    /// [`QUANTILE_RELATIVE_ERROR`] of the true rank-selected observation.
    /// `q = 0` / `q = 1` return the exact min/max; an empty sketch
    /// returns 0.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        // Nearest-rank: the smallest bucket whose cumulative count reaches
        // ceil(q·count), clamped into the exact observed range.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for &(idx, n) in &self.buckets {
            cumulative += n;
            if cumulative >= target {
                return bucket_value(idx as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Exact mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-wise difference `self − baseline` (same name expected):
    /// counts and sum subtract, giving the distribution of the window
    /// between the two snapshots. `min`/`max` remain the *lifetime*
    /// extremes — per-window extremes are not recoverable from cumulative
    /// sketches — so windowed `quantile(q)` stays within the error bound
    /// but `quantile(0)`/`quantile(1)` may be outside the window.
    pub fn delta_since(&self, baseline: &QuantileSnapshot) -> QuantileSnapshot {
        let mut base = baseline.buckets.iter().copied().collect::<std::collections::HashMap<u32, u64>>();
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .filter_map(|&(idx, n)| {
                let b = base.remove(&idx).unwrap_or(0);
                let d = n.saturating_sub(b);
                (d > 0).then_some((idx, d))
            })
            .collect();
        QuantileSnapshot {
            name: self.name.clone(),
            count: self.count.saturating_sub(baseline.count),
            sum: self.sum - baseline.sum,
            min: self.min,
            max: self.max,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_f64_ln() {
        assert!((LN_GAMMA - QUANTILE_GAMMA.ln()).abs() < 1e-18);
    }

    #[test]
    fn bucket_index_is_monotone_and_inverts() {
        let mut last = 0usize;
        let mut v = 0.01f64;
        while v < 1e12 {
            let i = bucket_index(v);
            assert!(i >= last, "index must be monotone in value");
            last = i;
            // The representative of v's bucket is within 1% of v.
            if i > 1 && i < QUANTILE_BUCKETS - 1 {
                let rep = bucket_value(i);
                assert!(
                    (rep - v).abs() / v <= QUANTILE_RELATIVE_ERROR,
                    "v={v} rep={rep}"
                );
            }
            v *= 1.37;
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::MAX), QUANTILE_BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_exact_percentiles_within_bound() {
        let h = QuantileHistogram::new();
        // A deterministic heavy-tailed sample: v = i^1.7 over 10k points.
        let mut exact: Vec<f64> = (1..=10_000).map(|i| (i as f64).powf(1.7)).collect();
        for &v in &exact {
            h.observe(v);
        }
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let snap = h.snapshot_named("t");
        for q in [0.5, 0.9, 0.99, 0.999] {
            let truth = exact[((q * (exact.len() - 1) as f64).round()) as usize];
            let est = snap.quantile(q);
            let rel = (est - truth).abs() / truth;
            assert!(rel <= 0.011, "q={q}: est {est} vs exact {truth} (rel {rel})");
        }
        assert_eq!(snap.quantile(0.0), exact[0]);
        assert_eq!(snap.quantile(1.0), *exact.last().unwrap());
        assert_eq!(snap.count, 10_000);
    }

    #[test]
    fn concurrent_observes_are_exact_in_count_and_sum() {
        let h = QuantileHistogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 1..=5_000u64 {
                        h.observe(i as f64);
                    }
                });
            }
        });
        let snap = h.snapshot_named("c");
        assert_eq!(snap.count, 20_000);
        let expected_sum = 4.0 * (5_000.0 * 5_001.0 / 2.0);
        assert!((snap.sum - expected_sum).abs() < 1e-6, "sum {}", snap.sum);
        assert_eq!(snap.min, 1.0);
        assert_eq!(snap.max, 5_000.0);
    }

    #[test]
    fn delta_subtracts_window() {
        let h = QuantileHistogram::new();
        for _ in 0..100 {
            h.observe(10.0);
        }
        let base = h.snapshot_named("d");
        for _ in 0..50 {
            h.observe(1_000.0);
        }
        let delta = h.snapshot_named("d").delta_since(&base);
        assert_eq!(delta.count, 50);
        // The window contains only the 1000s: its p50 reflects that.
        let p50 = delta.quantile(0.5);
        assert!((p50 - 1_000.0).abs() / 1_000.0 <= QUANTILE_RELATIVE_ERROR, "{p50}");
        assert!((delta.sum - 50_000.0).abs() < 1e-6);
    }

    #[test]
    fn empty_sketch_is_sane() {
        let snap = QuantileHistogram::new().snapshot_named("e");
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.5), 0.0);
        assert_eq!(snap.min, 0.0);
        assert_eq!(snap.max, 0.0);
        assert!(snap.buckets.is_empty());
    }
}
