//! A minimal JSON value type with a writer and a recursive-descent parser.
//!
//! The build environment has no registry access and the vendored `serde`
//! stub is marker-traits only, so telemetry carries its own JSON layer.
//! It covers exactly what the exporters need: objects (order-preserving),
//! arrays, strings, finite numbers, booleans, and null. Numbers are `f64`
//! and round-trip bit-exactly through render → parse (including `-0.0`);
//! non-finite values serialize as `null` under [`Json::render`] (matching
//! `serde_json`), while [`Json::try_render`] rejects them loudly with the
//! offending JSON path.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object keys in insertion order, if the value is an object.
    pub fn keys(&self) -> Option<Vec<&str>> {
        match self {
            Json::Obj(pairs) => Some(pairs.iter().map(|(k, _)| k.as_str()).collect()),
            _ => None,
        }
    }

    /// Renders compact JSON (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON indented by `indent` spaces per level.
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out
    }

    /// Renders compact JSON like [`Json::render`], but fails instead of
    /// silently degrading non-finite numbers to `null`. Use this when the
    /// document feeds a consumer that must not observe a dropped metric.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the JSON path of the first
    /// non-finite number in the tree.
    pub fn try_render(&self) -> Result<String, JsonError> {
        self.check_finite("$")?;
        Ok(self.render())
    }

    fn check_finite(&self, path: &str) -> Result<(), JsonError> {
        match self {
            Json::Num(n) if !n.is_finite() => {
                Err(JsonError::new(0, format!("non-finite number {n} at {path}")))
            }
            Json::Arr(items) => items
                .iter()
                .enumerate()
                .try_for_each(|(i, v)| v.check_finite(&format!("{path}[{i}]"))),
            Json::Obj(pairs) => pairs
                .iter()
                .try_for_each(|(k, v)| v.check_finite(&format!("{path}.{k}"))),
            _ => Ok(()),
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first malformed construct.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::new(pos, "trailing characters after document"));
        }
        Ok(value)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == 0.0 {
        // `0.0 as i64` would erase the sign of -0.0; keep it so the
        // parsed value is bit-identical.
        out.push_str(if n.is_sign_negative() { "-0.0" } else { "0" });
    } else if n == n.trunc() && n.abs() < 1e15 {
        // Exact: every integer below 1e15 is well inside f64's 2^53
        // contiguous-integer range.
        let _ = write!(out, "{}", n as i64);
    } else {
        // f64's Display is the shortest string that parses back to the
        // same bits, so this arm round-trips exactly too.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn new(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError::new(*pos, format!("expected `{lit}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::new(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError::new(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError::new(*pos, "expected `:` after object key"));
                }
                *pos += 1;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(JsonError::new(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(&c) => Err(JsonError::new(*pos, format!("unexpected byte `{}`", c as char))),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::new(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::new(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = hex4(bytes, *pos + 1)
                            .ok_or_else(|| JsonError::new(*pos, "bad \\u escape"))?;
                        *pos += 4;
                        if (0xD800..=0xDBFF).contains(&code) {
                            // JSON encodes astral characters as a surrogate
                            // pair of \u escapes; combine with the low half.
                            // A lone half is not a scalar value — stay
                            // lenient and substitute U+FFFD.
                            match (bytes.get(*pos + 1), bytes.get(*pos + 2), hex4(bytes, *pos + 3))
                            {
                                (Some(b'\\'), Some(b'u'), Some(low))
                                    if (0xDC00..=0xDFFF).contains(&low) =>
                                {
                                    let astral =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(char::from_u32(astral).unwrap_or('\u{fffd}'));
                                    *pos += 6;
                                }
                                _ => out.push('\u{fffd}'),
                            }
                        } else {
                            // A lone low surrogate is equally unrepresentable.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                    }
                    _ => return Err(JsonError::new(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a valid &str).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::new(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Four hex digits starting at `at`, or `None` if truncated/malformed.
fn hex4(bytes: &[u8], at: usize) -> Option<u32> {
    let hex = bytes.get(at..at + 4)?;
    if !hex.iter().all(u8::is_ascii_hexdigit) {
        return None;
    }
    let hex = std::str::from_utf8(hex).ok()?;
    u32::from_str_radix(hex, 16).ok()
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| JsonError::new(start, "malformed number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_scalars() {
        for (v, text) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Num(3.0), "3"),
            (Json::Num(-0.5), "-0.5"),
            (Json::Str("hi".into()), "\"hi\""),
        ] {
            assert_eq!(v.render(), text);
            assert_eq!(Json::parse(text).unwrap(), v);
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn hostile_strings_round_trip_exactly() {
        for s in [
            "quote\" backslash\\ slash/ mix\\\"\\\\",
            "\u{0}\u{1}\u{8}\u{c}\u{1f}\n\r\t",          // every control class
            "ünïcödé — ∑ßΔ λمرحبا 日本語",                 // non-ASCII BMP
            "astral 😀🚀 𝕊 \u{10FFFF}",                   // astral plane
            "\\u0041 not an escape",                      // literal backslash-u
            "trailing backslash\\",
        ] {
            let v = Json::Str(s.into());
            let text = v.render();
            assert_eq!(Json::parse(&text).unwrap(), v, "round-trip broke for {s:?}");
            // And as an object key, which uses the same writer.
            let o = Json::obj(vec![(s, Json::Null)]);
            assert_eq!(Json::parse(&o.render()).unwrap(), o, "key round-trip broke for {s:?}");
        }
    }

    #[test]
    fn external_surrogate_pairs_combine() {
        // Other JSON producers escape astral chars as surrogate pairs; the
        // parser used to turn each half into U+FFFD.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".into())
        );
        assert_eq!(
            Json::parse(r#""a\ud835\udd4ab""#).unwrap(),
            Json::Str("a𝕊b".into())
        );
        // Lone halves stay lenient: replacement character, not an error.
        assert_eq!(Json::parse(r#""\ud83d""#).unwrap(), Json::Str("\u{fffd}".into()));
        assert_eq!(Json::parse(r#""\ude00x""#).unwrap(), Json::Str("\u{fffd}x".into()));
        // High surrogate followed by a non-surrogate escape: replacement,
        // then the escape parses on its own.
        assert_eq!(
            Json::parse(r#""\ud83dA""#).unwrap(),
            Json::Str("\u{fffd}A".into())
        );
    }

    #[test]
    fn malformed_unicode_escapes_error() {
        for bad in [r#""\u00""#, r#""\uzzzz""#, r#""\u00 1""#, r#""\u""#] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn object_order_preserved() {
        let v = Json::obj(vec![
            ("z", Json::Num(1.0)),
            ("a", Json::Arr(vec![Json::Num(1.0), Json::Null])),
        ]);
        let text = v.render();
        assert_eq!(text, "{\"z\":1,\"a\":[1,null]}");
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.keys().unwrap(), vec!["z", "a"]);
        assert_eq!(back.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = Json::obj(vec![
            ("spans", Json::Arr(vec![Json::obj(vec![("path", Json::Str("a/b".into()))])])),
            ("empty", Json::Obj(vec![])),
        ]);
        let pretty = v.render_pretty(2);
        assert!(pretty.contains("\n  \"spans\""));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn hostile_numbers_round_trip_bit_exactly() {
        // Values chosen to poke every branch of the writer: signed zero,
        // subnormals, the 1e15 integer/Display boundary, the 2^53 edge of
        // f64's contiguous-integer range, and huge/tiny magnitudes.
        let two_53 = 9_007_199_254_740_992.0_f64; // 2^53
        for n in [
            0.0,
            -0.0,
            5e-324,  // smallest subnormal
            -5e-324,
            f64::MIN_POSITIVE,
            f64::MAX,
            -f64::MAX,
            999_999_999_999_999.0, // 1e15 - 1: last integer-path value
            1e15,                  // first Display-path integer
            -1e15,
            two_53 - 1.0,
            two_53,
            two_53 + 2.0, // 2^53 + 1 is not representable; +2 is
            u64::MAX as f64,
            0.1,
            1.0 / 3.0,
            std::f64::consts::PI,
            -2.225_073_858_507_201e-308, // largest subnormal, negated
        ] {
            let text = Json::Num(n).render();
            let back = Json::parse(&text).unwrap();
            let m = back.as_f64().unwrap();
            assert_eq!(
                m.to_bits(),
                n.to_bits(),
                "render→parse changed {n:?} ({text}) to {m:?}"
            );
            // Render must be a fixed point: rendering the parsed value
            // reproduces the same bytes.
            assert_eq!(back.render(), text, "render of {n:?} is not a fixed point");
        }
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        let text = Json::Num(-0.0).render();
        assert_eq!(text, "-0.0");
        let back = Json::parse(&text).unwrap().as_f64().unwrap();
        assert!(back == 0.0 && back.is_sign_negative());
        // And positive zero still renders as a bare integer.
        assert_eq!(Json::Num(0.0).render(), "0");
    }

    #[test]
    fn strict_render_rejects_non_finite_with_path() {
        for (n, name) in [
            (f64::NAN, "NaN"),
            (f64::INFINITY, "inf"),
            (f64::NEG_INFINITY, "-inf"),
        ] {
            let doc = Json::obj(vec![
                ("ok", Json::Num(1.0)),
                ("rows", Json::Arr(vec![Json::Num(2.0), Json::Num(n)])),
            ]);
            let err = doc.try_render().expect_err(name);
            assert!(
                err.message.contains("$.rows[1]"),
                "{name}: error should name the path, got {}",
                err.message
            );
        }
        // Finite documents render identically through both APIs.
        let fine = Json::obj(vec![("x", Json::Num(-0.0)), ("y", Json::Num(1e300))]);
        assert_eq!(fine.try_render().unwrap(), fine.render());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\"1}", "tru", "1 2", "\"\\u00\""] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_nested_with_whitespace() {
        let text = " { \"a\" : [ 1 , { \"b\" : \"c\" } ] , \"d\" : 1e3 } ";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("d").unwrap().as_f64(), Some(1000.0));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("c"));
    }

    #[test]
    fn parses_existing_bench_shape() {
        // The BENCH_pr1.json-style shape the exporters mirror.
        let text = r#"{"pr":1,"rows":[{"bench":"x","speedup":0.42}]}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(
            v.get("rows").unwrap().as_array().unwrap()[0]
                .get("speedup")
                .unwrap()
                .as_f64(),
            Some(0.42)
        );
    }
}
