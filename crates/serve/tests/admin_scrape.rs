//! Live observability-plane tests: a real server with the admin endpoint
//! enabled is scraped over HTTP while real clients hammer the data port.
//!
//! Each test serializes on `qsnc_telemetry::testing::lock()` because the
//! admin plane reads (and `Server::spawn` may switch) the process-global
//! telemetry mode.

use qsnc_memristor::{DeployConfig, SpikingNetwork};
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    WeightQuantMethod,
};
use qsnc_serve::protocol::{self, Status};
use qsnc_serve::{ServeConfig, Server};
use qsnc_telemetry::json::Json;
use qsnc_telemetry::Snapshot;
use qsnc_tensor::{Tensor, TensorRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const INPUT_DIMS: [usize; 3] = [1, 28, 28];

fn served_network(seed: u64) -> Arc<SpikingNetwork> {
    let mut rng = TensorRng::seed(seed);
    let mut net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(4),
        0.0,
        ActivationQuantizer::new(4),
    );
    switch.set_enabled(true);
    quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
    let snn = SpikingNetwork::compile(&net, &DeployConfig::paper(4, 4), None).expect("compile");
    assert!(snn.has_fast_path(), "4/4-bit LeNet must take the integer engine");
    Arc::new(snn)
}

fn example(seed: u64) -> Vec<f32> {
    let mut rng = TensorRng::seed(seed);
    qsnc_tensor::init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng)
        .as_slice()
        .to_vec()
}

fn admin_config() -> ServeConfig {
    ServeConfig {
        admin_addr: Some("127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    }
}

/// One HTTP exchange against the admin endpoint; returns (status line, body).
fn http_exchange(addr: SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("admin connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(request.as_bytes()).expect("write request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    (head.lines().next().unwrap_or("").to_string(), body.to_string())
}

fn http_get(addr: SocketAddr, target: &str) -> (String, String) {
    http_exchange(addr, &format!("GET {target} HTTP/1.1\r\nHost: qsnc\r\n\r\n"))
}

/// The value of an unlabelled exposition sample line `name value`.
fn prom_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        rest.strip_prefix(' ')?.parse().ok()
    })
}

struct TelemetryGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl TelemetryGuard {
    fn recording() -> Self {
        let lock = qsnc_telemetry::testing::lock();
        qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Record);
        qsnc_telemetry::reset();
        TelemetryGuard { _lock: lock }
    }

    fn off() -> Self {
        let lock = qsnc_telemetry::testing::lock();
        qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Off);
        qsnc_telemetry::reset();
        TelemetryGuard { _lock: lock }
    }
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        qsnc_telemetry::reset();
        qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Off);
    }
}

#[test]
fn metrics_scrape_under_load_is_monotone_and_replies_stay_bit_identical() {
    let _guard = TelemetryGuard::recording();
    let snn = served_network(41);
    let server =
        Server::spawn(Arc::clone(&snn), &INPUT_DIMS, "127.0.0.1:0", admin_config()).expect("spawn");
    let admin = server.admin_local_addr().expect("admin plane is configured");

    const CLIENTS: u64 = 4;
    const SHOTS: u64 = 25;
    let mut handles = Vec::new();
    for client in 0..CLIENTS {
        let snn = Arc::clone(&snn);
        let addr = server.local_addr();
        handles.push(std::thread::spawn(move || {
            let input = example(900 + client);
            let x = Tensor::from_vec(input.clone(), [1, 1, 28, 28]);
            let expected = snn.infer_reference(&x).as_slice().to_vec();
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            for shot in 0..SHOTS {
                protocol::write_request(&mut stream, &input).expect("write");
                let reply = protocol::read_reply(&mut stream).expect("reply");
                assert_eq!(reply.status, Status::Ok, "client {client} shot {shot}");
                for (i, (got, want)) in reply.logits.iter().zip(&expected).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "scrape load perturbed client {client} shot {shot} logit {i}"
                    );
                }
            }
        }));
    }

    // Hammer /metrics while the data plane is busy: the request counter
    // must climb monotonically and every sample line must stay parseable.
    let mut last_requests = 0.0f64;
    for _ in 0..20 {
        let (status, body) = http_get(admin, "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        for line in body.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample line shape");
            value.parse::<f64>().unwrap_or_else(|_| panic!("bad sample {line:?}"));
        }
        if let Some(requests) = prom_value(&body, "qsnc_serve_requests_total") {
            assert!(
                requests >= last_requests,
                "counter went backwards: {requests} < {last_requests}"
            );
            last_requests = requests;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    for handle in handles {
        handle.join().expect("client thread");
    }

    // Quiescent scrape: exact totals and per-stage summaries.
    let (_, body) = http_get(admin, "/metrics");
    let total = (CLIENTS * SHOTS) as f64;
    assert_eq!(prom_value(&body, "qsnc_serve_requests_total"), Some(total), "{body}");
    for stage in ["decode", "queue", "infer", "encode"] {
        let family = format!("qsnc_serve_stage_{stage}_us");
        assert!(body.contains(&format!("# TYPE {family} summary")), "missing {family}");
        let count = prom_value(&body, &format!("{family}_count")).expect("stage count");
        assert!(count >= 1.0, "{family} never observed");
    }
    let count = prom_value(&body, "qsnc_serve_latency_us_count");
    assert_eq!(count, Some(total), "latency sketch must see every request");
    let q = |p: &str| {
        prom_value(&body, &format!("qsnc_serve_latency_us{{quantile=\"{p}\"}}"))
            .unwrap_or_else(|| panic!("missing latency quantile {p}"))
    };
    let (p50, p99) = (q("0.5"), q("0.99"));
    assert!(p50 > 0.0 && p50 <= p99, "implausible latency quantiles p50={p50} p99={p99}");

    server.shutdown();
}

#[test]
fn snapshot_round_trips_and_cursor_returns_windowed_deltas() {
    let _guard = TelemetryGuard::recording();
    let snn = served_network(43);
    let server =
        Server::spawn(Arc::clone(&snn), &INPUT_DIMS, "127.0.0.1:0", admin_config()).expect("spawn");
    let admin = server.admin_local_addr().expect("admin plane is configured");

    let run_traffic = |n: u64| {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let input = example(77);
        for _ in 0..n {
            protocol::write_request(&mut stream, &input).expect("write");
            let reply = protocol::read_reply(&mut stream).expect("reply");
            assert_eq!(reply.status, Status::Ok);
        }
    };

    run_traffic(5);

    // A mid-traffic /snapshot document must parse losslessly: the shape is
    // the same one deployment reports embed, quantile sketches included.
    let (status, body) = http_get(admin, "/snapshot");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let parsed = Snapshot::from_json(&body).expect("scraped snapshot parses");
    assert_eq!(parsed.counter("serve.requests"), Some(5));
    assert!(parsed.quantile_sketch("serve.latency_us").is_some(), "sketch lost in transit");
    assert_eq!(parsed.to_json().render(), body, "snapshot JSON does not round-trip");

    // First cursored scrape baselines; the second sees only the window.
    let (_, full) = http_get(admin, "/snapshot?cursor=t");
    let full = Snapshot::from_json(&full).expect("cursor baseline parses");
    assert_eq!(full.counter("serve.requests"), Some(5));

    run_traffic(3);

    let (_, delta) = http_get(admin, "/snapshot?cursor=t");
    let delta = Snapshot::from_json(&delta).expect("cursor delta parses");
    assert_eq!(delta.counter("serve.requests"), Some(3), "cursor window is wrong");
    let latency = delta.quantile_sketch("serve.latency_us").expect("windowed sketch");
    assert_eq!(latency.count, 3, "windowed sketch must only hold the delta");

    server.shutdown();
}

#[test]
fn slow_capture_traces_every_stage_of_delayed_requests() {
    let _guard = TelemetryGuard::recording();
    let snn = served_network(47);
    // slow_us = 0: every request qualifies as slow and must leave a trace.
    let config = ServeConfig { slow_us: Some(0), ..admin_config() };
    let server =
        Server::spawn(Arc::clone(&snn), &INPUT_DIMS, "127.0.0.1:0", config).expect("spawn");
    let admin = server.admin_local_addr().expect("admin plane is configured");

    const SHOTS: usize = 7;
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let input = example(99);
    for _ in 0..SHOTS {
        protocol::write_request(&mut stream, &input).expect("write");
        assert_eq!(protocol::read_reply(&mut stream).expect("reply").status, Status::Ok);
    }

    let (status, body) = http_get(admin, "/slow");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let events = Json::parse(&body).expect("valid JSON");
    let events = events.as_array().expect("array of events");
    let slow: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("label").and_then(Json::as_str) == Some("serve.slow"))
        .collect();
    assert_eq!(slow.len(), SHOTS, "every request must be traced: {body}");
    let mut seen_ids = std::collections::HashSet::new();
    for event in slow {
        let id = event.get("id").and_then(Json::as_f64).expect("request id") as u64;
        assert!(seen_ids.insert(id), "duplicate request id {id}");
        let fields = event.get("fields").expect("fields object");
        let field = |k: &str| {
            fields
                .get(k)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("trace missing {k}: {event:?}"))
        };
        let (decode, queue, infer, encode, total, batch) = (
            field("decode_us"),
            field("queue_us"),
            field("infer_us"),
            field("encode_us"),
            field("total_us"),
            field("batch"),
        );
        assert!(batch >= 1.0, "batch size in trace");
        // The queue + infer stages happen inside the admission→reply
        // window, so a complete trace can never show more stage time
        // than total time (decode happens before admission).
        assert!(
            total + 1.0 >= queue + infer,
            "inconsistent trace: total={total} queue={queue} infer={infer}"
        );
        assert!(decode >= 0.0 && encode >= 0.0);
    }

    server.shutdown();
}

#[test]
fn admin_speaks_enough_http() {
    let _guard = TelemetryGuard::recording();
    let snn = served_network(53);
    let server =
        Server::spawn(Arc::clone(&snn), &INPUT_DIMS, "127.0.0.1:0", admin_config()).expect("spawn");
    let admin = server.admin_local_addr().expect("admin plane is configured");

    let (status, body) = http_get(admin, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "ok\n");

    let (status, _) = http_get(admin, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    let (status, _) =
        http_exchange(admin, "POST /metrics HTTP/1.1\r\nHost: qsnc\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");

    server.shutdown();
}

#[test]
fn stalled_scraper_does_not_delay_the_next_metrics_poll() {
    let _guard = TelemetryGuard::recording();
    let snn = served_network(67);
    let server =
        Server::spawn(Arc::clone(&snn), &INPUT_DIMS, "127.0.0.1:0", admin_config()).expect("spawn");
    let admin = server.admin_local_addr().expect("admin plane is configured");

    // Stalled scrapers: connections that send a partial request (or
    // nothing at all) and then just sit there. Before handler threads,
    // each of these held the single-threaded listener for the full
    // read-timeout, serializing every later poll behind it.
    let mut stallers = Vec::new();
    for _ in 0..3 {
        let mut stream = TcpStream::connect(admin).expect("staller connect");
        stream.write_all(b"GET /metrics HTTP/1.1\r\n").expect("partial request");
        stallers.push(stream); // held open, never finished
    }

    // A well-behaved scrape right behind them must answer promptly —
    // far sooner than even one staller's timeout, let alone three.
    let t0 = std::time::Instant::now();
    let (status, body) = http_get(admin, "/metrics");
    let elapsed = t0.elapsed();
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(!body.is_empty());
    assert!(
        elapsed < Duration::from_secs(1),
        "scrape stuck {elapsed:?} behind stalled connections"
    );

    // Cursored scrapes still work (cursor state is now shared across
    // handler threads) while the stallers are still parked.
    let (_, baseline) = http_get(admin, "/snapshot?cursor=stall");
    Snapshot::from_json(&baseline).expect("cursor baseline parses");
    let (_, delta) = http_get(admin, "/snapshot?cursor=stall");
    let delta = Snapshot::from_json(&delta).expect("cursor delta parses");
    assert_eq!(delta.counter("serve.requests"), None, "empty window has no serve.requests");

    drop(stallers);
    server.shutdown();
}

#[test]
fn spawn_with_admin_enables_recording() {
    let _guard = TelemetryGuard::off();
    let snn = served_network(59);
    let server =
        Server::spawn(Arc::clone(&snn), &INPUT_DIMS, "127.0.0.1:0", admin_config()).expect("spawn");
    assert!(
        qsnc_telemetry::enabled(),
        "an admin endpoint without telemetry would serve empty documents"
    );
    server.shutdown();
}

#[test]
fn telemetry_off_serves_without_recording_anything() {
    let _guard = TelemetryGuard::off();
    let snn = served_network(61);
    // No admin plane: spawn must leave the Off mode alone, and the whole
    // request path reduces to one relaxed atomic load per telemetry check
    // (`qsnc_telemetry::enabled()`) — nothing may be recorded anywhere.
    let server = Server::spawn(
        Arc::clone(&snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        ServeConfig { slow_us: Some(0), ..ServeConfig::default() },
    )
    .expect("spawn");
    assert!(!qsnc_telemetry::enabled(), "spawn without admin must not flip the mode");
    assert!(server.admin_local_addr().is_none());

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let input = example(31);
    for _ in 0..4 {
        protocol::write_request(&mut stream, &input).expect("write");
        assert_eq!(protocol::read_reply(&mut stream).expect("reply").status, Status::Ok);
    }
    drop(stream);
    server.shutdown();

    let snap = qsnc_telemetry::snapshot();
    assert!(snap.is_empty(), "telemetry leaked while off: {:?}", snap.to_json().render());
    assert!(qsnc_telemetry::flight_events().is_empty(), "flight recorder leaked while off");
}
