//! End-to-end tests of the batched TCP serving layer.
//!
//! A real deployable LeNet (4-bit signals / 4-bit weights, the paper's
//! flagship configuration) is served over an ephemeral port and hit by
//! real `TcpStream` clients. The float oracle
//! [`SpikingNetwork::infer_reference`] is the ground truth: every
//! well-formed reply must be **bit-identical** to it regardless of how
//! the micro-batcher grouped the requests. Hostile clients — garbage
//! frames, oversized declarations, wrong payload sizes, mid-request
//! disconnects — must get error replies (or a dropped connection), never
//! a worker panic.

use qsnc_memristor::{DeployConfig, SpikingNetwork};
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    WeightQuantMethod,
};
use qsnc_serve::protocol::{self, Status, MAGIC, OP_INFER, VERSION, VERSION_V2};
use qsnc_serve::{FrontEnd, ServeConfig, Server};
use qsnc_tensor::{Tensor, TensorRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const INPUT_DIMS: [usize; 3] = [1, 28, 28];
const INPUT_LEN: usize = 28 * 28;

/// A compiled 4/4-bit LeNet with the integer fast path available.
fn served_network(seed: u64) -> Arc<SpikingNetwork> {
    let mut rng = TensorRng::seed(seed);
    let mut net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(4),
        0.0,
        ActivationQuantizer::new(4),
    );
    switch.set_enabled(true);
    quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
    let config = DeployConfig::paper(4, 4);
    let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");
    assert!(snn.has_fast_path(), "4/4-bit LeNet must take the integer engine");
    Arc::new(snn)
}

fn example(seed: u64) -> Vec<f32> {
    let mut rng = TensorRng::seed(seed);
    qsnc_tensor::init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng)
        .as_slice()
        .to_vec()
}

fn reference_logits(snn: &SpikingNetwork, input: &[f32]) -> Vec<f32> {
    let x = Tensor::from_vec(input.to_vec(), [1, 1, 28, 28]);
    snn.infer_reference(&x).as_slice().to_vec()
}

/// Production defaults, except the front end follows `QSNC_SERVE_FRONT_END`
/// so CI can run this whole v1 suite against both the event-loop and the
/// threaded architectures.
fn base() -> ServeConfig {
    ServeConfig { front_end: ServeConfig::from_env().front_end, ..ServeConfig::default() }
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream
}

fn roundtrip(stream: &mut TcpStream, input: &[f32]) -> protocol::Reply {
    protocol::write_request(stream, input).expect("write request");
    protocol::read_reply(stream).expect("read reply")
}

#[test]
fn replies_bit_identical_to_reference_under_concurrency() {
    let snn = served_network(2024);
    let server = Server::spawn(
        Arc::clone(&snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        ServeConfig { max_batch: 4, max_delay_us: 500, ..base() },
    )
    .expect("spawn");

    // 6 concurrent clients × 4 sequential requests: the micro-batcher sees
    // every batch size from 1 to max_batch depending on arrival timing, and
    // the answer must not depend on which one it picked.
    let mut handles = Vec::new();
    for client in 0..6u64 {
        let snn = Arc::clone(&snn);
        let addr = server.local_addr();
        handles.push(std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            for shot in 0..4u64 {
                let input = example(1000 + client * 37 + shot);
                let expected = reference_logits(&snn, &input);
                let reply = {
                    protocol::write_request(&mut stream, &input).expect("write");
                    protocol::read_reply(&mut stream).expect("reply")
                };
                assert_eq!(reply.status, Status::Ok, "client {client} shot {shot}");
                assert_eq!(reply.logits.len(), expected.len());
                for (i, (got, want)) in reply.logits.iter().zip(&expected).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "client {client} shot {shot} logit {i}: {got} vs reference {want}"
                    );
                }
                // The argmax ties break to the lowest index, same as
                // Tensor::argmax over the reference logits.
                let want_argmax = expected
                    .iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv { (i, v) } else { (bi, bv) }
                    })
                    .0;
                assert_eq!(reply.argmax as usize, want_argmax);
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown();
}

#[test]
fn sequential_singles_are_bit_identical_too() {
    // Forced batch-of-1 path: one client, synchronous request/reply.
    let snn = served_network(7);
    let server = Server::spawn(
        Arc::clone(&snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        ServeConfig { max_batch: 8, max_delay_us: 100, ..base() },
    )
    .expect("spawn");
    let mut stream = connect(&server);
    for shot in 0..3u64 {
        let input = example(9000 + shot);
        let expected = reference_logits(&snn, &input);
        let reply = roundtrip(&mut stream, &input);
        assert_eq!(reply.status, Status::Ok);
        let got: Vec<u32> = reply.logits.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = expected.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "shot {shot}");
    }
    drop(stream);
    server.shutdown();
}

#[test]
fn malformed_frames_get_error_replies_not_panics() {
    let snn = served_network(11);
    let server = Server::spawn(
        Arc::clone(&snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        base(),
    )
    .expect("spawn");

    // Wrong payload length: framed correctly, so the connection survives
    // and the very next request on it succeeds.
    let mut stream = connect(&server);
    protocol::write_request(&mut stream, &[1.0, 2.0, 3.0]).expect("short request");
    let reply = protocol::read_reply(&mut stream).expect("reply");
    assert_eq!(reply.status, Status::BadRequest);
    assert!(reply.message.contains("expects"), "got {:?}", reply.message);
    let good = example(501);
    let reply = roundtrip(&mut stream, &good);
    assert_eq!(reply.status, Status::Ok, "connection must survive a Bad frame");

    // Unknown opcode: also recoverable.
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC.to_le_bytes());
    frame.push(VERSION);
    frame.push(77); // not OP_INFER
    frame.extend_from_slice(&4u32.to_le_bytes());
    frame.extend_from_slice(&[0u8; 4]);
    stream.write_all(&frame).expect("opcode frame");
    let reply = protocol::read_reply(&mut stream).expect("reply");
    assert_eq!(reply.status, Status::BadRequest);
    assert!(reply.message.contains("opcode"), "got {:?}", reply.message);
    assert_eq!(roundtrip(&mut stream, &good).status, Status::Ok);
    drop(stream);

    // Garbage magic: unresyncable, so the server replies and hangs up.
    let mut stream = connect(&server);
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("garbage");
    let reply = protocol::read_reply(&mut stream).expect("reply before close");
    assert_eq!(reply.status, Status::BadRequest);
    assert!(reply.message.contains("magic"), "got {:?}", reply.message);
    let mut probe = [0u8; 1];
    assert_eq!(stream.read(&mut probe).unwrap_or(0), 0, "connection must close");
    drop(stream);

    // Oversized declared payload: rejected without reading it.
    let mut stream = connect(&server);
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC.to_le_bytes());
    frame.push(VERSION);
    frame.push(OP_INFER);
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    stream.write_all(&frame).expect("oversized header");
    let reply = protocol::read_reply(&mut stream).expect("reply before close");
    assert_eq!(reply.status, Status::BadRequest);
    assert!(reply.message.contains("cap"), "got {:?}", reply.message);
    drop(stream);

    // After all that abuse a fresh client still gets correct answers.
    let mut stream = connect(&server);
    let expected = reference_logits(&snn, &good);
    let reply = roundtrip(&mut stream, &good);
    assert_eq!(reply.status, Status::Ok);
    let got: Vec<u32> = reply.logits.iter().map(|v| v.to_bits()).collect();
    let want: Vec<u32> = expected.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want);
    drop(stream);
    server.shutdown();
}

#[test]
fn mid_request_disconnect_does_not_kill_the_server() {
    let snn = served_network(13);
    let server = Server::spawn(
        Arc::clone(&snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        base(),
    )
    .expect("spawn");

    // Half a header, then vanish.
    let stream = connect(&server);
    (&stream).write_all(&MAGIC.to_le_bytes()[..2]).expect("partial header");
    drop(stream);

    // A full header promising a payload that never comes, then vanish.
    let mut stream = connect(&server);
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC.to_le_bytes());
    frame.push(VERSION);
    frame.push(OP_INFER);
    frame.extend_from_slice(&((4 * INPUT_LEN) as u32).to_le_bytes());
    frame.extend_from_slice(&[0u8; 16]); // 16 of the 3136 promised bytes
    stream.write_all(&frame).expect("partial payload");
    drop(stream);

    // The server shrugs and keeps answering.
    let input = example(77);
    let expected = reference_logits(&snn, &input);
    let mut stream = connect(&server);
    let reply = roundtrip(&mut stream, &input);
    assert_eq!(reply.status, Status::Ok);
    let got: Vec<u32> = reply.logits.iter().map(|v| v.to_bits()).collect();
    let want: Vec<u32> = expected.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want);
    drop(stream);
    server.shutdown();
}

#[test]
fn overload_answers_ok_or_busy_and_recovers() {
    let snn = served_network(17);
    // A deliberately tiny queue so the flood can trip backpressure.
    let server = Server::spawn(
        Arc::clone(&snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        ServeConfig { max_batch: 2, max_delay_us: 50, queue_cap: 2, workers: 1, ..base() },
    )
    .expect("spawn");

    let mut handles = Vec::new();
    for client in 0..8u64 {
        let addr = server.local_addr();
        handles.push(std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            let input = example(300 + client);
            let mut oks = 0usize;
            let mut busys = 0usize;
            for _ in 0..5 {
                protocol::write_request(&mut stream, &input).expect("write");
                let reply = protocol::read_reply(&mut stream).expect("reply");
                match reply.status {
                    Status::Ok => oks += 1,
                    Status::Busy => busys += 1,
                    other => panic!("flood reply must be Ok or Busy, got {other:?}"),
                }
            }
            (oks, busys)
        }));
    }
    let mut total_ok = 0usize;
    for h in handles {
        let (oks, _busys) = h.join().expect("client thread");
        total_ok += oks;
    }
    assert!(total_ok > 0, "at least some flood requests must get through");

    // Backpressure is load-shedding, not failure: afterwards a polite
    // client gets a bit-exact answer again.
    let input = example(999);
    let expected = reference_logits(&snn, &input);
    let mut stream = connect(&server);
    let reply = roundtrip(&mut stream, &input);
    assert_eq!(reply.status, Status::Ok);
    let got: Vec<u32> = reply.logits.iter().map(|v| v.to_bits()).collect();
    let want: Vec<u32> = expected.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want);
    drop(stream);
    server.shutdown();
}

#[test]
fn shutdown_drains_and_then_refuses() {
    let snn = served_network(19);
    let server = Server::spawn(
        Arc::clone(&snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        base(),
    )
    .expect("spawn");
    let addr = server.local_addr();

    // An answered request, then a clean shutdown.
    let input = example(5);
    let mut stream = connect(&server);
    assert_eq!(roundtrip(&mut stream, &input).status, Status::Ok);
    server.shutdown();

    // The port no longer serves: either the connect fails outright or the
    // socket is dead (no listener left to answer).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut late) => {
            late.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let _ = protocol::write_request(&mut late, &input);
            // A reply must be non-Ok; a closed-without-reply error is also
            // acceptable.
            if let Ok(reply) = protocol::read_reply(&mut late) {
                assert_ne!(reply.status, Status::Ok);
            }
        }
    }
}

#[test]
fn idle_server_drops_cleanly() {
    // Shutdown with open-but-idle connections must not hang on the
    // blocking reads.
    let snn = served_network(23);
    let server = Server::spawn(
        Arc::clone(&snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        base(),
    )
    .expect("spawn");
    let _idle_a = connect(&server);
    let _idle_b = connect(&server);
    std::thread::sleep(Duration::from_millis(50));
    drop(server); // Drop runs the same drain as shutdown()
}

/// Regression: an oversized declared payload length must produce a
/// [`Status::BadRequest`] reply attributed to the offending frame — tagged
/// on a v2 frame, untagged on v1 — followed by an orderly close, on
/// **both** front ends. Before the fix the rejection was always untagged,
/// so a multiplexed client could not tell which pipelined request died.
#[test]
fn oversized_declaration_replies_before_close_on_both_front_ends() {
    let snn = served_network(31);
    let front_ends: &[FrontEnd] = if cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )) {
        &[FrontEnd::Threaded, FrontEnd::EventLoop]
    } else {
        &[FrontEnd::Threaded]
    };
    for &front_end in front_ends {
        let server = Server::spawn(
            Arc::clone(&snn),
            &INPUT_DIMS,
            "127.0.0.1:0",
            ServeConfig { front_end, ..ServeConfig::default() },
        )
        .expect("spawn");
        for tag in [None, Some(0xCAFE_F00Du32)] {
            let mut stream = connect(&server);
            let mut frame = Vec::new();
            frame.extend_from_slice(&MAGIC.to_le_bytes());
            frame.push(if tag.is_some() { VERSION_V2 } else { VERSION });
            frame.push(OP_INFER);
            if let Some(t) = tag {
                frame.extend_from_slice(&t.to_le_bytes());
            }
            frame.extend_from_slice(&u32::MAX.to_le_bytes());
            stream.write_all(&frame).expect("oversized header");
            let reply = protocol::read_reply(&mut stream).expect("reply before close");
            assert_eq!(reply.status, Status::BadRequest, "{front_end:?} tag {tag:?}");
            assert_eq!(reply.tag, tag, "{front_end:?}: reply must echo the frame's tag");
            assert!(reply.message.contains("cap"), "got {:?}", reply.message);
            // The stream cannot be resynchronized: the server must close.
            let mut probe = [0u8; 1];
            assert_eq!(
                stream.read(&mut probe).unwrap_or(0),
                0,
                "{front_end:?} tag {tag:?}: connection must close after the reply"
            );
        }
        server.shutdown();
    }
}
