//! Served replies must not depend on the SIMD level the worker dispatches.
//!
//! The batch worker threads live inside the server, so the process-wide
//! [`qsnc_tensor::set_simd_level`] cap is the only knob that reaches them
//! (thread-local `with_simd_level` scopes deliberately do not propagate
//! across threads). Serving the same requests with the kernels pinned to
//! scalar and again at full hardware dispatch must produce bit-identical
//! logits — the serving-layer restatement of the kernel proptests.

use qsnc_memristor::{DeployConfig, SpikingNetwork};
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    WeightQuantMethod,
};
use qsnc_serve::protocol::{self, Status};
use qsnc_serve::{ServeConfig, Server};
use qsnc_tensor::{set_simd_level, SimdLevel, TensorRng};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const INPUT_DIMS: [usize; 3] = [1, 28, 28];

fn served_network(seed: u64) -> Arc<SpikingNetwork> {
    let mut rng = TensorRng::seed(seed);
    let mut net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(4),
        0.0,
        ActivationQuantizer::new(4),
    );
    switch.set_enabled(true);
    quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
    let snn = SpikingNetwork::compile(&net, &DeployConfig::paper(4, 4), None).expect("compile");
    assert!(snn.has_fast_path());
    Arc::new(snn)
}

fn example(seed: u64) -> Vec<f32> {
    let mut rng = TensorRng::seed(seed);
    qsnc_tensor::init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng)
        .as_slice()
        .to_vec()
}

/// Serves `shots` requests under the given process-wide SIMD cap and
/// returns the logits of every reply, in request order.
fn serve_round(snn: &Arc<SpikingNetwork>, cap: Option<SimdLevel>, shots: u64) -> Vec<Vec<f32>> {
    set_simd_level(cap);
    let server = Server::spawn(
        Arc::clone(snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        ServeConfig { max_batch: 4, max_delay_us: 500, ..ServeConfig::default() },
    )
    .expect("spawn");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut replies = Vec::new();
    for shot in 0..shots {
        let input = example(4000 + shot);
        protocol::write_request(&mut stream, &input).expect("write");
        let reply = protocol::read_reply(&mut stream).expect("reply");
        assert_eq!(reply.status, Status::Ok);
        replies.push(reply.logits);
    }
    drop(stream);
    server.shutdown();
    set_simd_level(None);
    replies
}

#[test]
fn served_logits_bit_identical_with_simd_forced_off_and_on() {
    let snn = served_network(31);
    let scalar = serve_round(&snn, Some(SimdLevel::Scalar), 6);
    let full = serve_round(&snn, None, 6);
    assert_eq!(scalar.len(), full.len());
    for (shot, (a, b)) in scalar.iter().zip(full.iter()).enumerate() {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "shot {shot} logit {i}: scalar {x} vs simd {y}"
            );
        }
    }
}
