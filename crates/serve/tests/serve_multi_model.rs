//! Multi-model routing and hot-swap tests at the socket level.
//!
//! One server process holds several compiled engines; v3 routed frames
//! pick one by id, v1/v2 frames fall through to the default model, and a
//! hot swap under sustained load must never drop an admitted request —
//! every `Ok` reply is bit-identical to exactly one of the two engine
//! versions, and once the swap returns a fresh connection sees only the
//! new one.

use qsnc_memristor::{DeployConfig, Provenance, SpikingNetwork};
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    WeightQuantMethod,
};
use qsnc_serve::protocol::{self, Status};
use qsnc_serve::{ModelSpec, ServeConfig, Server};
use qsnc_tensor::{Tensor, TensorRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const INPUT_DIMS: [usize; 3] = [1, 28, 28];

/// A compiled 4/4-bit LeNet; different seeds give different weights and
/// therefore distinguishable logits.
fn served_network(seed: u64) -> Arc<SpikingNetwork> {
    let mut rng = TensorRng::seed(seed);
    let mut net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(4),
        0.0,
        ActivationQuantizer::new(4),
    );
    switch.set_enabled(true);
    quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
    let config = DeployConfig::paper(4, 4);
    let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");
    assert!(snn.has_fast_path(), "4/4-bit LeNet must take the integer engine");
    Arc::new(snn)
}

fn example(seed: u64) -> Vec<f32> {
    let mut rng = TensorRng::seed(seed);
    qsnc_tensor::init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng)
        .as_slice()
        .to_vec()
}

fn reference_logits(snn: &SpikingNetwork, input: &[f32]) -> Vec<f32> {
    let x = Tensor::from_vec(input.to_vec(), [1, 1, 28, 28]);
    snn.infer_reference(&x).as_slice().to_vec()
}

fn bits(logits: &[f32]) -> Vec<u32> {
    logits.iter().map(|v| v.to_bits()).collect()
}

/// Production defaults, except the front end follows `QSNC_SERVE_FRONT_END`
/// so CI runs the suite against both architectures.
fn base() -> ServeConfig {
    ServeConfig { front_end: ServeConfig::from_env().front_end, ..ServeConfig::default() }
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    stream
}

fn temp_artifact(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qsnc_multi_model_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn save_engine(snn: &SpikingNetwork, input_dims: &[usize], digest: u64, path: &PathBuf) {
    let provenance = Provenance {
        checkpoint_digest: digest,
        weight_bits: 4,
        activation_bits: 4,
        model: "lenet".to_string(),
    };
    qsnc_memristor::save_artifact(snn, input_dims, &provenance, path).expect("save artifact");
}

#[test]
fn routed_frames_reach_their_model_and_idless_frames_reach_the_default() {
    let prod = served_network(2024);
    let canary = served_network(5150);
    let server = Server::spawn_models(
        vec![
            ModelSpec::new("prod", Arc::clone(&prod), INPUT_DIMS.to_vec()),
            ModelSpec::new("canary", Arc::clone(&canary), INPUT_DIMS.to_vec()),
        ],
        "127.0.0.1:0",
        base(),
    )
    .expect("spawn");

    let input = example(314);
    let want_prod = bits(&reference_logits(&prod, &input));
    let want_canary = bits(&reference_logits(&canary, &input));
    assert_ne!(want_prod, want_canary, "the two engines must be distinguishable");

    let mut stream = connect(&server);
    // v3 routed to each model explicitly, interleaved on one connection.
    for (tag, model, want) in
        [(7u32, 0u32, &want_prod), (8, 1, &want_canary), (9, 0, &want_prod), (10, 1, &want_canary)]
    {
        protocol::write_request_routed(&mut stream, tag, model, &input).expect("write");
        let reply = protocol::read_reply(&mut stream).expect("reply");
        assert_eq!(reply.status, Status::Ok, "model {model}: {}", reply.message);
        assert_eq!(reply.tag, Some(tag));
        assert_eq!(bits(&reply.logits), *want, "model {model} routed to the wrong engine");
    }
    // Untagged v1 and tagged v2 frames keep hitting the default model.
    protocol::write_request(&mut stream, &input).expect("v1 write");
    assert_eq!(bits(&protocol::read_reply(&mut stream).expect("v1 reply").logits), want_prod);
    protocol::write_request_tagged(&mut stream, 77, &input).expect("v2 write");
    let reply = protocol::read_reply(&mut stream).expect("v2 reply");
    assert_eq!(reply.tag, Some(77));
    assert_eq!(bits(&reply.logits), want_prod);
    drop(stream);
    server.shutdown();
}

#[test]
fn unknown_model_id_gets_a_tagged_error_and_the_connection_survives() {
    let prod = served_network(2024);
    let server = Server::spawn_models(
        vec![ModelSpec::new("prod", Arc::clone(&prod), INPUT_DIMS.to_vec())],
        "127.0.0.1:0",
        base(),
    )
    .expect("spawn");

    let input = example(1);
    let mut stream = connect(&server);
    protocol::write_request_routed(&mut stream, 0xBEEF, 9, &input).expect("write");
    let reply = protocol::read_reply(&mut stream).expect("reply");
    assert_eq!(reply.status, Status::UnknownModel);
    assert_eq!(reply.tag, Some(0xBEEF), "the error must be attributed to the routed frame");
    assert!(reply.message.contains('9'), "message must name the id: {:?}", reply.message);

    // The frame was well-formed, so the stream stays framed and usable.
    protocol::write_request_routed(&mut stream, 5, 0, &input).expect("write after error");
    let reply = protocol::read_reply(&mut stream).expect("reply after error");
    assert_eq!(reply.status, Status::Ok, "{}", reply.message);
    assert_eq!(bits(&reply.logits), bits(&reference_logits(&prod, &input)));
    drop(stream);
    server.shutdown();
}

#[test]
fn duplicate_and_invalid_registry_names_are_rejected() {
    let snn = served_network(3);
    let dup = Server::spawn_models(
        vec![
            ModelSpec::new("prod", Arc::clone(&snn), INPUT_DIMS.to_vec()),
            ModelSpec::new("prod", Arc::clone(&snn), INPUT_DIMS.to_vec()),
        ],
        "127.0.0.1:0",
        base(),
    );
    let err = dup.err().expect("duplicate names must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("prod"), "error must name the duplicate: {err}");

    let bad = Server::spawn_models(
        vec![ModelSpec::new("no spaces", Arc::clone(&snn), INPUT_DIMS.to_vec())],
        "127.0.0.1:0",
        base(),
    );
    assert_eq!(bad.err().expect("bad name").kind(), std::io::ErrorKind::InvalidInput);

    let empty = Server::spawn_models(Vec::new(), "127.0.0.1:0", base());
    assert_eq!(empty.err().expect("empty registry").kind(), std::io::ErrorKind::InvalidInput);
}

#[test]
fn per_model_quota_answers_busy_and_recovers() {
    let snn = served_network(17);
    // quota 1 + a long batch window: the first admitted request parks in
    // the batcher holding its lease, so a second one must bounce.
    let server = Server::spawn_models(
        vec![ModelSpec::new("prod", Arc::clone(&snn), INPUT_DIMS.to_vec()).with_quota(1)],
        "127.0.0.1:0",
        ServeConfig { max_batch: 8, max_delay_us: 300_000, ..base() },
    )
    .expect("spawn");

    let input = example(42);
    let mut holder = connect(&server);
    protocol::write_request(&mut holder, &input).expect("holder write");
    // Let the server admit it before racing the second request.
    std::thread::sleep(Duration::from_millis(60));

    let mut probe = connect(&server);
    protocol::write_request_tagged(&mut probe, 11, &input).expect("probe write");
    let reply = protocol::read_reply(&mut probe).expect("probe reply");
    assert_eq!(reply.status, Status::Busy, "quota 1 must shed the second request");
    assert_eq!(reply.tag, Some(11));
    assert!(reply.message.contains("quota"), "got {:?}", reply.message);

    // The parked request completes normally...
    let reply = protocol::read_reply(&mut holder).expect("holder reply");
    assert_eq!(reply.status, Status::Ok, "{}", reply.message);
    assert_eq!(bits(&reply.logits), bits(&reference_logits(&snn, &input)));
    // ...and once its lease is back the probe gets through.
    protocol::write_request_tagged(&mut probe, 12, &input).expect("probe retry");
    let reply = protocol::read_reply(&mut probe).expect("probe retry reply");
    assert_eq!(reply.status, Status::Ok, "{}", reply.message);
    drop(holder);
    drop(probe);
    server.shutdown();
}

#[test]
fn hot_swap_under_load_is_bit_exact_and_drops_nothing() {
    let engine_a = served_network(2024);
    let engine_b = served_network(4242);
    let artifact = temp_artifact("swap_target.qsnca");
    save_engine(&engine_b, &INPUT_DIMS, 0xB0B, &artifact);

    let server = Server::spawn_models(
        vec![ModelSpec::new("prod", Arc::clone(&engine_a), INPUT_DIMS.to_vec())],
        "127.0.0.1:0",
        ServeConfig { max_batch: 4, max_delay_us: 200, ..base() },
    )
    .expect("spawn");

    let input = example(7);
    let want_a = bits(&reference_logits(&engine_a, &input));
    let want_b = bits(&reference_logits(&engine_b, &input));
    assert_ne!(want_a, want_b);

    // Sustained load: synchronous request/reply loops, so any dropped
    // admitted request surfaces as a read failure here.
    let stop = Arc::new(AtomicBool::new(false));
    let mut hammers = Vec::new();
    for client in 0..4u32 {
        let stop = Arc::clone(&stop);
        let addr = server.local_addr();
        let input = input.clone();
        let (want_a, want_b) = (want_a.clone(), want_b.clone());
        hammers.push(std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            let mut replies = 0usize;
            let mut saw = [false, false]; // [old version, new version]
            while !stop.load(Ordering::Relaxed) {
                protocol::write_request_tagged(&mut stream, client, &input).expect("write");
                let reply = protocol::read_reply(&mut stream).expect("an admitted request died");
                assert_eq!(reply.status, Status::Ok, "{}", reply.message);
                let got = bits(&reply.logits);
                if got == want_a {
                    saw[0] = true;
                } else if got == want_b {
                    saw[1] = true;
                } else {
                    panic!("client {client}: reply matches neither engine version");
                }
                replies += 1;
            }
            (replies, saw)
        }));
    }

    // Swap mid-traffic. The call must drain the old version before
    // returning, so `drained` is a hard assertion, not best-effort.
    std::thread::sleep(Duration::from_millis(150));
    let report = server.swap_artifact("prod", &artifact).expect("swap");
    assert_eq!(report.model, "prod");
    assert_eq!(report.model_id, 0);
    assert_eq!(report.old_version, 1);
    assert_eq!(report.new_version, 2);
    assert_eq!(report.new_digest, 0xB0B);
    assert!(report.drained, "swap must drain the old engine before returning");
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);

    let mut total = 0usize;
    let mut saw_old = false;
    for h in hammers {
        let (replies, saw) = h.join().expect("hammer thread");
        assert!(replies > 0, "every client must have gotten replies");
        total += replies;
        saw_old |= saw[0];
    }
    assert!(total > 0);
    assert!(saw_old, "pre-swap traffic must have hit the old engine");

    // After the swap has returned, a fresh connection sees only v2.
    let mut stream = connect(&server);
    protocol::write_request(&mut stream, &input).expect("write");
    let reply = protocol::read_reply(&mut stream).expect("reply");
    assert_eq!(reply.status, Status::Ok, "{}", reply.message);
    assert_eq!(bits(&reply.logits), want_b, "post-swap replies must come from the new engine");
    drop(stream);

    // The registry reflects the new version and provenance.
    let models = server.models();
    assert_eq!(models.len(), 1);
    assert_eq!(models[0].version, 2);
    assert_eq!(models[0].swaps, 1);
    assert_eq!(models[0].checkpoint_digest, 0xB0B);
    server.shutdown();
}

#[test]
fn swap_rejects_dims_mismatch_and_unknown_model() {
    let snn = served_network(23);
    let flat = temp_artifact("flat_dims.qsnca");
    // Same engine, but declared with flattened input dims: a swap must
    // refuse to change the request contract out from under clients.
    save_engine(&snn, &[28 * 28], 0, &flat);
    let good = temp_artifact("good_dims.qsnca");
    save_engine(&snn, &INPUT_DIMS, 0, &good);

    let server = Server::spawn_models(
        vec![ModelSpec::new("prod", Arc::clone(&snn), INPUT_DIMS.to_vec())],
        "127.0.0.1:0",
        base(),
    )
    .expect("spawn");

    let err = server.swap_artifact("prod", &flat).err().expect("dims mismatch must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("dims"), "error must explain the mismatch: {err}");

    let err = server.swap_artifact("nope", &good).err().expect("unknown model must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);

    // The failed swaps changed nothing: still version 1, still serving.
    assert_eq!(server.models()[0].version, 1);
    let input = example(99);
    let mut stream = connect(&server);
    protocol::write_request(&mut stream, &input).expect("write");
    assert_eq!(protocol::read_reply(&mut stream).expect("reply").status, Status::Ok);
    drop(stream);
    server.shutdown();
}

/// Issues one admin-plane HTTP request and returns the raw response.
fn http(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream.write_all(request.as_bytes()).expect("write request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read response");
    body
}

#[test]
fn admin_lists_models_and_swaps_over_http() {
    let engine_a = served_network(29);
    let engine_b = served_network(31);
    let artifact = temp_artifact("admin_swap.qsnca");
    save_engine(&engine_b, &INPUT_DIMS, 0xADC, &artifact);

    let server = Server::spawn_models(
        vec![
            ModelSpec::new("prod", Arc::clone(&engine_a), INPUT_DIMS.to_vec()),
            ModelSpec::new("canary", Arc::clone(&engine_a), INPUT_DIMS.to_vec()).with_quota(16),
        ],
        "127.0.0.1:0",
        ServeConfig { admin_addr: Some("127.0.0.1:0".to_string()), ..base() },
    )
    .expect("spawn");
    let admin = server.admin_local_addr().expect("admin plane enabled");

    let listing = http(admin, "GET /models HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
    assert!(listing.starts_with("HTTP/1.1 200"), "got {listing}");
    assert!(listing.contains("\"name\":\"prod\"") && listing.contains("\"name\":\"canary\""));
    assert!(listing.contains("\"version\":1"));
    assert!(listing.contains("\"quota\":16"));

    // The swap route is the admin plane's one mutating endpoint: POST only.
    let rejected = http(
        admin,
        "GET /models/swap?model=prod&artifact=x HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert!(rejected.starts_with("HTTP/1.1 405"), "got {rejected}");
    let rejected = http(admin, "POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
    assert!(rejected.starts_with("HTTP/1.1 405"), "got {rejected}");

    let swap = http(
        admin,
        &format!(
            "POST /models/swap?model=canary&artifact={} HTTP/1.1\r\n\
             Host: x\r\nConnection: close\r\n\r\n",
            artifact.display()
        ),
    );
    assert!(swap.starts_with("HTTP/1.1 200"), "got {swap}");
    assert!(swap.contains("\"new_version\":2") && swap.contains("\"drained\":true"));

    let missing = http(
        admin,
        &format!(
            "POST /models/swap?model=ghost&artifact={} HTTP/1.1\r\n\
             Host: x\r\nConnection: close\r\n\r\n",
            artifact.display()
        ),
    );
    assert!(missing.starts_with("HTTP/1.1 404"), "got {missing}");

    // The swap through HTTP is visible on the inference plane.
    let input = example(5);
    let mut stream = connect(&server);
    protocol::write_request_routed(&mut stream, 1, 1, &input).expect("write");
    let reply = protocol::read_reply(&mut stream).expect("reply");
    assert_eq!(reply.status, Status::Ok, "{}", reply.message);
    assert_eq!(bits(&reply.logits), bits(&reference_logits(&engine_b, &input)));
    drop(stream);
    server.shutdown();
}
