//! Protocol-v2 multiplexing tests against the epoll event-loop front end.
//!
//! Every test drives real `TcpStream` clients that pipeline **tagged**
//! requests — many in flight on one connection — and then checks the three
//! properties the multiplexed path must never lose:
//!
//! 1. **Bit-identity**: each tagged reply, matched to its request by tag
//!    regardless of arrival order, carries logits bit-identical to the
//!    float oracle [`SpikingNetwork::infer_reference`].
//! 2. **Protocol discipline**: duplicate live tags, oversized frames mid
//!    pipeline, interleaved v1 frames, and half-closed peers get error
//!    replies or an orderly close — never a panicked loop thread.
//! 3. **Accounting**: the per-connection in-flight budget answers
//!    [`Status::Busy`] with the offending tag, and graceful drain answers
//!    every request it admitted before the listener went away.
//!
//! The event-loop front end only exists on Linux x86-64/aarch64 (raw epoll
//! syscalls), so the whole file is gated; the final test additionally
//! pins the threaded front end to prove v2 frames work there too.

#![cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]

use qsnc_memristor::{DeployConfig, SpikingNetwork};
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    WeightQuantMethod,
};
use qsnc_serve::protocol::{self, Status, MAGIC, OP_INFER, VERSION_V2};
use qsnc_serve::{FrontEnd, ServeConfig, Server};
use qsnc_tensor::{Tensor, TensorRng};
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const INPUT_DIMS: [usize; 3] = [1, 28, 28];

/// A compiled 4/4-bit LeNet with the integer fast path available.
fn served_network(seed: u64) -> Arc<SpikingNetwork> {
    let mut rng = TensorRng::seed(seed);
    let mut net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(4),
        0.0,
        ActivationQuantizer::new(4),
    );
    switch.set_enabled(true);
    quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
    let config = DeployConfig::paper(4, 4);
    let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");
    assert!(snn.has_fast_path(), "4/4-bit LeNet must take the integer engine");
    Arc::new(snn)
}

fn example(seed: u64) -> Vec<f32> {
    let mut rng = TensorRng::seed(seed);
    qsnc_tensor::init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng)
        .as_slice()
        .to_vec()
}

fn reference_logits(snn: &SpikingNetwork, input: &[f32]) -> Vec<f32> {
    let x = Tensor::from_vec(input.to_vec(), [1, 1, 28, 28]);
    snn.infer_reference(&x).as_slice().to_vec()
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream
}

fn bits(logits: &[f32]) -> Vec<u32> {
    logits.iter().map(|v| v.to_bits()).collect()
}

/// Reads replies until the server closes the connection.
fn read_until_eof(stream: &mut TcpStream) -> Vec<protocol::Reply> {
    let mut replies = Vec::new();
    while let Ok(reply) = protocol::read_reply(stream) {
        replies.push(reply);
    }
    replies
}

/// The core multiplexing proof: one connection pipelines many tagged
/// requests with distinct inputs, two single-request workers race the
/// completions back in whatever order inference finishes, and every reply
/// — matched purely by tag — must be bit-identical to the reference.
#[test]
fn pipelined_tagged_replies_are_bit_identical_in_any_order() {
    let snn = served_network(41);
    let server = Server::spawn(
        Arc::clone(&snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        ServeConfig {
            front_end: FrontEnd::EventLoop,
            workers: 2,
            max_batch: 1,
            max_delay_us: 0,
            max_inflight_per_conn: 64,
            ..ServeConfig::default()
        },
    )
    .expect("spawn");

    const SHOTS: u32 = 24;
    let inputs: Vec<Vec<f32>> = (0..SHOTS).map(|i| example(4100 + i as u64)).collect();
    let mut stream = connect(&server);
    for (tag, input) in inputs.iter().enumerate() {
        protocol::write_request_tagged(&mut stream, tag as u32, input).expect("write");
    }

    let mut seen: HashMap<u32, protocol::Reply> = HashMap::new();
    for _ in 0..SHOTS {
        let reply = protocol::read_reply(&mut stream).expect("reply");
        assert_eq!(reply.status, Status::Ok, "tag {:?}: {}", reply.tag, reply.message);
        let tag = reply.tag.expect("v2 requests must get tagged replies");
        assert!(seen.insert(tag, reply).is_none(), "tag {tag} answered twice");
    }
    for (tag, input) in inputs.iter().enumerate() {
        let reply = &seen[&(tag as u32)];
        let expected = reference_logits(&snn, input);
        assert_eq!(bits(&reply.logits), bits(&expected), "tag {tag}");
        let want_argmax = expected
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv { (i, v) } else { (bi, bv) }
            })
            .0;
        assert_eq!(reply.argmax as usize, want_argmax, "tag {tag}");
    }
    drop(stream);
    server.shutdown();
}

/// A tag may not be live twice on one connection: the second use is
/// answered [`Status::BadRequest`] (carrying the tag), the first still
/// completes, and once it has replied the tag is free for reuse.
#[test]
fn duplicate_live_tag_is_rejected_then_reusable() {
    let snn = served_network(43);
    let server = Server::spawn(
        Arc::clone(&snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        // A wide batch window keeps the first request in flight long
        // enough that the duplicate is deterministically still live.
        ServeConfig {
            front_end: FrontEnd::EventLoop,
            max_batch: 32,
            max_delay_us: 100_000,
            ..ServeConfig::default()
        },
    )
    .expect("spawn");

    let input = example(4300);
    let mut stream = connect(&server);
    protocol::write_request_tagged(&mut stream, 9, &input).expect("first");
    protocol::write_request_tagged(&mut stream, 9, &input).expect("duplicate");

    // The duplicate bounces immediately; the original completes after the
    // batch window.
    let first = protocol::read_reply(&mut stream).expect("reply 1");
    assert_eq!(first.status, Status::BadRequest, "{}", first.message);
    assert_eq!(first.tag, Some(9));
    assert!(first.message.contains("tag"), "got {:?}", first.message);
    let second = protocol::read_reply(&mut stream).expect("reply 2");
    assert_eq!(second.status, Status::Ok, "{}", second.message);
    assert_eq!(second.tag, Some(9));
    assert_eq!(bits(&second.logits), bits(&reference_logits(&snn, &input)));

    // The tag is dead now — reusing it is fine.
    protocol::write_request_tagged(&mut stream, 9, &input).expect("reuse");
    let third = protocol::read_reply(&mut stream).expect("reply 3");
    assert_eq!(third.status, Status::Ok, "{}", third.message);
    assert_eq!(third.tag, Some(9));
    drop(stream);
    server.shutdown();
}

/// v1 and v2 frames interleave on one connection: untagged frames keep
/// their lockstep FIFO identity (replies arrive in request order) while a
/// tagged frame between them pipelines freely.
#[test]
fn v1_and_v2_frames_interleave_on_one_connection() {
    let snn = served_network(47);
    let server = Server::spawn(
        Arc::clone(&snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        ServeConfig { front_end: FrontEnd::EventLoop, ..ServeConfig::default() },
    )
    .expect("spawn");

    let a = example(4701);
    let b = example(4702);
    let c = example(4703);
    let mut stream = connect(&server);
    protocol::write_request(&mut stream, &a).expect("v1 a");
    protocol::write_request_tagged(&mut stream, 3, &b).expect("v2 b");
    protocol::write_request(&mut stream, &c).expect("v1 c");

    let mut untagged = Vec::new();
    let mut tagged = Vec::new();
    for _ in 0..3 {
        let reply = protocol::read_reply(&mut stream).expect("reply");
        assert_eq!(reply.status, Status::Ok, "{}", reply.message);
        match reply.tag {
            None => untagged.push(reply),
            Some(tag) => {
                assert_eq!(tag, 3);
                tagged.push(reply);
            }
        }
    }
    // Untagged replies are the only way a v1 client can match answers to
    // requests, so their order is the request order: a before c.
    assert_eq!(untagged.len(), 2);
    assert_eq!(tagged.len(), 1);
    assert_eq!(bits(&untagged[0].logits), bits(&reference_logits(&snn, &a)));
    assert_eq!(bits(&untagged[1].logits), bits(&reference_logits(&snn, &c)));
    assert_eq!(bits(&tagged[0].logits), bits(&reference_logits(&snn, &b)));
    drop(stream);
    server.shutdown();
}

/// An oversized declared payload arriving mid-pipeline is unframeable: the
/// server must still answer every request admitted before it, send one
/// [`Status::BadRequest`] **tagged with the offending request's tag** (a
/// bare drop would leave the client unable to tell which pipelined request
/// died), and close — without panicking a loop.
#[test]
fn oversized_tagged_frame_mid_pipeline_errors_and_closes() {
    let snn = served_network(53);
    let server = Server::spawn(
        Arc::clone(&snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        ServeConfig {
            front_end: FrontEnd::EventLoop,
            max_batch: 32,
            max_delay_us: 100_000,
            ..ServeConfig::default()
        },
    )
    .expect("spawn");

    let mut stream = connect(&server);
    let inputs: Vec<Vec<f32>> = (0..3).map(|i| example(5300 + i)).collect();
    for (tag, input) in inputs.iter().enumerate() {
        protocol::write_request_tagged(&mut stream, tag as u32, input).expect("write");
    }
    // A v2 header declaring a payload over the frame cap.
    let mut poison = Vec::new();
    poison.extend_from_slice(&MAGIC.to_le_bytes());
    poison.push(VERSION_V2);
    poison.push(OP_INFER);
    poison.extend_from_slice(&77u32.to_le_bytes()); // tag
    poison.extend_from_slice(&u32::MAX.to_le_bytes()); // declared length
    stream.write_all(&poison).expect("poison frame");

    let replies = read_until_eof(&mut stream);
    assert_eq!(replies.len(), 4, "3 admitted replies + 1 fatal error");
    let fatal: Vec<_> = replies.iter().filter(|r| r.status == Status::BadRequest).collect();
    assert_eq!(fatal.len(), 1);
    assert!(fatal[0].message.contains("cap"), "got {:?}", fatal[0].message);
    assert_eq!(
        fatal[0].tag,
        Some(77),
        "the rejection must be attributed to the oversized frame's tag"
    );
    let mut ok_tags: Vec<u32> = replies
        .iter()
        .filter(|r| r.status == Status::Ok)
        .map(|r| r.tag.expect("tagged"))
        .collect();
    ok_tags.sort_unstable();
    assert_eq!(ok_tags, vec![0, 1, 2], "every admitted request must still be answered");
    for reply in replies.iter().filter(|r| r.status == Status::Ok) {
        let input = &inputs[reply.tag.unwrap() as usize];
        assert_eq!(bits(&reply.logits), bits(&reference_logits(&snn, input)));
    }
    drop(stream);
    server.shutdown();
}

/// A client that half-closes (shutdown-for-write) with replies pending
/// must still receive all of them before the server closes its side.
#[test]
fn half_close_with_replies_pending_still_answers_all() {
    let snn = served_network(59);
    let server = Server::spawn(
        Arc::clone(&snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        ServeConfig {
            front_end: FrontEnd::EventLoop,
            max_batch: 32,
            max_delay_us: 100_000,
            ..ServeConfig::default()
        },
    )
    .expect("spawn");

    let mut stream = connect(&server);
    let inputs: Vec<Vec<f32>> = (0..5).map(|i| example(5900 + i)).collect();
    for (tag, input) in inputs.iter().enumerate() {
        protocol::write_request_tagged(&mut stream, tag as u32, input).expect("write");
    }
    stream.shutdown(std::net::Shutdown::Write).expect("half close");

    let replies = read_until_eof(&mut stream);
    assert_eq!(replies.len(), 5, "every pending reply must arrive after half-close");
    let mut tags: Vec<u32> = Vec::new();
    for reply in &replies {
        assert_eq!(reply.status, Status::Ok, "{}", reply.message);
        let tag = reply.tag.expect("tagged");
        tags.push(tag);
        assert_eq!(bits(&reply.logits), bits(&reference_logits(&snn, &inputs[tag as usize])));
    }
    tags.sort_unstable();
    assert_eq!(tags, vec![0, 1, 2, 3, 4]);
    drop(stream);
    server.shutdown();
}

/// The per-connection in-flight budget sheds load with tagged
/// [`Status::Busy`] replies — and those bounce back *before* the earlier
/// admitted requests complete, which is exactly the out-of-order delivery
/// the tag field exists for.
#[test]
fn inflight_budget_answers_busy_with_the_offending_tag() {
    let snn = served_network(61);
    let server = Server::spawn(
        Arc::clone(&snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        ServeConfig {
            front_end: FrontEnd::EventLoop,
            max_inflight_per_conn: 2,
            max_batch: 32,
            max_delay_us: 200_000,
            queue_cap: 64,
            ..ServeConfig::default()
        },
    )
    .expect("spawn");

    let input = example(6100);
    let mut stream = connect(&server);
    for tag in 0..8u32 {
        protocol::write_request_tagged(&mut stream, tag, &input).expect("write");
    }

    let mut order = Vec::new();
    for _ in 0..8 {
        let reply = protocol::read_reply(&mut stream).expect("reply");
        order.push((reply.tag.expect("tagged"), reply.status));
    }
    let busy: Vec<u32> =
        order.iter().filter(|(_, s)| *s == Status::Busy).map(|(t, _)| *t).collect();
    let ok: Vec<u32> = order.iter().filter(|(_, s)| *s == Status::Ok).map(|(t, _)| *t).collect();
    assert_eq!(ok, vec![0, 1], "the first two requests fill the budget");
    assert_eq!(busy, vec![2, 3, 4, 5, 6, 7], "the rest bounce with their tags");
    // Out-of-order on the wire: the Busy for tag 7 (sent last) must arrive
    // before the Ok for tag 0 (sent first).
    let pos = |tag: u32| order.iter().position(|(t, _)| *t == tag).unwrap();
    assert!(pos(7) < pos(0), "Busy replies overtake pending work: {order:?}");

    // Load shedding, not failure: the same connection still works.
    protocol::write_request_tagged(&mut stream, 99, &input).expect("after shed");
    let reply = protocol::read_reply(&mut stream).expect("reply");
    assert_eq!(reply.status, Status::Ok, "{}", reply.message);
    assert_eq!(reply.tag, Some(99));
    drop(stream);
    server.shutdown();
}

/// Graceful drain answers every tagged request admitted before shutdown,
/// then closes the connection.
#[test]
fn drain_answers_every_admitted_tagged_request() {
    let snn = served_network(67);
    let server = Server::spawn(
        Arc::clone(&snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        // A long batch window guarantees the requests are still queued
        // when the drain begins.
        ServeConfig {
            front_end: FrontEnd::EventLoop,
            max_batch: 32,
            max_delay_us: 300_000,
            ..ServeConfig::default()
        },
    )
    .expect("spawn");

    let inputs: Vec<Vec<f32>> = (0..6).map(|i| example(6700 + i)).collect();
    let mut stream = connect(&server);
    for (tag, input) in inputs.iter().enumerate() {
        protocol::write_request_tagged(&mut stream, tag as u32, input).expect("write");
    }

    let snn_reader = Arc::clone(&snn);
    let inputs_reader = inputs.clone();
    let reader = std::thread::spawn(move || {
        let replies = read_until_eof(&mut stream);
        assert_eq!(replies.len(), 6, "drain must answer every admitted request");
        let mut tags: Vec<u32> = Vec::new();
        for reply in &replies {
            assert_eq!(reply.status, Status::Ok, "{}", reply.message);
            let tag = reply.tag.expect("tagged");
            tags.push(tag);
            let expected = reference_logits(&snn_reader, &inputs_reader[tag as usize]);
            assert_eq!(bits(&reply.logits), bits(&expected), "tag {tag}");
        }
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1, 2, 3, 4, 5]);
    });

    // Let the loop admit everything into the batcher, then drain while
    // the replies are still pending.
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();
    reader.join().expect("reader thread");
}

/// The threaded front end accepts v2 frames too — lockstep rather than
/// multiplexed, but tags echo back and the answers are bit-identical.
#[test]
fn threaded_front_end_serves_tagged_frames_lockstep() {
    let snn = served_network(71);
    let server = Server::spawn(
        Arc::clone(&snn),
        &INPUT_DIMS,
        "127.0.0.1:0",
        ServeConfig { front_end: FrontEnd::Threaded, ..ServeConfig::default() },
    )
    .expect("spawn");

    let mut stream = connect(&server);
    for shot in 0..3u32 {
        let input = example(7100 + shot as u64);
        let expected = reference_logits(&snn, &input);
        protocol::write_request_tagged(&mut stream, 100 + shot, &input).expect("write");
        let reply = protocol::read_reply(&mut stream).expect("reply");
        assert_eq!(reply.status, Status::Ok, "{}", reply.message);
        assert_eq!(reply.tag, Some(100 + shot));
        assert_eq!(bits(&reply.logits), bits(&expected), "shot {shot}");
    }
    drop(stream);
    server.shutdown();
}
