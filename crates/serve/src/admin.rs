//! The admin observability endpoint: live metrics over minimal HTTP/1.1.
//!
//! When [`crate::ServeConfig::admin_addr`] is set, the server binds a
//! second listener that speaks just enough HTTP/1.1 for scrapers and
//! humans with `curl` — one request per connection, no keep-alive, no
//! dependencies. Routes:
//!
//! | route | payload |
//! |---|---|
//! | `GET /metrics` | Prometheus text exposition (version 0.0.4) of the full telemetry snapshot |
//! | `GET /snapshot` | The telemetry JSON document (`Snapshot::to_json`), identical in shape to the `telemetry` section of a deployment report |
//! | `GET /snapshot?cursor=NAME` | Windowed delta since the last scrape that used cursor `NAME` (first use returns everything; see `qsnc_telemetry::snapshot_since`) |
//! | `GET /slow` | Flight-recorder dump: the retained slow-request stage traces as a JSON array |
//! | `GET /healthz` | `ok` |
//! | `GET /models` | JSON array of registered models: id, name, engine version, input dims, quota, in-flight count, swap count, provenance digest |
//! | `POST /models/swap?model=NAME&artifact=PATH` | Hot-swaps model `NAME` to the `.qsnca` artifact at `PATH` (percent-encoded). `200` with the swap report on success; `404` unknown model, `400` artifact/dims rejection |
//!
//! `/models/swap` is the one mutating route and requires `POST`; every
//! other route requires `GET`. The artifact path is read by the serving
//! process, so expose the admin listener only on a trusted interface
//! (the default has no admin plane at all).
//!
//! The exposition maps the frozen dotted taxonomy onto Prometheus names
//! by replacing every non-alphanumeric character with `_` and prefixing
//! `qsnc_`: counters gain a `_total` suffix, fixed-bucket histograms
//! become `histogram` families with cumulative `le` buckets, quantile
//! sketches become `summary` families with `quantile` labels (p50 / p90 /
//! p99 / p99.9), and spans export `qsnc_span_count` / `qsnc_span_total_ns`
//! with a `path` label. Step series are JSON-only — scrape `/snapshot`
//! for those.
//!
//! Each accepted connection is answered on its own short-lived handler
//! thread with a 2-second (`SCRAPE_TIMEOUT`) read/write timeout, so one stalled
//! scraper can neither delay the next `/metrics` poll (it used to hold
//! the single-threaded listener for the whole timeout) nor hold a thread
//! forever. Delta cursors live behind a mutex shared by the handlers; the
//! data plane never waits on the admin plane.

use crate::registry::{ModelRegistry, ModelStatus};
use qsnc_telemetry::{DeltaCursor, HistogramSnapshot, QuantileSnapshot, Snapshot, SpanSnapshot};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Quantiles exported per sketch on `/metrics`.
const SUMMARY_QUANTILES: &[f64] = &[0.5, 0.9, 0.99, 0.999];

/// Largest request head (request line + headers) the parser accepts.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Read/write timeout on accepted admin connections: the longest a stalled
/// scraper can hold one handler thread.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

/// Binds `addr` and starts the admin thread. Returns the resolved local
/// address (port 0 becomes the actual ephemeral port) and the thread
/// handle; the caller joins it on drain after nudging the listener with a
/// bare connection.
pub(crate) fn spawn(
    addr: &str,
    running: Arc<AtomicBool>,
    registry: Arc<ModelRegistry>,
) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let handle = std::thread::spawn(move || admin_loop(&listener, &running, &registry));
    Ok((local, handle))
}

fn admin_loop(listener: &TcpListener, running: &AtomicBool, registry: &Arc<ModelRegistry>) {
    let cursors: Arc<Mutex<HashMap<String, DeltaCursor>>> = Arc::new(Mutex::new(HashMap::new()));
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if !running.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        let stop = !running.load(Ordering::SeqCst);
        // Serve even the final connection: a scrape racing shutdown gets
        // its answer, and the drain nudge carries no request so it falls
        // straight through the read. Timeouts bound a stalled client.
        let _ = stream.set_read_timeout(Some(SCRAPE_TIMEOUT));
        let _ = stream.set_write_timeout(Some(SCRAPE_TIMEOUT));
        if stop {
            // Answer the final scrape inline; there is no one left to
            // accept for while it runs.
            let _ = handle_connection(stream, &cursors, registry);
            break;
        }
        // Handler threads keep the accept loop responsive while a slow
        // scraper trickles its request or reads its response; the timeout
        // above bounds each handler's lifetime, so these threads cannot
        // accumulate past (stalled scrapers × timeout).
        let cursors = Arc::clone(&cursors);
        let registry = Arc::clone(registry);
        std::thread::spawn(move || {
            let _ = handle_connection(stream, &cursors, &registry);
        });
    }
}

fn handle_connection(
    mut stream: TcpStream,
    cursors: &Mutex<HashMap<String, DeltaCursor>>,
    registry: &Arc<ModelRegistry>,
) -> io::Result<()> {
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_REQUEST_BYTES {
            return respond(&mut stream, "431 Request Header Fields Too Large", "text/plain", "");
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(()); // closed before a full request: the drain nudge
        }
        head.extend_from_slice(&buf[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return respond(&mut stream, "400 Bad Request", "text/plain", "bad request\n"),
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    if path == "/models/swap" {
        // The one mutating route: POST only, so a stray GET crawler can
        // never trigger a swap.
        if method != "POST" {
            return respond(&mut stream, "405 Method Not Allowed", "text/plain", "POST only\n");
        }
        let model = query.and_then(|q| query_param(q, "model"));
        let artifact = query.and_then(|q| query_param(q, "artifact"));
        let (Some(model), Some(artifact)) = (model, artifact) else {
            return respond(
                &mut stream,
                "400 Bad Request",
                "text/plain",
                "model and artifact query parameters are required\n",
            );
        };
        return match registry.swap_from_artifact(&model, &artifact) {
            Ok(report) => {
                respond(&mut stream, "200 OK", "application/json", &swap_report_json(&report))
            }
            Err(e @ crate::registry::SwapError::UnknownModel(_)) => {
                respond(&mut stream, "404 Not Found", "text/plain", &format!("{e}\n"))
            }
            Err(e) => respond(&mut stream, "400 Bad Request", "text/plain", &format!("{e}\n")),
        };
    }
    if method != "GET" {
        return respond(&mut stream, "405 Method Not Allowed", "text/plain", "GET only\n");
    }
    match path {
        "/metrics" => {
            let body = render_prometheus(&qsnc_telemetry::snapshot());
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4", &body)
        }
        "/snapshot" => {
            let snap = match query.and_then(query_cursor) {
                Some(name) => match cursors.lock() {
                    Ok(mut cursors) => {
                        let cursor = cursors.entry(name).or_default();
                        qsnc_telemetry::snapshot_since(cursor)
                    }
                    // A handler panicked holding the map; serve the full
                    // snapshot rather than nothing.
                    Err(_) => qsnc_telemetry::snapshot(),
                },
                None => qsnc_telemetry::snapshot(),
            };
            respond(&mut stream, "200 OK", "application/json", &snap.to_json().render())
        }
        "/slow" => {
            let events = qsnc_telemetry::flight_events();
            let body = qsnc_telemetry::flight_json(&events).render();
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        "/healthz" => respond(&mut stream, "200 OK", "text/plain", "ok\n"),
        "/models" => {
            respond(&mut stream, "200 OK", "application/json", &models_json(&registry.statuses()))
        }
        _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

/// Renders the `/models` payload: one JSON object per registered model,
/// in model-id order. Names need no escaping — the registry only admits
/// `[A-Za-z0-9._-]` — and digests render as fixed-width hex strings
/// (u64s do not survive JSON number parsers intact).
fn models_json(statuses: &[ModelStatus]) -> String {
    let mut out = String::from("[");
    for (i, s) in statuses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let dims =
            s.input_dims.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(",");
        let quota = s.quota.map_or_else(|| "null".to_string(), |q| q.to_string());
        let _ = write!(
            out,
            "{{\"id\":{},\"name\":\"{}\",\"version\":{},\"input_dims\":[{}],\"quota\":{},\
             \"inflight\":{},\"swaps\":{},\"checkpoint_digest\":\"{:016x}\"}}",
            s.id, s.name, s.version, dims, quota, s.inflight, s.swaps, s.checkpoint_digest
        );
    }
    out.push(']');
    out
}

/// Renders the `POST /models/swap` success payload.
fn swap_report_json(r: &crate::registry::SwapReport) -> String {
    format!(
        "{{\"model\":\"{}\",\"model_id\":{},\"old_version\":{},\"new_version\":{},\
         \"old_digest\":\"{:016x}\",\"new_digest\":\"{:016x}\",\"drained\":{},\
         \"drain_wait_us\":{}}}",
        r.model,
        r.model_id,
        r.old_version,
        r.new_version,
        r.old_digest,
        r.new_digest,
        r.drained,
        r.drain_wait_us
    )
}

/// Extracts `cursor=NAME` from a query string (no percent-decoding:
/// cursor names are plain identifiers chosen by the scraper).
fn query_cursor(query: &str) -> Option<String> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == "cursor" && !v.is_empty()).then(|| v.to_string())
    })
}

/// Extracts `key=VALUE` from a query string with `%XX` decoding — swap
/// artifact paths carry `/` and may carry spaces. A literal `+` stays a
/// `+` (encode spaces as `%20`).
fn query_param(query: &str, key: &str) -> Option<String> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key && !v.is_empty()).then(|| percent_decode(v))
    })
}

/// Minimal `%XX` percent-decoding; malformed escapes pass through
/// verbatim rather than erroring (the result then simply names no file).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            let hex = |b: u8| (b as char).to_digit(16);
            if let (Some(hi), Some(lo)) = (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                out.push((hi * 16 + lo) as u8);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Maps a dotted taxonomy name to a Prometheus metric name: every
/// character outside `[A-Za-z0-9]` becomes `_`, prefixed with `qsnc_`
/// (so `serve.stage.infer.us` exports as `qsnc_serve_stage_infer_us`).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("qsnc_");
    out.extend(name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }));
    out
}

/// Escapes a label value per the exposition format.
fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_counters(out: &mut String, counters: &[(String, u64)]) {
    for (name, value) in counters {
        let name = prom_name(name);
        let _ = writeln!(out, "# TYPE {name}_total counter");
        let _ = writeln!(out, "{name}_total {value}");
    }
}

fn render_histogram(out: &mut String, h: &HistogramSnapshot) {
    let name = prom_name(&h.name);
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (edge, bucket) in h.edges.iter().zip(&h.buckets) {
        cumulative += bucket;
        let _ = writeln!(out, "{name}_bucket{{le=\"{edge}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

fn render_summary(out: &mut String, q: &QuantileSnapshot) {
    let name = prom_name(&q.name);
    let _ = writeln!(out, "# TYPE {name} summary");
    if q.count > 0 {
        for &quantile in SUMMARY_QUANTILES {
            let _ = writeln!(out, "{name}{{quantile=\"{quantile}\"}} {}", q.quantile(quantile));
        }
    }
    let _ = writeln!(out, "{name}_sum {}", q.sum);
    let _ = writeln!(out, "{name}_count {}", q.count);
}

fn render_spans(out: &mut String, spans: &[SpanSnapshot]) {
    if spans.is_empty() {
        return;
    }
    let _ = writeln!(out, "# TYPE qsnc_span_count counter");
    for s in spans {
        let _ = writeln!(out, "qsnc_span_count{{path=\"{}\"}} {}", escape_label(&s.path), s.count);
    }
    let _ = writeln!(out, "# TYPE qsnc_span_total_ns counter");
    for s in spans {
        let _ = writeln!(
            out,
            "qsnc_span_total_ns{{path=\"{}\"}} {}",
            escape_label(&s.path),
            s.total_ns
        );
    }
}

/// Renders a telemetry snapshot in the Prometheus text exposition format
/// (version 0.0.4) — the `/metrics` payload. Step series are omitted;
/// they do not map onto scrape-time metric families.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    render_counters(&mut out, &snap.counters);
    for h in &snap.histograms {
        render_histogram(&mut out, h);
    }
    for q in &snap.quantiles {
        render_summary(&mut out, q);
    }
    render_spans(&mut out, &snap.spans);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prom_names_are_sanitized_and_prefixed() {
        assert_eq!(prom_name("serve.stage.infer.us"), "qsnc_serve_stage_infer_us");
        assert_eq!(prom_name("serve.latency_us"), "qsnc_serve_latency_us");
    }

    #[test]
    fn cursor_query_parses() {
        assert_eq!(query_cursor("cursor=ci"), Some("ci".to_string()));
        assert_eq!(query_cursor("a=b&cursor=x&c=d"), Some("x".to_string()));
        assert_eq!(query_cursor("cursor="), None);
        assert_eq!(query_cursor("other=1"), None);
    }

    #[test]
    fn exposition_renders_every_instrument_kind() {
        let _guard = qsnc_telemetry::testing::lock();
        qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Record);
        qsnc_telemetry::reset();
        qsnc_telemetry::counter_add("test.admin.hits", 3);
        qsnc_telemetry::observe("test.admin.sizes", 2.0, &[1.0, 4.0]);
        for v in [10.0, 20.0, 30.0, 40.0] {
            qsnc_telemetry::quantile_observe("test.admin.lat.us", v);
        }
        drop(qsnc_telemetry::start_span("test.admin.span"));
        let snap = qsnc_telemetry::snapshot();
        qsnc_telemetry::reset();
        qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Off);

        let text = render_prometheus(&snap);
        assert!(text.contains("# TYPE qsnc_test_admin_hits_total counter"), "{text}");
        assert!(text.contains("qsnc_test_admin_hits_total 3"), "{text}");
        assert!(text.contains("# TYPE qsnc_test_admin_sizes histogram"), "{text}");
        assert!(text.contains("qsnc_test_admin_sizes_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("# TYPE qsnc_test_admin_lat_us summary"), "{text}");
        assert!(text.contains("qsnc_test_admin_lat_us{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("qsnc_test_admin_lat_us_count 4"), "{text}");
        assert!(text.contains("qsnc_span_count{path=\"test.admin.span\"} 1"), "{text}");

        // Exposition well-formedness: every non-comment line is
        // `name{labels} value` with a parseable value.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            value.parse::<f64>().unwrap_or_else(|_| panic!("bad value in {line:?}"));
        }
    }

    #[test]
    fn empty_snapshot_renders_empty_exposition() {
        let snap = Snapshot::default();
        assert!(render_prometheus(&snap).is_empty());
    }

    #[test]
    fn query_params_percent_decode() {
        assert_eq!(
            query_param("model=canary&artifact=%2Ftmp%2Fa%20b.qsnca", "artifact"),
            Some("/tmp/a b.qsnca".to_string())
        );
        assert_eq!(query_param("model=canary", "model"), Some("canary".to_string()));
        assert_eq!(query_param("model=", "model"), None);
        assert_eq!(query_param("artifact=a", "model"), None);
        // Malformed escapes pass through verbatim; '+' is not a space.
        assert_eq!(percent_decode("a%ZZb+c%2"), "a%ZZb+c%2");
    }

    #[test]
    fn models_json_renders_status_fields() {
        let statuses = vec![ModelStatus {
            id: 0,
            name: "default".to_string(),
            version: 2,
            input_dims: vec![1, 28, 28],
            quota: Some(16),
            inflight: 3,
            swaps: 1,
            checkpoint_digest: 0xdead_beef,
        }];
        let json = models_json(&statuses);
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"name\":\"default\""), "{json}");
        assert!(json.contains("\"version\":2"), "{json}");
        assert!(json.contains("\"input_dims\":[1,28,28]"), "{json}");
        assert!(json.contains("\"quota\":16"), "{json}");
        assert!(json.contains("\"checkpoint_digest\":\"00000000deadbeef\""), "{json}");
    }
}
