//! The model registry: several compiled engines behind one port, with
//! per-model admission quotas and zero-downtime hot swap.
//!
//! ## Shape
//!
//! A [`crate::Server`] built with [`crate::Server::spawn_models`] owns one
//! `ModelRegistry`: an ordered list of **entries**, one per registered
//! model name. Ids are positional — the model at index 0 is the
//! **default** model, the one v1/v2 frames (and v3 frames naming model 0)
//! route to — and never change for the life of the server; a swap replaces
//! an entry's *engine*, not its id. Each entry holds the current
//! engine version (`ModelVersion`) behind an `RwLock<Arc<…>>`: readers
//! (front ends resolving a frame) clone the `Arc` out; a swap write-locks
//! just long enough to replace the pointer.
//!
//! ## Admission and the quota tier
//!
//! A request is bound to an engine **at admission**, by acquiring a
//! `Lease` on the entry + the version snapshot the front end resolved.
//! The lease travels inside the queued request and drops after the worker
//! has run inference and routed the reply, decrementing two counters:
//!
//! - the **entry-level** in-flight count, checked against the per-model
//!   admission quota ([`ModelSpec::quota`] /
//!   `QSNC_SERVE_MODEL_QUOTA`) — the quota tier of the backpressure
//!   ladder, answering [`crate::Status::Busy`] when one model's tenants
//!   would otherwise starve the shared queue;
//! - the **version-level** in-flight count, which is what hot swap drains.
//!
//! ## Hot swap
//!
//! A swap ([`crate::Server::swap_artifact`], or the admin plane's
//! `POST /models/swap`) loads a `.qsnca` artifact,
//! verifies its input dims match the entry (a swap must never change the
//! wire contract mid-connection), atomically replaces the engine pointer,
//! then **drains**: it waits until every request admitted against the old
//! version has been answered (version in-flight count zero *and* no
//! resolved-but-unadmitted snapshot still holds the old `Arc`) before
//! releasing the old engine's memory and returning a [`SwapReport`].
//! Requests admitted before the swap run to completion on the old engine —
//! bit-identical to its pre-swap replies; requests admitted after run on
//! the new one. Nothing is dropped, rejected, or re-run by a swap.

use qsnc_memristor::{ArtifactError, SpikingNetwork};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// How long the swap drain sleeps between checks of the old version's
/// in-flight count.
const DRAIN_POLL: Duration = Duration::from_micros(500);

/// One model to register at [`crate::Server::spawn_models`] time. The
/// first spec in the list becomes the **default** model (id 0) that
/// id-less v1/v2 frames route to.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Registry name, unique per server — the handle admin swap requests
    /// and per-model telemetry use. Letters, digits, `-`, `_` and `.`
    /// only.
    pub name: String,
    /// The compiled engine to serve.
    pub network: Arc<SpikingNetwork>,
    /// Per-example input tensor dims (no leading batch dimension);
    /// request payloads must carry exactly their product in `f32`s.
    pub input_dims: Vec<usize>,
    /// Per-model admission quota: at most this many requests from this
    /// model in flight at once, the overflow answered
    /// [`crate::Status::Busy`]. `None` falls back to
    /// [`crate::ServeConfig::model_quota`] (itself unlimited by default).
    pub quota: Option<usize>,
    /// Provenance digest of the checkpoint the engine came from (0 when
    /// unknown); reported by the admin `/models` route and in
    /// [`SwapReport`]s.
    pub checkpoint_digest: u64,
}

impl ModelSpec {
    /// A spec serving `network` under `name` with no per-model quota
    /// override and no provenance digest.
    pub fn new(
        name: impl Into<String>,
        network: Arc<SpikingNetwork>,
        input_dims: Vec<usize>,
    ) -> ModelSpec {
        ModelSpec {
            name: name.into(),
            network,
            input_dims,
            quota: None,
            checkpoint_digest: 0,
        }
    }

    /// Loads a `.qsnca` deployment artifact into a spec named `name`,
    /// carrying the artifact's input dims and provenance digest.
    ///
    /// # Errors
    ///
    /// Artifact I/O errors pass through with their original
    /// [`std::io::ErrorKind`]; validation failures surface as
    /// [`std::io::ErrorKind::InvalidData`] with the typed error's message.
    pub fn from_artifact(
        name: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> std::io::Result<ModelSpec> {
        let loaded = qsnc_memristor::load_artifact(path).map_err(artifact_to_io)?;
        Ok(ModelSpec {
            name: name.into(),
            network: Arc::new(loaded.network),
            input_dims: loaded.input_dims,
            quota: None,
            checkpoint_digest: loaded.provenance.checkpoint_digest,
        })
    }

    /// Sets the per-model admission quota (clamped to at least 1).
    #[must_use]
    pub fn with_quota(mut self, quota: usize) -> ModelSpec {
        self.quota = Some(quota.max(1));
        self
    }
}

pub(crate) fn artifact_to_io(e: ArtifactError) -> std::io::Error {
    match e {
        ArtifactError::Io(io) => io,
        other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
    }
}

/// One immutable engine snapshot. Hot swap builds a new `ModelVersion`
/// and replaces the entry's pointer; requests keep `Arc`s to the version
/// they were admitted against, so a swap never changes which engine an
/// admitted request runs on.
pub(crate) struct ModelVersion {
    /// The compiled engine.
    pub(crate) network: Arc<SpikingNetwork>,
    /// Per-example input dims.
    pub(crate) input_dims: Vec<usize>,
    /// `f32`s per example (product of `input_dims`).
    pub(crate) input_len: usize,
    /// 1-based version counter, bumped by every swap.
    pub(crate) version: u32,
    /// Provenance digest of this version's checkpoint (0 when unknown).
    pub(crate) checkpoint_digest: u64,
    /// Requests admitted against this version and not yet answered — what
    /// the swap drain waits on.
    inflight: AtomicUsize,
}

/// One registered model: a stable name + id, the swappable current
/// version, and the quota/telemetry state shared by all its versions.
pub(crate) struct ModelEntry {
    /// Registry name (unique per server).
    pub(crate) name: String,
    /// Positional id (index in the registry; 0 = default model).
    pub(crate) id: u32,
    /// Admission quota; `None` = unlimited.
    pub(crate) quota: Option<usize>,
    /// The engine currently serving new admissions.
    current: RwLock<Arc<ModelVersion>>,
    /// Requests in flight across all versions (the quota gauge).
    inflight: AtomicUsize,
    /// Completed swaps.
    swaps: AtomicU64,
    /// Precomputed telemetry names, so the hot path never formats.
    pub(crate) tele_requests: String,
    pub(crate) tele_rejected: String,
    pub(crate) tele_swaps: String,
    pub(crate) tele_infer_us: String,
}

impl ModelEntry {
    fn current(&self) -> Arc<ModelVersion> {
        Arc::clone(&read_lock(&self.current))
    }
}

/// Reads an `RwLock` even if a writer panicked (the data is a bare `Arc`
/// pointer, never left half-written).
fn read_lock(lock: &RwLock<Arc<ModelVersion>>) -> std::sync::RwLockReadGuard<'_, Arc<ModelVersion>> {
    lock.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An admitted request's hold on its model entry (quota accounting) and
/// engine version (swap-drain accounting). Dropping the lease — after the
/// worker has run inference and routed the reply, or when admission is
/// reverted — releases both.
pub(crate) struct Lease {
    entry: Arc<ModelEntry>,
    version: Arc<ModelVersion>,
}

impl Lease {
    /// Tries to admit one request against `entry`/`version`; `None` means
    /// the per-model quota is exhausted (the quota tier's Busy).
    pub(crate) fn acquire(entry: &Arc<ModelEntry>, version: &Arc<ModelVersion>) -> Option<Lease> {
        let prev = entry.inflight.fetch_add(1, Ordering::AcqRel);
        if entry.quota.is_some_and(|quota| prev >= quota) {
            entry.inflight.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        version.inflight.fetch_add(1, Ordering::AcqRel);
        Some(Lease { entry: Arc::clone(entry), version: Arc::clone(version) })
    }

    pub(crate) fn entry(&self) -> &Arc<ModelEntry> {
        &self.entry
    }

    pub(crate) fn version(&self) -> &Arc<ModelVersion> {
        &self.version
    }

    /// Whether two leases pin the same engine snapshot — the batcher's
    /// homogeneity key (a batch runs on exactly one engine version).
    pub(crate) fn same_version(&self, other: &Lease) -> bool {
        Arc::ptr_eq(&self.version, &other.version)
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        self.version.inflight.fetch_sub(1, Ordering::AcqRel);
        self.entry.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A completed hot swap, as returned by [`crate::Server::swap_artifact`]
/// and rendered by the admin `POST /models/swap` route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapReport {
    /// The swapped model's registry name.
    pub model: String,
    /// Its (unchanged) model id.
    pub model_id: u32,
    /// Version counter before the swap.
    pub old_version: u32,
    /// Version counter after (always `old_version + 1`).
    pub new_version: u32,
    /// Provenance digest of the replaced engine's checkpoint.
    pub old_digest: u64,
    /// Provenance digest of the new artifact's checkpoint.
    pub new_digest: u64,
    /// Whether every request admitted against the old version was answered
    /// before the swap returned. `false` only when the drain timed out
    /// ([`crate::ServeConfig::swap_drain_ms`]) — the old engine is then
    /// released once its last lease drops, just not synchronously.
    pub drained: bool,
    /// Microseconds the drain waited.
    pub drain_wait_us: u64,
}

/// Why a hot swap was refused.
#[derive(Debug)]
pub enum SwapError {
    /// No model is registered under the requested name.
    UnknownModel(String),
    /// The replacement artifact failed to load or validate.
    Artifact(ArtifactError),
    /// The replacement artifact's input dims differ from the entry's — a
    /// swap must never change the wire contract under a live connection.
    DimsMismatch {
        /// The model whose swap was refused.
        model: String,
        /// The entry's (immutable) input dims.
        expected: Vec<usize>,
        /// The artifact's input dims.
        got: Vec<usize>,
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::UnknownModel(name) => {
                write!(f, "no model registered under name '{name}'")
            }
            SwapError::Artifact(e) => write!(f, "artifact rejected: {e}"),
            SwapError::DimsMismatch { model, expected, got } => write!(
                f,
                "artifact input dims {got:?} do not match model '{model}' ({expected:?}): \
                 a swap cannot change the wire contract"
            ),
        }
    }
}

impl std::error::Error for SwapError {}

impl SwapError {
    /// Maps onto `io::Error` for [`crate::Server::swap_artifact`]:
    /// `UnknownModel` → `NotFound`, `DimsMismatch` → `InvalidInput`,
    /// artifact I/O passes through, artifact validation → `InvalidData`.
    pub fn into_io(self) -> std::io::Error {
        match self {
            SwapError::UnknownModel(_) => {
                std::io::Error::new(std::io::ErrorKind::NotFound, self.to_string())
            }
            SwapError::DimsMismatch { .. } => {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, self.to_string())
            }
            SwapError::Artifact(e) => artifact_to_io(e),
        }
    }
}

/// A point-in-time view of one registered model, as returned by
/// [`crate::Server::models`] and rendered by the admin `/models` route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStatus {
    /// Positional model id (0 = default).
    pub id: u32,
    /// Registry name.
    pub name: String,
    /// Current engine version (starts at 1, bumped by every swap).
    pub version: u32,
    /// Per-example input dims.
    pub input_dims: Vec<usize>,
    /// Effective admission quota (`None` = unlimited).
    pub quota: Option<usize>,
    /// Requests currently in flight against this model.
    pub inflight: usize,
    /// Completed swaps since spawn.
    pub swaps: u64,
    /// Provenance digest of the current engine's checkpoint.
    pub checkpoint_digest: u64,
}

/// The server's model table. See the module docs for the lifecycle.
pub(crate) struct ModelRegistry {
    entries: Vec<Arc<ModelEntry>>,
    drain_timeout: Duration,
}

impl ModelRegistry {
    /// Builds a registry from `specs` (first spec = default model).
    /// `default_quota` applies to every spec without its own quota;
    /// `drain_timeout` bounds how long a swap waits for the old version.
    ///
    /// Returns a message (for `io::ErrorKind::InvalidInput`) on an empty
    /// spec list, a duplicate or malformed name, or empty input dims.
    pub(crate) fn new(
        specs: Vec<ModelSpec>,
        default_quota: Option<usize>,
        drain_timeout: Duration,
    ) -> Result<ModelRegistry, String> {
        if specs.is_empty() {
            return Err("at least one model spec is required".to_string());
        }
        let mut entries: Vec<Arc<ModelEntry>> = Vec::with_capacity(specs.len());
        for (id, spec) in specs.into_iter().enumerate() {
            if spec.name.is_empty()
                || !spec
                    .name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
            {
                return Err(format!(
                    "model name '{}' is invalid: use letters, digits, '-', '_' or '.'",
                    spec.name
                ));
            }
            if entries.iter().any(|e| e.name == spec.name) {
                return Err(format!("duplicate model name '{}' in the registry", spec.name));
            }
            let input_len: usize = spec.input_dims.iter().product();
            assert!(
                !spec.input_dims.is_empty() && input_len > 0,
                "input_dims must describe a non-empty example"
            );
            let quota = spec.quota.or(default_quota).map(|q| q.max(1));
            let version = Arc::new(ModelVersion {
                network: spec.network,
                input_dims: spec.input_dims,
                input_len,
                version: 1,
                checkpoint_digest: spec.checkpoint_digest,
                inflight: AtomicUsize::new(0),
            });
            entries.push(Arc::new(ModelEntry {
                tele_requests: format!("serve.model.{}.requests", spec.name),
                tele_rejected: format!("serve.model.{}.rejected", spec.name),
                tele_swaps: format!("serve.model.{}.swaps", spec.name),
                tele_infer_us: format!("serve.model.{}.infer.us", spec.name),
                name: spec.name,
                id: id as u32,
                quota,
                current: RwLock::new(version),
                inflight: AtomicUsize::new(0),
                swaps: AtomicU64::new(0),
            }));
        }
        Ok(ModelRegistry { entries, drain_timeout })
    }

    /// Resolves a frame's model id to its entry and the engine snapshot
    /// that will serve the request. `None` (a v1/v2 frame) and `Some(0)`
    /// both resolve to the default model; an out-of-range id resolves to
    /// nothing (the caller answers [`crate::Status::UnknownModel`]).
    pub(crate) fn resolve(
        &self,
        model: Option<u32>,
    ) -> Option<(Arc<ModelEntry>, Arc<ModelVersion>)> {
        let entry = self.entries.get(model.unwrap_or(0) as usize)?;
        Some((Arc::clone(entry), entry.current()))
    }

    /// Point-in-time status of every registered model, in id order.
    pub(crate) fn statuses(&self) -> Vec<ModelStatus> {
        self.entries
            .iter()
            .map(|e| {
                let v = e.current();
                ModelStatus {
                    id: e.id,
                    name: e.name.clone(),
                    version: v.version,
                    input_dims: v.input_dims.clone(),
                    quota: e.quota,
                    inflight: e.inflight.load(Ordering::Acquire),
                    swaps: e.swaps.load(Ordering::Acquire),
                    checkpoint_digest: v.checkpoint_digest,
                }
            })
            .collect()
    }

    /// Hot-swaps the model named `model` to the engine in the `.qsnca`
    /// artifact at `path`: load + validate, check the input dims still
    /// match, atomically replace the engine pointer, then wait (bounded by
    /// the drain timeout) until every request admitted against the old
    /// version has been answered before releasing it.
    pub(crate) fn swap_from_artifact(
        &self,
        model: &str,
        path: impl AsRef<Path>,
    ) -> Result<SwapReport, SwapError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.name == model)
            .ok_or_else(|| SwapError::UnknownModel(model.to_string()))?;
        let loaded = qsnc_memristor::load_artifact(path).map_err(SwapError::Artifact)?;
        let old = entry.current();
        if loaded.input_dims != old.input_dims {
            return Err(SwapError::DimsMismatch {
                model: entry.name.clone(),
                expected: old.input_dims.clone(),
                got: loaded.input_dims,
            });
        }
        let input_len = loaded.input_dims.iter().product();
        let next = Arc::new(ModelVersion {
            network: Arc::new(loaded.network),
            input_dims: loaded.input_dims,
            input_len,
            version: old.version + 1,
            checkpoint_digest: loaded.provenance.checkpoint_digest,
            inflight: AtomicUsize::new(0),
        });
        {
            let mut current =
                entry.current.write().unwrap_or_else(std::sync::PoisonError::into_inner);
            *current = Arc::clone(&next);
        }
        entry.swaps.fetch_add(1, Ordering::AcqRel);
        qsnc_telemetry::counter_add(&entry.tele_swaps, 1);
        // Drain: new admissions can no longer reach `old` (the registry
        // hands out `next` now), but requests admitted before the pointer
        // swap still hold leases, and a front end may hold a
        // resolved-but-unadmitted snapshot for a frame it is mid-read on.
        // Leases keep `inflight` non-zero; bare snapshots keep the Arc's
        // strong count above ours. Wait for both to clear.
        let t0 = Instant::now();
        let mut drained = true;
        while old.inflight.load(Ordering::Acquire) > 0 || Arc::strong_count(&old) > 1 {
            if t0.elapsed() > self.drain_timeout {
                drained = false;
                break;
            }
            std::thread::sleep(DRAIN_POLL);
        }
        Ok(SwapReport {
            model: entry.name.clone(),
            model_id: entry.id,
            old_version: old.version,
            new_version: next.version,
            old_digest: old.checkpoint_digest,
            new_digest: next.checkpoint_digest,
            drained,
            drain_wait_us: t0.elapsed().as_micros() as u64,
        })
    }
}
