//! Dynamic micro-batching over the bounded request queue.
//!
//! The batcher owns the receiving end of the server's bounded request
//! queue. A batch window opens when the first request arrives and flushes
//! when either `max_batch` requests have been collected **or**
//! `max_delay` has elapsed since the window opened — whichever comes
//! first. Under load the queue always has requests waiting, so batches
//! fill to `max_batch` with no added latency; at low rates a lone request
//! waits at most `max_delay` before running alone. This is the standard
//! throughput/latency trade dynamic batching makes, tuned by the
//! `QSNC_SERVE_MAX_BATCH` / `QSNC_SERVE_MAX_DELAY_US` knobs.

use crate::event_loop::LoopShared;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a finished inference result goes. The threaded front end blocks a
/// connection thread on a per-request channel; the event-loop front end
/// routes the reply back to the loop that owns the connection via its
/// completion queue + wakeup pipe.
pub(crate) enum ReplyRoute {
    /// Per-request rendezvous with a blocking connection thread.
    Thread(Sender<WorkerReply>),
    /// Hand-off to an event loop's completion queue (wakes the loop).
    Loop {
        /// The owning loop's shared half.
        shared: Arc<LoopShared>,
        /// Connection slot index in that loop.
        conn: u32,
        /// Slot generation — a stale completion (connection since closed
        /// and slot reused) is dropped instead of misdelivered.
        generation: u32,
        /// The client's request tag (`None` for a v1 frame).
        tag: Option<u32>,
    },
}

/// One admitted inference request travelling from a front end to a worker.
pub(crate) struct Request {
    /// Decoded input example.
    pub(crate) input: Vec<f32>,
    /// The model entry + engine version this request was admitted against.
    /// Resolved by the front end **at admission**, so a hot swap mid-queue
    /// never changes which engine serves it. `None` only in batcher unit
    /// tests, which exercise windowing without a compiled network.
    pub(crate) lease: Option<crate::registry::Lease>,
    /// Where the worker sends the result.
    pub(crate) route: ReplyRoute,
    /// When the request was admitted to the queue (serve.latency_us start).
    pub(crate) enqueued: Instant,
    /// Microseconds the front end spent decoding the frame (for the slow
    /// trace; zero when telemetry is off).
    pub(crate) decode_us: u64,
    /// Process-wide request id (for the slow trace; zero when telemetry is
    /// off).
    pub(crate) id: u64,
}

/// A finished inference result, carrying the worker-side stage timings the
/// connection thread needs to assemble a complete slow-request trace.
pub(crate) struct WorkerReply {
    /// Index of the largest logit.
    pub(crate) argmax: u32,
    /// The class logits, bit-identical to `infer_reference`.
    pub(crate) logits: Vec<f32>,
    /// Microseconds the request spent queued + batching before a worker
    /// picked its batch up (zero when telemetry is off).
    pub(crate) queue_us: u64,
    /// Microseconds the batched `infer_batch_into` call took; shared by
    /// every request in the batch (zero when telemetry is off).
    pub(crate) infer_us: u64,
    /// How many requests shared the batch this one rode in.
    pub(crate) batch: u32,
}

/// Histogram bucket edges for `serve.batch.size`.
pub(crate) const BATCH_SIZE_EDGES: &[f64] = &[2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Histogram bucket edges for `serve.queue.depth`.
pub(crate) const QUEUE_DEPTH_EDGES: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// The consuming half of the request queue plus the batching policy.
pub(crate) struct MicroBatcher {
    rx: Receiver<Request>,
    max_batch: usize,
    max_delay: Duration,
    /// Shared queue-occupancy gauge, decremented as requests are popped.
    depth: Arc<AtomicUsize>,
    /// A request popped from the queue but held back because it targets a
    /// different engine version than the batch being assembled — it opens
    /// the next batch instead. Already depth-decremented.
    carry: Option<Request>,
}

impl MicroBatcher {
    pub(crate) fn new(
        rx: Receiver<Request>,
        max_batch: usize,
        max_delay: Duration,
        depth: Arc<AtomicUsize>,
    ) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        MicroBatcher { rx, max_batch, max_delay, depth, carry: None }
    }

    fn pop(&self, req: Request, batch: &mut Vec<Request>) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
        batch.push(req);
    }

    /// Whether `req` can run in the same `infer_batch_into` call as the
    /// batch opener: a batch is **version-homogeneous** — one engine
    /// snapshot per batch — so a request for a different model (or a
    /// just-swapped version of the same model) ends the window and opens
    /// the next batch.
    fn joins(batch: &[Request], req: &Request) -> bool {
        match (batch.first().and_then(|r| r.lease.as_ref()), req.lease.as_ref()) {
            (Some(a), Some(b)) => a.same_version(b),
            // Lease-less requests only exist in unit tests; batch freely.
            _ => true,
        }
    }

    /// Blocks for the next batch. Returns `None` once every producer has
    /// disconnected and the queue is drained — buffered requests are still
    /// delivered first, which is what makes shutdown drain rather than
    /// drop.
    pub(crate) fn next_batch(&mut self) -> Option<Vec<Request>> {
        let mut batch = Vec::with_capacity(self.max_batch);
        match self.carry.take() {
            // A carried request was depth-decremented when first popped.
            Some(req) => batch.push(req),
            None => match self.rx.recv() {
                Ok(req) => self.pop(req, &mut batch),
                Err(_) => return None,
            },
        }
        let deadline = Instant::now() + self.max_delay;
        while batch.len() < self.max_batch {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match self.rx.recv_timeout(remaining) {
                Ok(req) if Self::joins(&batch, &req) => self.pop(req, &mut batch),
                Ok(req) => {
                    // Different engine version: flush now, start the next
                    // batch from this request.
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    self.carry = Some(req);
                    break;
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        if qsnc_telemetry::enabled() {
            qsnc_telemetry::observe("serve.batch.size", batch.len() as f64, BATCH_SIZE_EDGES);
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn request(v: f32) -> (Request, mpsc::Receiver<WorkerReply>) {
        let (reply_tx, reply_rx) = mpsc::channel();
        (
            Request {
                input: vec![v],
                lease: None,
                route: ReplyRoute::Thread(reply_tx),
                enqueued: Instant::now(),
                decode_us: 0,
                id: 0,
            },
            reply_rx,
        )
    }

    #[test]
    fn flushes_at_max_batch_before_deadline() {
        let (tx, rx) = mpsc::sync_channel(16);
        let depth = Arc::new(AtomicUsize::new(0));
        // A generous delay: the flush below must come from the size bound.
        let mut batcher = MicroBatcher::new(rx, 3, Duration::from_secs(30), Arc::clone(&depth));
        let mut replies = Vec::new();
        for i in 0..5 {
            let (req, rrx) = request(i as f32);
            depth.fetch_add(1, Ordering::Relaxed);
            tx.send(req).unwrap();
            replies.push(rrx);
        }
        let start = Instant::now();
        let batch = batcher.next_batch().expect("batch");
        assert_eq!(batch.len(), 3);
        assert!(start.elapsed() < Duration::from_secs(5), "flush must not wait the delay out");
        assert_eq!(depth.load(Ordering::Relaxed), 2);
        assert_eq!(batch[0].input, vec![0.0]);
        assert_eq!(batch[2].input, vec![2.0]);
    }

    #[test]
    fn flushes_partial_batch_at_deadline() {
        let (tx, rx) = mpsc::sync_channel(16);
        let depth = Arc::new(AtomicUsize::new(0));
        let mut batcher = MicroBatcher::new(rx, 8, Duration::from_millis(20), Arc::clone(&depth));
        let (req, _rrx) = request(7.0);
        depth.fetch_add(1, Ordering::Relaxed);
        tx.send(req).unwrap();
        let batch = batcher.next_batch().expect("batch");
        assert_eq!(batch.len(), 1, "deadline must flush a partial batch");
        // Keep the sender alive to this point so disconnect wasn't the cause.
        drop(tx);
    }

    #[test]
    fn drains_queue_after_disconnect_then_stops() {
        let (tx, rx) = mpsc::sync_channel(16);
        let depth = Arc::new(AtomicUsize::new(0));
        let mut batcher = MicroBatcher::new(rx, 2, Duration::from_millis(5), Arc::clone(&depth));
        let mut replies = Vec::new();
        for i in 0..3 {
            let (req, rrx) = request(i as f32);
            depth.fetch_add(1, Ordering::Relaxed);
            tx.send(req).unwrap();
            replies.push(rrx);
        }
        drop(tx);
        assert_eq!(batcher.next_batch().expect("first").len(), 2);
        assert_eq!(batcher.next_batch().expect("drained remainder").len(), 1);
        assert!(batcher.next_batch().is_none(), "drained queue must end the loop");
        assert_eq!(depth.load(Ordering::Relaxed), 0);
    }
}
