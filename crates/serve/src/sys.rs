//! Raw `epoll` syscalls — the only kernel interface `std::net` does not
//! expose that the event-loop front end needs.
//!
//! The crate is zero-dependency by design, so instead of pulling in `libc`
//! or `mio` these three syscalls (`epoll_create1`, `epoll_ctl`,
//! `epoll_pwait`) are issued directly with inline assembly on x86-64 and
//! aarch64 Linux. Everything else stays in `std`: sockets are ordinary
//! `TcpStream`/`TcpListener`/`UnixStream` values put into non-blocking
//! mode, reads and writes go through `std::io`, and the epoll instance
//! itself is wrapped in an [`OwnedFd`] so the close-on-drop path is std's,
//! not ours.
//!
//! On any other platform the module compiles to nothing and
//! [`crate::FrontEnd::EventLoop`] falls back to the threaded front end
//! (see `FrontEnd::resolve`).

#![allow(clippy::upper_case_acronyms)]

use std::io;
use std::os::fd::{FromRawFd, OwnedFd, RawFd};

/// Readiness: the fd has bytes to read.
pub(crate) const EPOLLIN: u32 = 0x001;
/// Readiness: the fd can accept writes.
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never needs registering).
pub(crate) const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, never needs registering).
pub(crate) const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half — lets a half-close surface as an event
/// even while the local read buffer still holds unparsed frames.
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

/// `epoll_ctl` op: register a new fd.
pub(crate) const EPOLL_CTL_ADD: i32 = 1;
/// `epoll_ctl` op: deregister an fd.
pub(crate) const EPOLL_CTL_DEL: i32 = 2;
/// `epoll_ctl` op: change an fd's interest set.
pub(crate) const EPOLL_CTL_MOD: i32 = 3;

/// `EPOLL_CLOEXEC` — same bit as `O_CLOEXEC`.
const EPOLL_CLOEXEC: usize = 0o2000000;

/// One readiness event. The kernel ABI packs this struct on x86-64 (the
/// `data` field sits at offset 4); other architectures use natural
/// alignment — getting this wrong corrupts every second event, so the
/// layout is asserted in the tests below.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-chosen cookie, returned verbatim with each event.
    pub data: u64,
}

impl EpollEvent {
    pub(crate) const fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }
}

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const EPOLL_CREATE1: usize = 291;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
}

/// Issues a six-argument Linux syscall and returns the raw kernel result
/// (`-errno` on failure, as the kernel ABI defines).
///
/// # Safety
///
/// The caller must uphold the contract of the specific syscall: every
/// pointer argument must be valid for the kernel's access pattern for the
/// duration of the call.
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    // SAFETY: `syscall` clobbers only rcx/r11 (declared) and the return
    // register; argument registers follow the x86-64 Linux ABI.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// See the x86-64 variant; aarch64 passes arguments in x0–x5 with the
/// syscall number in x8.
///
/// # Safety
///
/// Same contract as the x86-64 variant.
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    // SAFETY: `svc 0` follows the aarch64 Linux syscall ABI; no additional
    // registers are clobbered.
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a as isize => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
    }
    ret
}

/// Converts a raw kernel return value into `io::Result<usize>`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// Creates a new epoll instance (close-on-exec). The returned [`OwnedFd`]
/// closes it on drop through std.
pub(crate) fn epoll_create() -> io::Result<OwnedFd> {
    // SAFETY: epoll_create1 reads no memory.
    let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
    // SAFETY: the fd was just returned by the kernel and is owned by no
    // other wrapper.
    Ok(unsafe { OwnedFd::from_raw_fd(fd as RawFd) })
}

/// Registers, modifies, or removes `fd` in the epoll interest list.
/// `events`/`data` are ignored by the kernel for `EPOLL_CTL_DEL`.
pub(crate) fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let ev = EpollEvent { events, data };
    // SAFETY: `ev` lives across the call; the kernel copies it before
    // returning. A null pointer is valid (and conventional) for DEL.
    let ptr = if op == EPOLL_CTL_DEL { 0 } else { (&raw const ev) as usize };
    check(unsafe { syscall6(nr::EPOLL_CTL, epfd as usize, op as usize, fd as usize, ptr, 0, 0) })?;
    Ok(())
}

/// Waits for readiness events, filling `events` and returning how many
/// arrived. `timeout_ms` of `-1` blocks indefinitely. `EINTR` retries
/// internally so callers never see a spurious empty wake.
pub(crate) fn epoll_wait(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    loop {
        // SAFETY: `events` is a valid writable buffer of the declared
        // length for the duration of the call; the sigmask is null (no
        // signal-mask swap), for which sigsetsize is ignored.
        let ret = unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                epfd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0,
                0,
            )
        };
        match check(ret) {
            Ok(n) => return Ok(n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_event_matches_kernel_abi() {
        // x86-64 packs the struct (data at offset 4, size 12); everywhere
        // else natural alignment applies (data at offset 8, size 16).
        if cfg!(target_arch = "x86_64") {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
            assert_eq!(std::mem::align_of::<EpollEvent>(), 1);
        } else {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 16);
        }
    }

    #[test]
    fn create_register_wait_round_trip() {
        let ep = epoll_create().expect("epoll_create1");
        let (a, b) = std::os::unix::net::UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).unwrap();
        epoll_ctl(ep.as_raw_fd(), EPOLL_CTL_ADD, a.as_raw_fd(), EPOLLIN, 42).expect("ctl add");

        // Nothing readable yet: a zero-timeout wait returns no events.
        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(epoll_wait(ep.as_raw_fd(), &mut events, 0).expect("wait"), 0);

        // One byte in: exactly one event, carrying our cookie.
        use std::io::Write as _;
        (&b).write_all(&[1]).unwrap();
        let n = epoll_wait(ep.as_raw_fd(), &mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let ev = events[0];
        assert_eq!({ ev.data }, 42);
        assert_ne!({ ev.events } & EPOLLIN, 0);

        // MOD to write-interest only: the pending byte no longer wakes us.
        epoll_ctl(ep.as_raw_fd(), EPOLL_CTL_MOD, a.as_raw_fd(), EPOLLOUT, 43).expect("ctl mod");
        let n = epoll_wait(ep.as_raw_fd(), &mut events, 100).expect("wait");
        assert_eq!(n, 1, "an idle writable socket reports EPOLLOUT");
        assert_eq!({ events[0].data }, 43);
        assert_ne!({ events[0].events } & EPOLLOUT, 0);

        // DEL: no more events at all.
        epoll_ctl(ep.as_raw_fd(), EPOLL_CTL_DEL, a.as_raw_fd(), 0, 0).expect("ctl del");
        assert_eq!(epoll_wait(ep.as_raw_fd(), &mut events, 50).expect("wait"), 0);
    }

    #[test]
    fn ctl_on_bad_fd_reports_error() {
        let ep = epoll_create().unwrap();
        let err = epoll_ctl(ep.as_raw_fd(), EPOLL_CTL_ADD, -1, EPOLLIN, 0).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(9), "EBADF expected, got {err}");
    }
}
