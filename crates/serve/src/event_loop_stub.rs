//! Stand-in for [`event_loop`](crate::event_loop) on platforms without the
//! raw-syscall epoll layer (`crate::sys`). [`crate::FrontEnd::resolve`]
//! never selects the event-loop front end here, so none of this runs — it
//! only keeps the crate compiling with one code path for the batcher and
//! workers on every platform.

#![allow(dead_code)]

use crate::batcher::{Request, WorkerReply};
use crate::registry::ModelRegistry;
use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// See the real `event_loop::LoopConfig`.
#[derive(Clone)]
pub(crate) struct LoopConfig {
    pub(crate) registry: Arc<ModelRegistry>,
    pub(crate) max_inflight: usize,
    pub(crate) max_conns: usize,
    pub(crate) slow_us: Option<u64>,
}

/// See the real `event_loop::LoopShared`. Unreachable on this platform.
pub(crate) struct LoopShared {
    never: std::convert::Infallible,
}

impl LoopShared {
    pub(crate) fn wake(&self) {
        match self.never {}
    }

    pub(crate) fn complete(&self, _completion: Completion) {
        match self.never {}
    }
}

/// See the real `event_loop::Completion`.
pub(crate) struct Completion {
    pub(crate) conn: u32,
    pub(crate) generation: u32,
    pub(crate) tag: Option<u32>,
    pub(crate) reply: WorkerReply,
    pub(crate) enqueued: Instant,
    pub(crate) decode_us: u64,
    pub(crate) id: u64,
}

/// See the real `event_loop::SpawnedLoops`.
pub(crate) type SpawnedLoops = (Vec<JoinHandle<()>>, Vec<Arc<LoopShared>>);

/// Always fails: this platform has no epoll front end.
pub(crate) fn spawn(
    _listener: TcpListener,
    _loops: usize,
    _cfg: LoopConfig,
    _running: Arc<AtomicBool>,
    _req_tx: SyncSender<Request>,
    _depth: Arc<AtomicUsize>,
    _active: Arc<AtomicUsize>,
) -> io::Result<SpawnedLoops> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "the epoll event-loop front end is only available on Linux x86-64/aarch64",
    ))
}
