//! # qsnc-serve
//!
//! A batched TCP inference server over [`qsnc_memristor::SpikingNetwork`] —
//! the layer that turns the integer fast-path engine into a system that
//! accepts traffic. Zero dependencies beyond `std::net` + the workspace
//! (the epoll front end issues its three syscalls with inline assembly
//! rather than pulling in `libc`).
//!
//! Two front ends share one pipeline (see [`FrontEnd`]):
//!
//! - **Event loop** (default on Linux x86-64/aarch64) — a small number of
//!   epoll readiness loops own every client socket non-blocking. Protocol
//!   v2 frames carry a request *tag*, so one connection can hold many
//!   requests in flight and take replies out of order
//!   ([`protocol::write_request_tagged`]); v1 untagged lockstep frames
//!   keep working unchanged on the same port. Per-connection backpressure:
//!   an in-flight budget ([`ServeConfig::max_inflight_per_conn`]) answers
//!   [`Status::Busy`] when exhausted, and a slow reader's output buffer
//!   passing its high-water mark pauses reads from that client until it
//!   drains.
//! - **Threaded** — the PR 4 design, one blocking thread per connection,
//!   kept as a baseline and portability fallback, now bounded by
//!   [`ServeConfig::max_conns`] (a thread-per-connection front end cannot
//!   honestly accept unbounded clients).
//!
//! One request's journey (either front end):
//!
//! 1. The front end decodes a length-prefixed binary frame ([`protocol`])
//!    and admits the request to a **bounded queue**. A full queue answers
//!    [`Status::Busy`] immediately — explicit backpressure instead of
//!    unbounded buffering.
//! 2. The **micro-batcher** collects admitted requests into a batch,
//!    flushing when `max_batch` requests arrived or `max_delay_us` elapsed
//!    since the first — whichever comes first.
//! 3. A **worker** packs the batch into a `[B, …]` tensor and drives
//!    [`SpikingNetwork::infer_batch_into`]: every reply is bit-identical
//!    to `SpikingNetwork::infer_reference` — at any `QSNC_SIMD` level the
//!    integer kernels dispatch to (`qsnc_tensor::simd`) — and steady-state
//!    serving at a warm batch size performs zero fresh scratch allocations
//!    (workers are persistent threads, so the `qsnc_tensor::scratch` arena
//!    stays warm).
//! 4. The result returns to the front end — a rendezvous channel to the
//!    blocking connection thread, or the owning event loop's completion
//!    queue plus a wakeup byte — which encodes the logits + argmax frame,
//!    echoing the request's tag.
//!
//! [`Server::shutdown`] drains: accepting stops, no new frames are
//! admitted, every request already admitted (including tagged in-flight
//! pipelines) is batched, inferred, answered, and flushed, and only then
//! do the batcher and workers exit (the admin listener, when enabled,
//! goes down last so `/metrics` stays scrapeable through the drain).
//!
//! ## Multi-model serving and hot swap
//!
//! [`Server::spawn_models`] registers several compiled engines behind the
//! same port (one [`ModelSpec`] each). Protocol v3 frames carry a model
//! id ([`protocol::write_request_routed`]); v1/v2 frames — and v3 frames
//! naming model 0 — route to the first registered model, so every
//! existing client keeps working unchanged. Each model gets its own
//! admission-quota tier in the backpressure ladder
//! ([`ServeConfig::model_quota`] / [`ModelSpec::quota`]), and
//! [`Server::swap_artifact`] (or the admin `POST /models/swap` route)
//! hot-swaps one model's engine from a fresh `.qsnca` artifact: atomic
//! engine-pointer swap, then a bounded drain of the requests admitted
//! against the old version before it is released. See [`mod@registry`]
//! for the admission/lease/drain mechanics.
//!
//! Telemetry (enable with `QSNC_TELEMETRY`) records under the frozen
//! `serve.*` taxonomy: `serve.queue.depth` and `serve.batch.size`
//! fixed-bucket histograms; `serve.latency_us` and the per-stage
//! `serve.stage.{decode,queue,infer,encode}.us` quantile sketches; the
//! `serve.rejected` counter; plus `serve.requests` / `serve.batches` /
//! `serve.connections` / `serve.bad_requests` totals. The event-loop
//! front end adds `serve.conn.active` / `serve.conn.inflight` histograms,
//! `serve.conn.refused` / `serve.conn.rejected` counters, and
//! `serve.loop.{wakeups,events,completions}` counters with the
//! `serve.loop.dispatch.us` sketch. Multi-model serving adds the
//! per-model `serve.model.{name}.requests` / `.rejected` / `.swaps`
//! counters, the `serve.model.{name}.infer.us` sketch, and the
//! `serve.model.unknown` counter. Requests slower than
//! `QSNC_SERVE_SLOW_US` leave a full stage trace in the telemetry flight
//! recorder.
//!
//! Setting `QSNC_SERVE_ADMIN_ADDR` (or [`ServeConfig::admin_addr`])
//! starts a second listener speaking just enough HTTP/1.1 for an
//! observability plane — `GET /metrics` (Prometheus text exposition),
//! `GET /snapshot` (the telemetry JSON document, with `?cursor=NAME`
//! windowed deltas), `GET /slow` (flight-recorder dump) and
//! `GET /healthz`. See [`mod@admin`].

#![warn(missing_docs)]

pub mod admin;
mod batcher;
pub mod protocol;
pub mod registry;

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys;

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
#[path = "event_loop.rs"]
mod event_loop;
#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
#[path = "event_loop_stub.rs"]
mod event_loop;

pub use protocol::{Reply, Status};
pub use registry::{ModelSpec, ModelStatus, SwapReport};

use batcher::{MicroBatcher, ReplyRoute, Request, WorkerReply, QUEUE_DEPTH_EDGES};
use event_loop::{Completion, LoopConfig, LoopShared};
use qsnc_memristor::SpikingNetwork;
use qsnc_tensor::Tensor;
use registry::{Lease, ModelEntry, ModelRegistry, ModelVersion};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Whether this build has the raw-syscall epoll layer ([`mod@sys`] exists
/// only on Linux x86-64/aarch64).
const EPOLL_SUPPORTED: bool =
    cfg!(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")));

/// Which connection-handling architecture the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontEnd {
    /// Epoll readiness loops with non-blocking sockets and connection
    /// multiplexing (protocol v2 tags). The default where supported.
    EventLoop,
    /// One blocking thread per connection (the original design): simple,
    /// portable, capped at [`ServeConfig::max_conns`] concurrent clients.
    Threaded,
}

impl FrontEnd {
    /// The front end that will actually run: [`FrontEnd::EventLoop`] falls
    /// back to [`FrontEnd::Threaded`] on platforms without the epoll layer.
    pub fn resolve(self) -> FrontEnd {
        match self {
            FrontEnd::EventLoop if !EPOLL_SUPPORTED => FrontEnd::Threaded,
            other => other,
        }
    }
}

/// Serving parameters. `..Default::default()` gives the production knobs;
/// `from_env` layers the `QSNC_SERVE_*` environment overrides on top.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest batch a worker runs at once (`QSNC_SERVE_MAX_BATCH`).
    pub max_batch: usize,
    /// Longest a lone request waits for batch-mates, in microseconds
    /// (`QSNC_SERVE_MAX_DELAY_US`).
    pub max_delay_us: u64,
    /// Bounded request-queue capacity; a full queue replies
    /// [`Status::Busy`].
    pub queue_cap: usize,
    /// Inference worker threads. One is right for single-core deployments;
    /// each worker keeps its own warm scratch arena.
    pub workers: usize,
    /// Connection-handling architecture (`QSNC_SERVE_FRONT_END`:
    /// `event-loop` or `threaded`). Resolved through
    /// [`FrontEnd::resolve`], so requesting the event loop on an
    /// unsupported platform runs threaded instead of failing.
    pub front_end: FrontEnd,
    /// Event-loop threads (`QSNC_SERVE_LOOPS`). One loop comfortably
    /// multiplexes hundreds of connections; add loops when accept/IO work
    /// itself saturates a core. Ignored by the threaded front end.
    pub loops: usize,
    /// Per-connection in-flight request budget over the multiplexed v2
    /// protocol (`QSNC_SERVE_MAX_INFLIGHT_PER_CONN`); the budget'th + 1
    /// concurrent request on one connection is answered [`Status::Busy`]
    /// with its tag. Ignored by the threaded front end (which is
    /// inherently lockstep).
    pub max_inflight_per_conn: usize,
    /// Concurrent-connection cap (`QSNC_SERVE_MAX_CONNS`). `None` picks
    /// the front end's default: 4096 for the event loop, 128 for the
    /// threaded front end (each connection there costs a blocking thread).
    /// Connections over the cap are refused with [`Status::Busy`].
    pub max_conns: Option<usize>,
    /// Bind address for the admin observability endpoint
    /// (`QSNC_SERVE_ADMIN_ADDR`; e.g. `127.0.0.1:0`). `None` — the
    /// default — serves no admin plane at all. When set and telemetry is
    /// off, [`Server::spawn`] switches it to recording so the endpoint has
    /// data to serve.
    pub admin_addr: Option<String>,
    /// Requests whose total latency reaches this many microseconds leave a
    /// full per-stage trace in the telemetry flight recorder, dumped by the
    /// admin `/slow` route (`QSNC_SERVE_SLOW_US`). `None` disables slow
    /// capture.
    pub slow_us: Option<u64>,
    /// Default per-model admission quota (`QSNC_SERVE_MODEL_QUOTA`): at
    /// most this many requests per model in flight at once, the overflow
    /// answered [`Status::Busy`]. Applies to every registered model
    /// without its own [`ModelSpec::quota`]; `None` — the default — means
    /// unlimited (only the global queue bounds admission).
    pub model_quota: Option<usize>,
    /// How long a hot swap waits, in milliseconds, for requests admitted
    /// against the old engine version to finish before giving up on the
    /// synchronous drain (`QSNC_SERVE_SWAP_DRAIN_MS`). The old engine is
    /// still released once its last request completes either way; see
    /// [`SwapReport::drained`].
    pub swap_drain_ms: u64,
}

/// Default connection cap for the event-loop front end.
const DEFAULT_MAX_CONNS_EVENT_LOOP: usize = 4096;

/// Default connection cap for the threaded front end — every connection
/// holds a blocking OS thread, so the honest bound is small.
const DEFAULT_MAX_CONNS_THREADED: usize = 128;

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_delay_us: 200,
            queue_cap: 64,
            workers: 1,
            front_end: FrontEnd::EventLoop,
            loops: 1,
            max_inflight_per_conn: 32,
            max_conns: None,
            admin_addr: None,
            slow_us: None,
            model_quota: None,
            swap_drain_ms: 10_000,
        }
    }
}

impl ServeConfig {
    /// Default config with the `QSNC_SERVE_*` environment overrides
    /// applied (invalid values are ignored): `MAX_BATCH`, `MAX_DELAY_US`,
    /// `FRONT_END`, `LOOPS`, `MAX_INFLIGHT_PER_CONN`, `MAX_CONNS`,
    /// `ADMIN_ADDR`, `SLOW_US`, `MODEL_QUOTA`, `SWAP_DRAIN_MS`.
    pub fn from_env() -> Self {
        let mut config = ServeConfig::default();
        if let Some(v) = env_parse("QSNC_SERVE_MAX_BATCH") {
            config.max_batch = 1.max(v as usize);
        }
        if let Some(v) = env_parse("QSNC_SERVE_MAX_DELAY_US") {
            config.max_delay_us = v;
        }
        if let Ok(v) = std::env::var("QSNC_SERVE_FRONT_END") {
            match v.trim() {
                "threaded" | "thread" => config.front_end = FrontEnd::Threaded,
                "event-loop" | "event_loop" | "epoll" => config.front_end = FrontEnd::EventLoop,
                _ => {}
            }
        }
        if let Some(v) = env_parse("QSNC_SERVE_LOOPS") {
            config.loops = 1.max(v as usize);
        }
        if let Some(v) = env_parse("QSNC_SERVE_MAX_INFLIGHT_PER_CONN") {
            config.max_inflight_per_conn = 1.max(v as usize);
        }
        if let Some(v) = env_parse("QSNC_SERVE_MAX_CONNS") {
            config.max_conns = Some(1.max(v as usize));
        }
        if let Ok(addr) = std::env::var("QSNC_SERVE_ADMIN_ADDR") {
            let addr = addr.trim();
            if !addr.is_empty() {
                config.admin_addr = Some(addr.to_string());
            }
        }
        config.slow_us = env_parse("QSNC_SERVE_SLOW_US");
        if let Some(v) = env_parse("QSNC_SERVE_MODEL_QUOTA") {
            config.model_quota = Some(1.max(v as usize));
        }
        if let Some(v) = env_parse("QSNC_SERVE_SWAP_DRAIN_MS") {
            config.swap_drain_ms = v;
        }
        config
    }
}

fn env_parse(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Same tie-breaking as `Tensor::argmax` (lowest index wins).
fn argmax_slice(v: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &x) in v.iter().enumerate() {
        if x > best_v {
            best_v = x;
            best = i;
        }
    }
    best
}

/// A connection's read half (for the shutdown nudge; `None` if the clone
/// failed) plus its thread handle.
type ConnSlot = (Option<TcpStream>, JoinHandle<()>);

/// Process-wide request ids, so flight-recorder traces from concurrent
/// connections stay distinguishable. Only assigned while telemetry is on.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

/// The per-front-end half of a running [`Server`].
enum FrontHandles {
    Threaded {
        acceptor: Option<JoinHandle<()>>,
        conns: Arc<Mutex<Vec<ConnSlot>>>,
    },
    EventLoop {
        loops: Vec<JoinHandle<()>>,
        shareds: Vec<Arc<LoopShared>>,
    },
}

/// A running inference server. Dropping it (or calling
/// [`Server::shutdown`]) drains in-flight work before returning.
pub struct Server {
    addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    running: Arc<AtomicBool>,
    req_tx: Option<SyncSender<Request>>,
    front: FrontHandles,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    admin: Option<JoinHandle<()>>,
    registry: Arc<ModelRegistry>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `snn`. `input_dims` is the per-example input shape (e.g.
    /// `[1, 28, 28]`); request payloads must carry exactly that many
    /// `f32`s.
    ///
    /// # Errors
    ///
    /// Returns the bind/listen error, if any.
    ///
    /// # Panics
    ///
    /// Panics if `config` has a zero `max_batch`, `queue_cap`, `workers`,
    /// `loops`, or `max_inflight_per_conn`, or if `input_dims` is
    /// empty/zero-sized.
    ///
    /// # Examples
    ///
    /// ```
    /// use qsnc_memristor::{DeployConfig, SpikingNetwork};
    /// use qsnc_quant::{
    ///     insert_signal_stages, quantize_network_weights, ActivationQuantizer,
    ///     ActivationRegularizer, WeightQuantMethod,
    /// };
    /// use qsnc_serve::{protocol, ServeConfig, Server, Status};
    /// use qsnc_tensor::TensorRng;
    /// use std::sync::Arc;
    ///
    /// // Deploy a 4-bit LeNet and serve it on an ephemeral port.
    /// let mut rng = TensorRng::seed(0);
    /// let mut net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
    /// let (switch, _) = insert_signal_stages(
    ///     &mut net,
    ///     ActivationRegularizer::neuron_convergence(4),
    ///     0.0,
    ///     ActivationQuantizer::new(4),
    /// );
    /// switch.set_enabled(true);
    /// quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
    /// let snn = SpikingNetwork::compile(&net, &DeployConfig::paper(4, 4), None)?;
    ///
    /// let mut server = Server::spawn(
    ///     Arc::new(snn),
    ///     &[1, 28, 28],
    ///     "127.0.0.1:0",
    ///     ServeConfig::default(),
    /// )?;
    ///
    /// // One v1 request over plain TCP: frame out, logits + argmax back.
    /// let mut conn = std::net::TcpStream::connect(server.local_addr())?;
    /// protocol::write_request(&mut conn, &[0.5f32; 28 * 28])?;
    /// let reply = protocol::read_reply(&mut conn)?;
    /// assert_eq!(reply.status, Status::Ok);
    /// assert_eq!(reply.logits.len(), 10);
    ///
    /// // Or pipeline tagged v2 requests and match replies by tag.
    /// protocol::write_request_tagged(&mut conn, 7, &[0.5f32; 28 * 28])?;
    /// protocol::write_request_tagged(&mut conn, 8, &[0.1f32; 28 * 28])?;
    /// let first = protocol::read_reply(&mut conn)?;
    /// assert!(first.tag == Some(7) || first.tag == Some(8));
    ///
    /// server.shutdown();
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn spawn(
        snn: Arc<SpikingNetwork>,
        input_dims: &[usize],
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> io::Result<Server> {
        Server::spawn_models(
            vec![ModelSpec::new("default", snn, input_dims.to_vec())],
            addr,
            config,
        )
    }

    /// Binds `addr` and serves **several models behind one port** — one
    /// [`ModelSpec`] per model, the first spec becoming the default model
    /// (id 0) that v1/v2 frames route to. Protocol v3 frames select a
    /// model by its registration index
    /// ([`protocol::write_request_routed`]); a frame naming an
    /// unregistered id gets a tagged [`Status::UnknownModel`] reply and
    /// the connection stays usable. [`Server::swap_artifact`] hot-swaps
    /// any registered model's engine later without dropping traffic.
    ///
    /// # Errors
    ///
    /// An empty spec list, a duplicate or malformed model name
    /// ([`ModelSpec::name`]) surfaces as [`io::ErrorKind::InvalidInput`];
    /// bind/listen errors pass through.
    ///
    /// # Panics
    ///
    /// Panics if `config` has a zero `max_batch`, `queue_cap`, `workers`,
    /// `loops`, or `max_inflight_per_conn`, or if a spec's `input_dims`
    /// is empty/zero-sized.
    ///
    /// # Examples
    ///
    /// ```
    /// use qsnc_memristor::{DeployConfig, SpikingNetwork};
    /// use qsnc_quant::{
    ///     insert_signal_stages, quantize_network_weights, ActivationQuantizer,
    ///     ActivationRegularizer, WeightQuantMethod,
    /// };
    /// use qsnc_serve::{protocol, ModelSpec, ServeConfig, Server, Status};
    /// use qsnc_tensor::TensorRng;
    /// use std::sync::Arc;
    ///
    /// // Deploy a 4-bit LeNet and serve it under two model ids.
    /// let mut rng = TensorRng::seed(0);
    /// let mut net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
    /// let (switch, _) = insert_signal_stages(
    ///     &mut net,
    ///     ActivationRegularizer::neuron_convergence(4),
    ///     0.0,
    ///     ActivationQuantizer::new(4),
    /// );
    /// switch.set_enabled(true);
    /// quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
    /// let snn = Arc::new(SpikingNetwork::compile(&net, &DeployConfig::paper(4, 4), None)?);
    ///
    /// let mut server = Server::spawn_models(
    ///     vec![
    ///         // First spec = default model (id 0), what v1/v2 frames hit.
    ///         ModelSpec::new("lenet-prod", Arc::clone(&snn), vec![1, 28, 28]),
    ///         // Id 1, capped at 16 in-flight requests of its own.
    ///         ModelSpec::new("lenet-canary", Arc::clone(&snn), vec![1, 28, 28]).with_quota(16),
    ///     ],
    ///     "127.0.0.1:0",
    ///     ServeConfig::default(),
    /// )?;
    /// assert_eq!(server.models().len(), 2);
    ///
    /// // A v3 frame routed to model 1; the reply echoes the tag.
    /// let mut conn = std::net::TcpStream::connect(server.local_addr())?;
    /// protocol::write_request_routed(&mut conn, 7, 1, &[0.5f32; 28 * 28])?;
    /// let reply = protocol::read_reply(&mut conn)?;
    /// assert_eq!(reply.status, Status::Ok);
    /// assert_eq!(reply.tag, Some(7));
    ///
    /// // An unregistered id answers UnknownModel; the connection survives.
    /// protocol::write_request_routed(&mut conn, 8, 9, &[0.5f32; 28 * 28])?;
    /// assert_eq!(protocol::read_reply(&mut conn)?.status, Status::UnknownModel);
    /// protocol::write_request(&mut conn, &[0.5f32; 28 * 28])?; // v1 → default
    /// assert_eq!(protocol::read_reply(&mut conn)?.status, Status::Ok);
    ///
    /// server.shutdown();
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn spawn_models(
        specs: Vec<ModelSpec>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> io::Result<Server> {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_cap >= 1, "queue_cap must be at least 1");
        assert!(config.workers >= 1, "need at least one worker");
        assert!(config.loops >= 1, "need at least one event loop");
        assert!(config.max_inflight_per_conn >= 1, "max_inflight_per_conn must be at least 1");
        let registry = Arc::new(
            ModelRegistry::new(
                specs,
                config.model_quota,
                Duration::from_millis(config.swap_drain_ms),
            )
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidInput, msg))?,
        );

        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;

        let running = Arc::new(AtomicBool::new(true));

        // Bind the admin plane before serving traffic so a bad admin
        // address fails the spawn instead of surfacing later. An admin
        // endpoint without telemetry would only ever serve empty
        // documents, so recording is switched on if it is off.
        let admin = match &config.admin_addr {
            Some(addr) => {
                if !qsnc_telemetry::enabled() {
                    qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Record);
                }
                Some(admin::spawn(addr, Arc::clone(&running), Arc::clone(&registry))?)
            }
            None => None,
        };
        let (admin_addr, admin_handle) = match admin {
            Some((a, h)) => (Some(a), Some(h)),
            None => (None, None),
        };
        let depth = Arc::new(AtomicUsize::new(0));
        let (req_tx, req_rx) = mpsc::sync_channel::<Request>(config.queue_cap);
        // Rendezvous hand-off to the workers: the batcher blocks until one
        // is free, which is what lets the bounded request queue fill and
        // the Busy backpressure engage under overload.
        let (work_tx, work_rx) = mpsc::sync_channel::<Vec<Request>>(0);
        let work_rx = Arc::new(Mutex::new(work_rx));

        let mut micro = MicroBatcher::new(
            req_rx,
            config.max_batch,
            Duration::from_micros(config.max_delay_us),
            Arc::clone(&depth),
        );
        let batcher = std::thread::spawn(move || {
            while let Some(batch) = micro.next_batch() {
                qsnc_telemetry::counter_add("serve.batches", 1);
                if work_tx.send(batch).is_err() {
                    break;
                }
            }
            // work_tx drops here: workers drain their queue and exit.
        });

        let workers = (0..config.workers)
            .map(|_| {
                let rx = Arc::clone(&work_rx);
                let max_batch = config.max_batch;
                std::thread::spawn(move || worker_loop(max_batch, &rx))
            })
            .collect();

        let front = match config.front_end.resolve() {
            FrontEnd::EventLoop => {
                let max_conns = config.max_conns.unwrap_or(DEFAULT_MAX_CONNS_EVENT_LOOP);
                let loop_cfg = LoopConfig {
                    registry: Arc::clone(&registry),
                    max_inflight: config.max_inflight_per_conn,
                    // The cap is per loop; split the budget across loops so
                    // the process-wide total honors the config.
                    max_conns: max_conns.div_ceil(config.loops),
                    slow_us: config.slow_us,
                };
                let (loops, shareds) = event_loop::spawn(
                    listener,
                    config.loops,
                    loop_cfg,
                    Arc::clone(&running),
                    req_tx.clone(),
                    Arc::clone(&depth),
                    Arc::new(AtomicUsize::new(0)),
                )?;
                FrontHandles::EventLoop { loops, shareds }
            }
            FrontEnd::Threaded => {
                let conns: Arc<Mutex<Vec<ConnSlot>>> = Arc::new(Mutex::new(Vec::new()));
                let max_conns = config.max_conns.unwrap_or(DEFAULT_MAX_CONNS_THREADED);
                let acceptor = {
                    let running = Arc::clone(&running);
                    let conns = Arc::clone(&conns);
                    let req_tx = req_tx.clone();
                    let depth = Arc::clone(&depth);
                    let slow_us = config.slow_us;
                    let registry = Arc::clone(&registry);
                    std::thread::spawn(move || {
                        acceptor_loop(
                            &listener, &running, req_tx, &conns, &registry, &depth, slow_us,
                            max_conns,
                        )
                    })
                };
                FrontHandles::Threaded { acceptor: Some(acceptor), conns }
            }
        };

        Ok(Server {
            addr: local,
            admin_addr,
            running,
            req_tx: Some(req_tx),
            front,
            batcher: Some(batcher),
            workers,
            admin: admin_handle,
            registry,
        })
    }

    /// Loads a `.qsnca` deployment artifact and serves it — the cold-start
    /// path. One file read reconstructs the integer engine (packed codes,
    /// scales, precomputed threshold tables); no training stack, no
    /// clustering, no threshold search runs in the serving process. The
    /// per-example input dims come from the artifact itself.
    ///
    /// The `qsnc serve` CLI reaches this through `--artifact` or the
    /// `QSNC_SERVE_ARTIFACT` environment variable.
    ///
    /// # Errors
    ///
    /// Artifact I/O errors pass through with their original
    /// [`io::ErrorKind`]; validation failures ([`ArtifactError`] otherwise)
    /// surface as [`io::ErrorKind::InvalidData`] carrying the typed error's
    /// message. Bind/listen errors are returned as from [`Server::spawn`].
    ///
    /// [`ArtifactError`]: qsnc_memristor::ArtifactError
    pub fn spawn_from_artifact(
        path: impl AsRef<std::path::Path>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let spec = ModelSpec::from_artifact("default", path)?;
        Server::spawn_models(vec![spec], addr, config)
    }

    /// Point-in-time status of every registered model, in model-id order:
    /// current engine version, in-flight count, quota, swap count, and
    /// provenance digest. The admin `GET /models` route serves the same
    /// view as JSON.
    pub fn models(&self) -> Vec<ModelStatus> {
        self.registry.statuses()
    }

    /// Hot-swaps the model named `model` to the engine in the `.qsnca`
    /// artifact at `path`, without dropping traffic: the artifact is
    /// loaded and validated (its input dims must match the registered
    /// model's), the engine pointer is swapped atomically, and the call
    /// then waits — bounded by [`ServeConfig::swap_drain_ms`] — until
    /// every request admitted against the old version has been answered.
    /// Requests admitted before the swap get replies bit-identical to the
    /// old engine's; requests admitted after run on the new engine. The
    /// admin `POST /models/swap?model=NAME&artifact=PATH` route performs
    /// the same operation over HTTP.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotFound`] for an unregistered model name,
    /// [`io::ErrorKind::InvalidInput`] for an input-dims mismatch;
    /// artifact I/O errors pass through and artifact validation failures
    /// surface as [`io::ErrorKind::InvalidData`].
    pub fn swap_artifact(
        &self,
        model: &str,
        path: impl AsRef<std::path::Path>,
    ) -> io::Result<SwapReport> {
        self.registry.swap_from_artifact(model, path).map_err(registry::SwapError::into_io)
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The admin endpoint's bound address, when
    /// [`ServeConfig::admin_addr`] was set (resolves port 0 to the actual
    /// ephemeral port).
    pub fn admin_local_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// Graceful shutdown: stops accepting, answers every request already
    /// admitted (tagged in-flight pipelines included), then joins every
    /// thread.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        match &mut self.front {
            FrontHandles::Threaded { acceptor, conns } => {
                let Some(acceptor) = acceptor.take() else { return };
                self.running.store(false, Ordering::SeqCst);
                // Unblock the acceptor; refused is fine — it means the
                // acceptor already exited on a late real connection.
                let _ = TcpStream::connect(self.addr);
                let _ = acceptor.join();
                // Nudge idle connections off their blocking reads; threads
                // mid request still receive and write their reply first,
                // because the batcher and workers below outlive the
                // connection joins.
                let conns = std::mem::take(&mut *conns.lock().unwrap());
                for (stream, _) in &conns {
                    if let Some(s) = stream {
                        let _ = s.shutdown(Shutdown::Read);
                    }
                }
                for (_, handle) in conns {
                    let _ = handle.join();
                }
            }
            FrontHandles::EventLoop { loops, shareds } => {
                if loops.is_empty() {
                    return;
                }
                self.running.store(false, Ordering::SeqCst);
                // Wake every loop; each stops parsing, answers its
                // in-flight requests (workers below are still running),
                // flushes, and exits.
                for s in shareds.iter() {
                    s.wake();
                }
                for h in loops.drain(..) {
                    let _ = h.join();
                }
                shareds.clear();
            }
        }
        // All producers are gone: the batcher drains the queue, flushes the
        // final partial batch, and hangs up on the workers.
        drop(self.req_tx.take());
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // The admin plane goes down last, after every request has been
        // answered, so /metrics stays scrapeable through the drain.
        if let Some(h) = self.admin.take() {
            if let Some(addr) = self.admin_addr {
                let _ = TcpStream::connect(addr); // nudge it off accept()
            }
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("admin_addr", &self.admin_addr)
            .field("running", &self.running.load(Ordering::Relaxed))
            .field(
                "front_end",
                match &self.front {
                    FrontHandles::Threaded { .. } => &FrontEnd::Threaded,
                    FrontHandles::EventLoop { .. } => &FrontEnd::EventLoop,
                },
            )
            .finish()
    }
}

#[allow(clippy::too_many_arguments)]
fn acceptor_loop(
    listener: &TcpListener,
    running: &AtomicBool,
    req_tx: SyncSender<Request>,
    conns: &Mutex<Vec<ConnSlot>>,
    registry: &Arc<ModelRegistry>,
    depth: &Arc<AtomicUsize>,
    slow_us: Option<u64>,
    max_conns: usize,
) {
    let active = Arc::new(AtomicUsize::new(0));
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if !running.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if !running.load(Ordering::SeqCst) {
            // The shutdown nudge, or a client racing it.
            let mut stream = stream;
            let _ = protocol::write_error_reply(
                &mut stream,
                None,
                Status::ShuttingDown,
                "server shutting down",
            );
            break;
        }
        if active.load(Ordering::Relaxed) >= max_conns {
            // Every connection costs a blocking thread here: refuse past
            // the cap instead of degrading the whole process.
            qsnc_telemetry::counter_add("serve.conn.refused", 1);
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let _ = protocol::write_error_reply(
                &mut stream,
                None,
                Status::Busy,
                "connection limit reached: retry later",
            );
            continue;
        }
        qsnc_telemetry::counter_add("serve.connections", 1);
        let _ = stream.set_nodelay(true);
        // A reply write can only block on a client that stopped reading;
        // bound it so shutdown can always join this thread.
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let read_half = stream.try_clone().ok();
        let tx = req_tx.clone();
        let d = Arc::clone(depth);
        let reg = Arc::clone(registry);
        active.fetch_add(1, Ordering::Relaxed);
        let active_thread = Arc::clone(&active);
        let handle = std::thread::spawn(move || {
            connection_loop(stream, &reg, &tx, &d, slow_us);
            active_thread.fetch_sub(1, Ordering::Relaxed);
        });
        conns.lock().unwrap().push((read_half, handle));
    }
}

fn connection_loop(
    mut stream: TcpStream,
    registry: &Arc<ModelRegistry>,
    req_tx: &SyncSender<Request>,
    depth: &AtomicUsize,
    slow_us: Option<u64>,
) {
    let mut input: Vec<f32> = Vec::new();
    loop {
        // One relaxed atomic load per request: with telemetry off the
        // untraced read path takes no timestamps at all.
        let tele = qsnc_telemetry::enabled();
        // The model the frame being read resolves to, stashed by the
        // lookup callback mid-read so admission can lease the same engine
        // snapshot the payload was validated against.
        let mut resolved: Option<(Arc<ModelEntry>, Arc<ModelVersion>)> = None;
        let read = {
            let resolved = &mut resolved;
            let mut lookup = |model: Option<u32>| -> Option<usize> {
                let (entry, version) = registry.resolve(model)?;
                let input_len = version.input_len;
                *resolved = Some((entry, version));
                Some(input_len)
            };
            if tele {
                protocol::read_request_routed_traced(&mut stream, &mut lookup, &mut input)
            } else {
                protocol::read_request_routed(&mut stream, &mut lookup, &mut input)
            }
        };
        match read {
            Ok(meta) => {
                let (entry, version) =
                    resolved.take().expect("a parsed request always resolved its model");
                // The quota tier: this model at capacity answers Busy
                // without touching the shared queue.
                let Some(lease) = Lease::acquire(&entry, &version) else {
                    qsnc_telemetry::counter_add(&entry.tele_rejected, 1);
                    if protocol::write_error_reply(
                        &mut stream,
                        meta.tag,
                        Status::Busy,
                        "model admission quota reached: retry",
                    )
                    .is_err()
                    {
                        break;
                    }
                    continue;
                };
                let id = if tele { next_request_id() } else { 0 };
                let (reply_tx, reply_rx) = mpsc::channel::<WorkerReply>();
                let admitted = Instant::now();
                let req = Request {
                    input: std::mem::take(&mut input),
                    lease: Some(lease),
                    route: ReplyRoute::Thread(reply_tx),
                    enqueued: admitted,
                    decode_us: meta.decode_us,
                    id,
                };
                // Count before sending so the batcher's decrement can never
                // observe the admission before the gauge does.
                let occupied = depth.fetch_add(1, Ordering::Relaxed) + 1;
                match req_tx.try_send(req) {
                    Ok(()) => {
                        if tele {
                            qsnc_telemetry::counter_add("serve.requests", 1);
                            qsnc_telemetry::counter_add(&entry.tele_requests, 1);
                            qsnc_telemetry::quantile_observe(
                                "serve.stage.decode.us",
                                meta.decode_us as f64,
                            );
                            qsnc_telemetry::observe(
                                "serve.queue.depth",
                                occupied as f64,
                                QUEUE_DEPTH_EDGES,
                            );
                        }
                        match reply_rx.recv() {
                            Ok(reply) => {
                                let t_encode = tele.then(Instant::now);
                                if protocol::write_ok_reply(
                                    &mut stream,
                                    meta.tag,
                                    reply.argmax,
                                    &reply.logits,
                                )
                                .is_err()
                                {
                                    break;
                                }
                                if let Some(t_encode) = t_encode {
                                    let encode_us = t_encode.elapsed().as_micros() as u64;
                                    let total_us = admitted.elapsed().as_micros() as u64;
                                    qsnc_telemetry::quantile_observe(
                                        "serve.stage.encode.us",
                                        encode_us as f64,
                                    );
                                    qsnc_telemetry::quantile_observe(
                                        "serve.latency_us",
                                        total_us as f64,
                                    );
                                    if slow_us.is_some_and(|slow| total_us >= slow) {
                                        qsnc_telemetry::flight_record(
                                            "serve.slow",
                                            id,
                                            &[
                                                ("decode_us", meta.decode_us),
                                                ("queue_us", reply.queue_us),
                                                ("infer_us", reply.infer_us),
                                                ("encode_us", encode_us),
                                                ("total_us", total_us),
                                                ("batch", u64::from(reply.batch)),
                                            ],
                                        );
                                    }
                                }
                            }
                            Err(_) => {
                                // Worker gone before answering (only on
                                // teardown): tell the client and bail.
                                let _ = protocol::write_error_reply(
                                    &mut stream,
                                    meta.tag,
                                    Status::ShuttingDown,
                                    "server draining",
                                );
                                break;
                            }
                        }
                    }
                    Err(TrySendError::Full(req)) => {
                        depth.fetch_sub(1, Ordering::Relaxed);
                        drop(req);
                        qsnc_telemetry::counter_add("serve.rejected", 1);
                        if protocol::write_error_reply(
                            &mut stream,
                            meta.tag,
                            Status::Busy,
                            "request queue full (backpressure): retry",
                        )
                        .is_err()
                        {
                            break;
                        }
                    }
                    Err(TrySendError::Disconnected(req)) => {
                        depth.fetch_sub(1, Ordering::Relaxed);
                        drop(req);
                        let _ = protocol::write_error_reply(
                            &mut stream,
                            meta.tag,
                            Status::ShuttingDown,
                            "server shutting down",
                        );
                        break;
                    }
                }
            }
            Err(protocol::FrameError::Bad(msg)) => {
                qsnc_telemetry::counter_add("serve.bad_requests", 1);
                if protocol::write_error_reply(&mut stream, None, Status::BadRequest, &msg)
                    .is_err()
                {
                    break;
                }
            }
            Err(protocol::FrameError::UnknownModel { tag, model }) => {
                // The payload was consumed, so the stream is still framed:
                // answer the offending tag and keep serving the connection.
                qsnc_telemetry::counter_add("serve.model.unknown", 1);
                qsnc_telemetry::counter_add("serve.bad_requests", 1);
                if protocol::write_error_reply(
                    &mut stream,
                    tag,
                    Status::UnknownModel,
                    &protocol::FrameError::unknown_model_message(model),
                )
                .is_err()
                {
                    break;
                }
            }
            Err(protocol::FrameError::TooLarge { tag, declared }) => {
                // Oversized declaration: reply to the offending tag (so a
                // multiplexed client sees *which* request died) before
                // closing the unresynchronizable stream.
                qsnc_telemetry::counter_add("serve.bad_requests", 1);
                let _ = protocol::write_error_reply(
                    &mut stream,
                    tag,
                    Status::BadRequest,
                    &protocol::FrameError::too_large_message(declared),
                );
                break;
            }
            Err(protocol::FrameError::Fatal(msg)) => {
                qsnc_telemetry::counter_add("serve.bad_requests", 1);
                let _ = protocol::write_error_reply(&mut stream, None, Status::BadRequest, &msg);
                break;
            }
            Err(protocol::FrameError::Disconnected) | Err(protocol::FrameError::Io(_)) => break,
        }
    }
}

fn worker_loop(max_batch: usize, work_rx: &Mutex<Receiver<Vec<Request>>>) {
    // One cached input tensor per (input shape, batch size): after each
    // combination has been seen once, packing + inference allocate
    // nothing. Keyed by shape because different models can differ in dims.
    let mut tensors: HashMap<Vec<usize>, Vec<Option<Tensor>>> = HashMap::new();
    let mut out: Vec<f32> = Vec::new();
    loop {
        let batch = match work_rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => break, // a sibling worker panicked
        };
        let Ok(batch) = batch else { break };
        let b = batch.len();
        debug_assert!(b >= 1 && b <= max_batch, "batcher produced batch of {b}");
        // The batcher keeps batches version-homogeneous, so the opener's
        // lease names the engine for the whole batch.
        let (entry, version) = {
            let lease = batch[0].lease.as_ref().expect("served requests always carry a lease");
            (Arc::clone(lease.entry()), Arc::clone(lease.version()))
        };
        let input_len = version.input_len;
        let tele = qsnc_telemetry::enabled();
        // Queue time ends when the worker takes the batch over: everything
        // between admission and here (queue wait + batch forming) is the
        // queue stage from the request's point of view.
        let picked_up = tele.then(Instant::now);
        if !tensors.contains_key(&version.input_dims) {
            tensors
                .insert(version.input_dims.clone(), (0..=max_batch).map(|_| None).collect());
        }
        let cache = tensors.get_mut(&version.input_dims).expect("inserted above");
        let xs = cache[b].get_or_insert_with(|| {
            let mut dims = vec![b];
            dims.extend_from_slice(&version.input_dims);
            Tensor::from_vec(vec![0.0; b * input_len], dims)
        });
        let slice = xs.as_mut_slice();
        for (i, req) in batch.iter().enumerate() {
            slice[i * input_len..(i + 1) * input_len].copy_from_slice(&req.input);
        }
        let t_infer = tele.then(Instant::now);
        version.network.infer_batch_into(xs, &mut out);
        // The batched engine call is shared: infer_us is recorded once per
        // batch in the sketch but attached to every request's trace.
        let infer_us = t_infer.map_or(0, |t| t.elapsed().as_micros() as u64);
        if tele {
            qsnc_telemetry::quantile_observe("serve.stage.infer.us", infer_us as f64);
            qsnc_telemetry::quantile_observe(&entry.tele_infer_us, infer_us as f64);
        }
        let stride = out.len() / b;
        for (i, req) in batch.into_iter().enumerate() {
            let logits = out[i * stride..(i + 1) * stride].to_vec();
            let argmax = argmax_slice(&logits) as u32;
            let queue_us = picked_up
                .map_or(0, |t| t.saturating_duration_since(req.enqueued).as_micros() as u64);
            if tele {
                qsnc_telemetry::quantile_observe("serve.stage.queue.us", queue_us as f64);
            }
            let reply = WorkerReply { argmax, logits, queue_us, infer_us, batch: b as u32 };
            match req.route {
                // A send error means the client hung up mid-request; the
                // connection thread already noticed, nothing to do.
                ReplyRoute::Thread(tx) => {
                    let _ = tx.send(reply);
                }
                // The loop drops the completion itself if the connection
                // died first (generation mismatch).
                ReplyRoute::Loop { shared, conn, generation, tag } => shared.complete(Completion {
                    conn,
                    generation,
                    tag,
                    reply,
                    enqueued: req.enqueued,
                    decode_us: req.decode_us,
                    id: req.id,
                }),
            }
        }
    }
}
