//! Length-prefixed binary wire protocol, versions 1, 2 and 3.
//!
//! **Version 1** — one request in flight per connection, untagged frames:
//!
//! ```text
//! offset  size  field
//! 0       4     magic   = 0x434E5351 ("QSNC" as little-endian bytes)
//! 4       1     version = 1
//! 5       1     request: op (0 = infer) / reply: status code
//! 6       4     payload length in bytes, little-endian
//! 10      len   payload
//! ```
//!
//! **Version 2** — connection multiplexing: every frame carries a 32-bit
//! request **tag** chosen by the client, many requests may be in flight on
//! one connection, and replies return tagged — possibly out of order. The
//! reply to the request tagged `t` is the reply frame tagged `t`,
//! whatever order the server finishes in:
//!
//! ```text
//! offset  size  field
//! 0       4     magic   = 0x434E5351
//! 4       1     version = 2
//! 5       1     request: op (0 = infer) / reply: status code
//! 6       4     tag, little-endian (echoed verbatim in the reply)
//! 10      4     payload length in bytes, little-endian
//! 14      len   payload
//! ```
//!
//! **Version 3** — model routing: a v2 tagged frame plus a 32-bit **model
//! id** selecting which registered model serves the request (`0` is always
//! the default model, so a v3 frame with model 0 behaves exactly like a v2
//! frame). Replies to v3 requests come back as **v2 tagged frames** — the
//! model id shapes routing, not the reply wire format:
//!
//! ```text
//! offset  size  field
//! 0       4     magic   = 0x434E5351
//! 4       1     version = 3
//! 5       1     request: op (0 = infer)
//! 6       4     tag, little-endian (echoed in the v2 reply)
//! 10      4     model id, little-endian (0 = default model)
//! 14      4     payload length in bytes, little-endian
//! 18      len   payload
//! ```
//!
//! A model id no registered model answers to gets a **tagged**
//! [`Status::UnknownModel`] reply; the frame is consumed and the
//! connection survives (the payload length parsed fine, so the stream
//! stays framed). Frames without a model id (v1 and v2) route to the
//! default model, which is what keeps every pre-v3 client working
//! unchanged against a multi-model server.
//!
//! All versions interleave freely on one connection. A v1 frame gates
//! further parsing until its reply is written (its reply is only
//! identifiable by arrival order), so lockstep v1 clients keep their exact
//! PR 4 semantics; v2 frames pipeline up to the server's per-connection
//! in-flight cap (`QSNC_SERVE_MAX_INFLIGHT_PER_CONN`), beyond which the
//! server answers [`Status::Busy`] with the offending tag. A tag may be
//! reused after its reply arrives; two live requests with the same tag on
//! one connection are answered [`Status::BadRequest`] (the reply would be
//! unroutable).
//!
//! An infer request's payload is the example as little-endian `f32`s and
//! must be exactly `4 · input_len` bytes for the model being served. An
//! [`Status::Ok`] reply's payload is `argmax: u32`, `n: u32`, then `n`
//! little-endian `f32` logits; every other status carries a UTF-8 error
//! message. Payloads are capped at [`MAX_FRAME_BYTES`]; a frame declaring
//! more than that (or a bad magic/version) cannot be resynchronized and the
//! server closes the connection after replying. An oversized declaration on
//! a v2 frame still gets a **tagged** [`Status::BadRequest`] reply first,
//! so multiplexed clients can attribute the rejection to the offending
//! request rather than seeing a bare disconnect.

use std::io::{self, Read, Write};
use std::time::Instant;

/// Frame magic: the bytes `QSNC` read as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"QSNC");

/// Protocol version 1: untagged lockstep frames.
pub const VERSION: u8 = 1;

/// Protocol version 2: tagged multiplexed frames.
pub const VERSION_V2: u8 = 2;

/// Protocol version 3: tagged frames carrying a model id (replies stay v2).
pub const VERSION_V3: u8 = 3;

/// Request opcode: run inference on one example.
pub const OP_INFER: u8 = 0;

/// Upper bound on a frame payload; anything larger is rejected unread.
pub const MAX_FRAME_BYTES: u32 = 4 << 20;

/// Bytes in the fixed v1 frame header.
pub const HEADER_BYTES: usize = 10;

/// Bytes in the fixed v2 frame header (v1 plus the tag field).
pub const HEADER_V2_BYTES: usize = 14;

/// Bytes in the fixed v3 frame header (v2 plus the model-id field).
pub const HEADER_V3_BYTES: usize = 18;

/// Reply status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Inference ran; payload carries argmax + logits.
    Ok,
    /// Backpressure — the bounded request queue or the connection's
    /// in-flight budget was full; retry later.
    Busy,
    /// The request was malformed; payload carries a message.
    BadRequest,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// A v3 frame named a model id no registered model answers to. The
    /// frame was consumed; the connection survives.
    UnknownModel,
}

impl Status {
    fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Busy => 1,
            Status::BadRequest => 2,
            Status::ShuttingDown => 3,
            Status::UnknownModel => 4,
        }
    }

    fn from_code(code: u8) -> Option<Status> {
        match code {
            0 => Some(Status::Ok),
            1 => Some(Status::Busy),
            2 => Some(Status::BadRequest),
            3 => Some(Status::ShuttingDown),
            4 => Some(Status::UnknownModel),
            _ => None,
        }
    }
}

/// A decoded reply frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Outcome of the request.
    pub status: Status,
    /// The request tag this reply answers (`None` for v1 frames).
    pub tag: Option<u32>,
    /// Index of the largest logit (valid when `status` is [`Status::Ok`]).
    pub argmax: u32,
    /// Class logits (empty unless `status` is [`Status::Ok`]).
    pub logits: Vec<f32>,
    /// Error message (empty when `status` is [`Status::Ok`]).
    pub message: String,
}

/// Why reading a request frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection (cleanly or mid-frame).
    Disconnected,
    /// Well-framed but invalid request; the connection can continue.
    Bad(String),
    /// Unframeable input (bad magic, unknown version); the connection
    /// cannot be resynchronized and must close after replying.
    Fatal(String),
    /// The frame declared a payload beyond [`MAX_FRAME_BYTES`]. The stream
    /// cannot be resynchronized (the payload is deliberately unread), but
    /// unlike [`FrameError::Fatal`] the header parsed far enough to know
    /// which request is at fault — the server must send `tag` a
    /// [`Status::BadRequest`] reply *before* closing, so multiplexed (v2)
    /// clients see the rejection attributed to the right request instead
    /// of a bare connection drop.
    TooLarge {
        /// Tag of the offending frame (`None` on a v1 frame).
        tag: Option<u32>,
        /// The declared payload length.
        declared: u32,
    },
    /// A v3 frame named a model id the server's registry does not hold.
    /// The payload was consumed (its length parsed fine), so the stream
    /// stays framed and the connection survives; the server must send
    /// `tag` a [`Status::UnknownModel`] reply.
    UnknownModel {
        /// Tag of the offending frame.
        tag: Option<u32>,
        /// The model id no registered model answers to.
        model: u32,
    },
    /// Transport error.
    Io(io::Error),
}

impl FrameError {
    /// The reply message both front ends send for a [`FrameError::TooLarge`]
    /// rejection, kept in one place so v1 and v2 clients see the same text.
    pub fn too_large_message(declared: u32) -> String {
        format!("frame of {declared} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
    }

    /// The reply message both front ends send for a
    /// [`FrameError::UnknownModel`] rejection.
    pub fn unknown_model_message(model: u32) -> String {
        format!("no model registered under id {model}")
    }
}

/// Everything the server needs to know about one well-framed request
/// beyond its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestMeta {
    /// The client's tag (`None` for a v1 frame). The reply must carry the
    /// same tag — in a v2 frame when the request was v2 **or v3** (model
    /// routing never changes the reply wire format).
    pub tag: Option<u32>,
    /// The model id a v3 frame routed to (`None` for v1/v2 frames, which
    /// route to the default model).
    pub model: Option<u32>,
    /// Microseconds spent reading + parsing the payload after the header
    /// arrived (zero on the untraced path).
    pub decode_us: u64,
}

/// Outcome of [`parse_frame`] on a byte buffer that may hold a partial
/// frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameView {
    /// Protocol version of the frame (1, 2 or 3).
    pub version: u8,
    /// Request opcode byte.
    pub op: u8,
    /// Tag for v2/v3 frames, `None` for v1.
    pub tag: Option<u32>,
    /// Model id for v3 frames, `None` for v1/v2 (default-model routing).
    pub model: Option<u32>,
    /// Byte offset of the payload within the parsed buffer.
    pub payload_start: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Total frame size in bytes — advance the buffer by this much.
    pub consumed: usize,
}

/// Incremental server-side parser for the non-blocking front end: examines
/// the start of `buf` and returns `Ok(None)` when more bytes are needed,
/// `Ok(Some(view))` when a complete frame (of either version) is present,
/// or an error when the stream cannot be resynchronized —
/// [`FrameError::Fatal`] for bad magic / unknown version,
/// [`FrameError::TooLarge`] (tag preserved) for an oversized payload
/// declaration. Opcode and
/// payload-length validation against the served model is the caller's job
/// — those are [`FrameError::Bad`]-class errors that consume the frame
/// and keep the connection.
pub fn parse_frame(buf: &[u8]) -> Result<Option<FrameView>, FrameError> {
    if buf.len() < HEADER_BYTES {
        return Ok(None);
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(FrameError::Fatal(format!(
            "bad magic 0x{magic:08x} (expected 0x{MAGIC:08x})"
        )));
    }
    let version = buf[4];
    let op = buf[5];
    let (tag, model, len, header) = match version {
        VERSION => {
            let len = u32::from_le_bytes(buf[6..10].try_into().unwrap());
            (None, None, len, HEADER_BYTES)
        }
        VERSION_V2 => {
            if buf.len() < HEADER_V2_BYTES {
                return Ok(None);
            }
            let tag = u32::from_le_bytes(buf[6..10].try_into().unwrap());
            let len = u32::from_le_bytes(buf[10..14].try_into().unwrap());
            (Some(tag), None, len, HEADER_V2_BYTES)
        }
        VERSION_V3 => {
            if buf.len() < HEADER_V3_BYTES {
                return Ok(None);
            }
            let tag = u32::from_le_bytes(buf[6..10].try_into().unwrap());
            let model = u32::from_le_bytes(buf[10..14].try_into().unwrap());
            let len = u32::from_le_bytes(buf[14..18].try_into().unwrap());
            (Some(tag), Some(model), len, HEADER_V3_BYTES)
        }
        other => {
            return Err(FrameError::Fatal(format!(
                "unsupported protocol version {other} (expected {VERSION}, {VERSION_V2} or {VERSION_V3})"
            )));
        }
    };
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge { tag, declared: len });
    }
    // `len` is now capped, but stay overflow-proof by construction: a
    // hostile declaration must never wrap the total frame size.
    let total = header
        .checked_add(len as usize)
        .ok_or(FrameError::TooLarge { tag, declared: len })?;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some(FrameView {
        version,
        op,
        tag,
        model,
        payload_start: header,
        payload_len: len as usize,
        consumed: total,
    }))
}

fn read_exact_or_disconnect(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(FrameError::Disconnected),
        Err(e) => Err(FrameError::Io(e)),
    }
}

/// Server side (blocking, threaded front end): reads one infer request of
/// any protocol version against a **single-model** server serving
/// `input_len`-element examples. A v3 frame naming any model id other than
/// 0 yields [`FrameError::UnknownModel`]. The decoded example is appended
/// to `input` (cleared first). Payload bytes stage through the thread's
/// [`qsnc_tensor::scratch`] arena, so a persistent connection thread reads
/// allocation-free once warm.
pub fn read_request(
    r: &mut impl Read,
    input_len: usize,
    input: &mut Vec<f32>,
) -> Result<RequestMeta, FrameError> {
    read_request_routed_inner(r, &mut single_model_lookup(input_len), input, false)
}

/// [`read_request`] plus decode timing: on success `decode_us` holds the
/// microseconds spent reading and parsing the payload *after* the header
/// arrived. Header wait is excluded on purpose — on a keep-alive
/// connection it is idle time between requests, not decode work. The
/// serving layer feeds the result into the `serve.stage.decode.us`
/// quantile sketch.
pub fn read_request_traced(
    r: &mut impl Read,
    input_len: usize,
    input: &mut Vec<f32>,
) -> Result<RequestMeta, FrameError> {
    read_request_routed_inner(r, &mut single_model_lookup(input_len), input, true)
}

/// The lookup a single-model server implies: frames without a model id and
/// v3 frames naming model 0 resolve to the one model; everything else is
/// unknown.
fn single_model_lookup(input_len: usize) -> impl FnMut(Option<u32>) -> Option<usize> {
    move |model| match model {
        None | Some(0) => Some(input_len),
        Some(_) => None,
    }
}

/// Server side (blocking, threaded front end), **multi-model**: reads one
/// infer request of any protocol version, resolving the frame's model id
/// through `lookup` — called exactly once per frame with `None` for v1/v2
/// frames (default-model routing) or `Some(id)` for v3 frames, returning
/// the resolved model's expected `input_len` (or `None` when no model
/// answers to the id, which yields [`FrameError::UnknownModel`] after the
/// payload is consumed to keep the stream framed). The callback is where
/// the serving layer snapshots which engine will run the request.
pub fn read_request_routed(
    r: &mut impl Read,
    lookup: &mut dyn FnMut(Option<u32>) -> Option<usize>,
    input: &mut Vec<f32>,
) -> Result<RequestMeta, FrameError> {
    read_request_routed_inner(r, lookup, input, false)
}

/// [`read_request_routed`] plus decode timing, as [`read_request_traced`].
pub fn read_request_routed_traced(
    r: &mut impl Read,
    lookup: &mut dyn FnMut(Option<u32>) -> Option<usize>,
    input: &mut Vec<f32>,
) -> Result<RequestMeta, FrameError> {
    read_request_routed_inner(r, lookup, input, true)
}

fn read_request_routed_inner(
    r: &mut impl Read,
    lookup: &mut dyn FnMut(Option<u32>) -> Option<usize>,
    input: &mut Vec<f32>,
    timed: bool,
) -> Result<RequestMeta, FrameError> {
    let mut header = [0u8; HEADER_BYTES];
    read_exact_or_disconnect(r, &mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(FrameError::Fatal(format!(
            "bad magic 0x{magic:08x} (expected 0x{MAGIC:08x})"
        )));
    }
    let version = header[4];
    let op = header[5];
    let t0 = timed.then(Instant::now);
    let (tag, model, len) = match version {
        VERSION => (None, None, u32::from_le_bytes(header[6..10].try_into().unwrap())),
        VERSION_V2 => {
            let tag = u32::from_le_bytes(header[6..10].try_into().unwrap());
            let mut rest = [0u8; 4];
            read_exact_or_disconnect(r, &mut rest)?;
            (Some(tag), None, u32::from_le_bytes(rest))
        }
        VERSION_V3 => {
            let tag = u32::from_le_bytes(header[6..10].try_into().unwrap());
            let mut rest = [0u8; 8];
            read_exact_or_disconnect(r, &mut rest)?;
            let model = u32::from_le_bytes(rest[0..4].try_into().unwrap());
            (Some(tag), Some(model), u32::from_le_bytes(rest[4..8].try_into().unwrap()))
        }
        other => {
            return Err(FrameError::Fatal(format!(
                "unsupported protocol version {other} (expected {VERSION}, {VERSION_V2} or {VERSION_V3})"
            )));
        }
    };
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge { tag, declared: len });
    }
    let resolved = lookup(model);
    // From here the payload length is trusted: consume it fully so the
    // stream stays framed even when the request is rejected (including the
    // unknown-model case — its connection must survive).
    let mut payload = qsnc_tensor::scratch::take_u8(len as usize);
    let read = read_exact_or_disconnect(r, &mut payload);
    let result = read.and_then(|()| {
        let Some(input_len) = resolved else {
            return Err(FrameError::UnknownModel { tag, model: model.unwrap_or(0) });
        };
        decode_infer_payload(op, &payload, input_len, input)?;
        Ok(RequestMeta { tag, model, decode_us: t0.map_or(0, |t| t.elapsed().as_micros() as u64) })
    });
    qsnc_tensor::scratch::put_u8(payload);
    result
}

/// Validates an infer payload and decodes it into `input` (cleared first).
/// Returns [`FrameError::Bad`] — frame consumed, connection keeps going —
/// on an unknown opcode or a payload that does not match the model.
pub fn decode_infer_payload(
    op: u8,
    payload: &[u8],
    input_len: usize,
    input: &mut Vec<f32>,
) -> Result<(), FrameError> {
    if op != OP_INFER {
        return Err(FrameError::Bad(format!("unknown opcode {op}")));
    }
    if payload.len() != 4 * input_len {
        return Err(FrameError::Bad(format!(
            "payload is {} bytes, model expects {} ({} f32 values)",
            payload.len(),
            4 * input_len,
            input_len
        )));
    }
    input.clear();
    input.extend(payload.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())));
    Ok(())
}

/// Appends a frame header (of the version implied by `tag`) + payload
/// length to `out`, returning the offset where the payload begins.
fn encode_header(out: &mut Vec<u8>, kind: u8, tag: Option<u32>, payload_len: usize) {
    out.extend_from_slice(&MAGIC.to_le_bytes());
    match tag {
        None => {
            out.push(VERSION);
            out.push(kind);
        }
        Some(tag) => {
            out.push(VERSION_V2);
            out.push(kind);
            out.extend_from_slice(&tag.to_le_bytes());
        }
    }
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
}

/// Appends a complete [`Status::Ok`] reply frame to `out` — v1 when `tag`
/// is `None`, v2 carrying `tag` otherwise. The event-loop front end
/// encodes replies straight into per-connection output buffers with this.
pub fn encode_ok_reply(out: &mut Vec<u8>, tag: Option<u32>, argmax: u32, logits: &[f32]) {
    encode_header(out, Status::Ok.code(), tag, 8 + 4 * logits.len());
    out.extend_from_slice(&argmax.to_le_bytes());
    out.extend_from_slice(&(logits.len() as u32).to_le_bytes());
    for v in logits {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends a complete error reply frame to `out` — v1 when `tag` is
/// `None`, v2 carrying `tag` otherwise.
pub fn encode_error_reply(out: &mut Vec<u8>, tag: Option<u32>, status: Status, message: &str) {
    debug_assert_ne!(status, Status::Ok, "error replies carry non-Ok statuses");
    encode_header(out, status.code(), tag, message.len());
    out.extend_from_slice(message.as_bytes());
}

/// Bytes in the header of a frame of the version implied by `tag`.
fn header_len(tag: Option<u32>) -> usize {
    if tag.is_some() {
        HEADER_V2_BYTES
    } else {
        HEADER_BYTES
    }
}

/// Stages one frame of exactly `size` bytes through the thread's scratch
/// arena so persistent blocking writers stay allocation-free once warm:
/// the borrowed buffer's capacity covers `size`, so the appending encoders
/// never grow it.
fn write_encoded(
    w: &mut impl Write,
    size: usize,
    encode: impl FnOnce(&mut Vec<u8>),
) -> io::Result<()> {
    let mut frame = qsnc_tensor::scratch::take_u8(size);
    frame.clear();
    encode(&mut frame);
    debug_assert_eq!(frame.len(), size, "encoder produced a different frame size");
    let result = w.write_all(&frame).and_then(|()| w.flush());
    qsnc_tensor::scratch::put_u8(frame);
    result
}

/// Client side: writes one v1 (untagged, lockstep) infer request frame.
pub fn write_request(w: &mut impl Write, input: &[f32]) -> io::Result<()> {
    write_encoded(w, HEADER_BYTES + 4 * input.len(), |frame| {
        encode_header(frame, OP_INFER, None, 4 * input.len());
        for v in input {
            frame.extend_from_slice(&v.to_le_bytes());
        }
    })
}

/// Client side: writes one v2 infer request frame tagged `tag`. Many may
/// be written back to back on one connection (up to the server's
/// per-connection in-flight cap); match replies to requests by tag, not
/// by order.
pub fn write_request_tagged(w: &mut impl Write, tag: u32, input: &[f32]) -> io::Result<()> {
    write_encoded(w, HEADER_V2_BYTES + 4 * input.len(), |frame| {
        encode_header(frame, OP_INFER, Some(tag), 4 * input.len());
        for v in input {
            frame.extend_from_slice(&v.to_le_bytes());
        }
    })
}

/// Client side: writes one v3 infer request frame tagged `tag`, routed to
/// the server-side model registered under `model` (`0` is always the
/// default model). The reply arrives as a **v2 tagged frame** carrying the
/// same tag; match replies to requests by tag exactly as with
/// [`write_request_tagged`]. A model id no model answers to gets a tagged
/// [`Status::UnknownModel`] reply and the connection keeps going.
pub fn write_request_routed(
    w: &mut impl Write,
    tag: u32,
    model: u32,
    input: &[f32],
) -> io::Result<()> {
    write_encoded(w, HEADER_V3_BYTES + 4 * input.len(), |frame| {
        frame.extend_from_slice(&MAGIC.to_le_bytes());
        frame.push(VERSION_V3);
        frame.push(OP_INFER);
        frame.extend_from_slice(&tag.to_le_bytes());
        frame.extend_from_slice(&model.to_le_bytes());
        frame.extend_from_slice(&(4 * input.len() as u32).to_le_bytes());
        for v in input {
            frame.extend_from_slice(&v.to_le_bytes());
        }
    })
}

/// Server side: writes an [`Status::Ok`] reply with argmax + logits — v1
/// when `tag` is `None`, v2 otherwise.
pub fn write_ok_reply(
    w: &mut impl Write,
    tag: Option<u32>,
    argmax: u32,
    logits: &[f32],
) -> io::Result<()> {
    write_encoded(w, header_len(tag) + 8 + 4 * logits.len(), |frame| {
        encode_ok_reply(frame, tag, argmax, logits)
    })
}

/// Server side: writes an error reply carrying `message` — v1 when `tag`
/// is `None`, v2 otherwise.
pub fn write_error_reply(
    w: &mut impl Write,
    tag: Option<u32>,
    status: Status,
    message: &str,
) -> io::Result<()> {
    write_encoded(w, header_len(tag) + message.len(), |frame| {
        encode_error_reply(frame, tag, status, message)
    })
}

/// Client side: reads one reply frame of either protocol version;
/// [`Reply::tag`] is `Some` exactly when the reply is v2.
pub fn read_reply(r: &mut impl Read) -> io::Result<Reply> {
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad reply header"));
    }
    let status = Status::from_code(header[5])
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unknown status"))?;
    let (tag, len) = match header[4] {
        VERSION => (None, u32::from_le_bytes(header[6..10].try_into().unwrap())),
        VERSION_V2 => {
            let tag = u32::from_le_bytes(header[6..10].try_into().unwrap());
            let mut rest = [0u8; 4];
            r.read_exact(&mut rest)?;
            (Some(tag), u32::from_le_bytes(rest))
        }
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad reply header")),
    };
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "oversized reply"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    match status {
        Status::Ok => {
            if payload.len() < 8 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated Ok reply"));
            }
            let argmax = u32::from_le_bytes(payload[0..4].try_into().unwrap());
            let n = u32::from_le_bytes(payload[4..8].try_into().unwrap()) as usize;
            // The declared logit count must reproduce the payload size under
            // checked arithmetic — a hostile `n` near usize::MAX must fail
            // the comparison, not wrap it.
            let expected = n
                .checked_mul(4)
                .and_then(|b| b.checked_add(8))
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad logits length"))?;
            if payload.len() != expected {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "bad logits length"));
            }
            let logits = payload[8..]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Ok(Reply { status, tag, argmax, logits, message: String::new() })
        }
        _ => Ok(Reply {
            status,
            tag,
            argmax: 0,
            logits: Vec::new(),
            message: String::from_utf8_lossy(&payload).into_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let input = vec![0.0f32, 0.5, -1.25, 3.0];
        let mut wire = Vec::new();
        write_request(&mut wire, &input).unwrap();
        assert_eq!(wire.len(), HEADER_BYTES + 16);
        let mut decoded = Vec::new();
        let meta = read_request(&mut wire.as_slice(), 4, &mut decoded).unwrap();
        assert_eq!(decoded, input);
        assert_eq!(meta.tag, None);
    }

    #[test]
    fn tagged_request_round_trip() {
        let input = vec![1.0f32, -2.0];
        let mut wire = Vec::new();
        write_request_tagged(&mut wire, 0xDEAD_BEEF, &input).unwrap();
        assert_eq!(wire.len(), HEADER_V2_BYTES + 8);
        let mut decoded = Vec::new();
        let meta = read_request(&mut wire.as_slice(), 2, &mut decoded).unwrap();
        assert_eq!(decoded, input);
        assert_eq!(meta.tag, Some(0xDEAD_BEEF));
    }

    #[test]
    fn traced_read_reports_decode_time() {
        let input = vec![1.0f32; 8];
        let mut wire = Vec::new();
        write_request(&mut wire, &input).unwrap();
        let mut decoded = Vec::new();
        let meta = read_request_traced(&mut wire.as_slice(), 8, &mut decoded).unwrap();
        assert_eq!(decoded, input);
        assert!(meta.decode_us < 1_000_000, "decode took {}µs", meta.decode_us);
    }

    #[test]
    fn ok_reply_round_trip_both_versions() {
        let logits = vec![0.25f32, -0.5, 9.0];
        for tag in [None, Some(7u32)] {
            let mut wire = Vec::new();
            write_ok_reply(&mut wire, tag, 2, &logits).unwrap();
            let reply = read_reply(&mut wire.as_slice()).unwrap();
            assert_eq!(reply.status, Status::Ok);
            assert_eq!(reply.tag, tag);
            assert_eq!(reply.argmax, 2);
            assert_eq!(reply.logits, logits);
        }
    }

    #[test]
    fn error_reply_carries_message_and_tag() {
        for tag in [None, Some(41u32)] {
            let mut wire = Vec::new();
            write_error_reply(&mut wire, tag, Status::Busy, "queue full — retry").unwrap();
            let reply = read_reply(&mut wire.as_slice()).unwrap();
            assert_eq!(reply.status, Status::Busy);
            assert_eq!(reply.tag, tag);
            assert_eq!(reply.message, "queue full — retry");
        }
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut wire = Vec::new();
        write_request(&mut wire, &[1.0]).unwrap();
        wire[0] ^= 0xff;
        let mut buf = Vec::new();
        match read_request(&mut wire.as_slice(), 1, &mut buf) {
            Err(FrameError::Fatal(msg)) => assert!(msg.contains("magic"), "{msg}"),
            other => panic!("expected Fatal, got {other:?}"),
        }
        match parse_frame(&wire) {
            Err(FrameError::Fatal(msg)) => assert!(msg.contains("magic"), "{msg}"),
            other => panic!("expected Fatal, got {other:?}"),
        }
    }

    #[test]
    fn oversized_declaration_is_rejected_without_reading_payload() {
        // The tag must survive to the error so the server can attribute a
        // tagged BadRequest reply to the offending v2 request.
        for tag in [None, Some(3u32)] {
            let mut wire = Vec::new();
            wire.extend_from_slice(&MAGIC.to_le_bytes());
            wire.push(if tag.is_some() { VERSION_V2 } else { VERSION });
            wire.push(OP_INFER);
            if let Some(t) = tag {
                wire.extend_from_slice(&t.to_le_bytes());
            }
            wire.extend_from_slice(&u32::MAX.to_le_bytes());
            let mut buf = Vec::new();
            match read_request(&mut wire.as_slice(), 1, &mut buf) {
                Err(FrameError::TooLarge { tag: t, declared }) => {
                    assert_eq!(t, tag);
                    assert_eq!(declared, u32::MAX);
                }
                other => panic!("expected TooLarge, got {other:?}"),
            }
            match parse_frame(&wire) {
                Err(FrameError::TooLarge { tag: t, declared }) => {
                    assert_eq!(t, tag);
                    assert_eq!(declared, u32::MAX);
                }
                other => panic!("expected TooLarge, got {other:?}"),
            }
        }
    }

    #[test]
    fn barely_oversized_declaration_is_rejected_and_cap_is_accepted() {
        // Exactly at the cap: framing proceeds (parser asks for payload).
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC.to_le_bytes());
        wire.push(VERSION);
        wire.push(OP_INFER);
        wire.extend_from_slice(&MAX_FRAME_BYTES.to_le_bytes());
        assert!(matches!(parse_frame(&wire), Ok(None)));
        // One past the cap: typed rejection.
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC.to_le_bytes());
        wire.push(VERSION_V2);
        wire.push(OP_INFER);
        wire.extend_from_slice(&7u32.to_le_bytes());
        wire.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        match parse_frame(&wire) {
            Err(FrameError::TooLarge { tag, declared }) => {
                assert_eq!(tag, Some(7));
                assert_eq!(declared, MAX_FRAME_BYTES + 1);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn hostile_logit_count_in_reply_is_invalid_data() {
        // Ok reply whose payload declares u32::MAX logits but carries none:
        // the checked size comparison must reject it, not wrap.
        let mut wire = Vec::new();
        encode_header(&mut wire, Status::Ok.code(), None, 8);
        wire.extend_from_slice(&0u32.to_le_bytes());
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_reply(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_payload_length_is_recoverable() {
        let mut wire = Vec::new();
        write_request(&mut wire, &[1.0, 2.0]).unwrap();
        // Model expects 3 values: Bad (resyncable), not Fatal.
        let mut buf = Vec::new();
        match read_request(&mut wire.as_slice(), 3, &mut buf) {
            Err(FrameError::Bad(msg)) => assert!(msg.contains("expects"), "{msg}"),
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn disconnect_mid_frame_is_disconnected() {
        let mut wire = Vec::new();
        write_request(&mut wire, &[1.0, 2.0]).unwrap();
        wire.truncate(HEADER_BYTES + 3);
        let mut buf = Vec::new();
        assert!(matches!(
            read_request(&mut wire.as_slice(), 2, &mut buf),
            Err(FrameError::Disconnected)
        ));
        // And mid-header too.
        assert!(matches!(
            read_request(&mut [0x51u8, 0x53].as_slice(), 2, &mut buf),
            Err(FrameError::Disconnected)
        ));
    }

    #[test]
    fn incremental_parser_needs_exactly_the_full_frame() {
        let input = vec![0.5f32; 4];
        let mut wire = Vec::new();
        write_request_tagged(&mut wire, 9, &input).unwrap();
        // Every strict prefix: NeedMore, never an error.
        for cut in 0..wire.len() {
            assert!(
                matches!(parse_frame(&wire[..cut]), Ok(None)),
                "prefix of {cut} bytes must ask for more"
            );
        }
        let view = parse_frame(&wire).unwrap().expect("complete frame");
        assert_eq!(view.version, VERSION_V2);
        assert_eq!(view.tag, Some(9));
        assert_eq!(view.consumed, wire.len());
        assert_eq!(view.payload_len, 16);
        let mut decoded = Vec::new();
        decode_infer_payload(
            view.op,
            &wire[view.payload_start..view.payload_start + view.payload_len],
            4,
            &mut decoded,
        )
        .unwrap();
        assert_eq!(decoded, input);
    }

    #[test]
    fn incremental_parser_walks_interleaved_versions() {
        let mut wire = Vec::new();
        write_request(&mut wire, &[1.0]).unwrap();
        write_request_tagged(&mut wire, 5, &[2.0]).unwrap();
        write_request(&mut wire, &[3.0]).unwrap();
        let mut at = 0;
        let mut tags = Vec::new();
        while let Some(view) = parse_frame(&wire[at..]).unwrap() {
            tags.push(view.tag);
            at += view.consumed;
        }
        assert_eq!(at, wire.len());
        assert_eq!(tags, vec![None, Some(5), None]);
    }

    #[test]
    fn unknown_version_is_fatal() {
        let mut wire = Vec::new();
        write_request(&mut wire, &[1.0]).unwrap();
        wire[4] = 9;
        assert!(matches!(parse_frame(&wire), Err(FrameError::Fatal(_))));
        let mut buf = Vec::new();
        assert!(matches!(
            read_request(&mut wire.as_slice(), 1, &mut buf),
            Err(FrameError::Fatal(_))
        ));
    }

    #[test]
    fn routed_request_round_trip() {
        let input = vec![0.5f32, -1.5, 2.0];
        let mut wire = Vec::new();
        write_request_routed(&mut wire, 11, 2, &input).unwrap();
        assert_eq!(wire.len(), HEADER_V3_BYTES + 12);
        let mut decoded = Vec::new();
        let mut seen = Vec::new();
        let mut lookup = |m: Option<u32>| {
            seen.push(m);
            Some(3usize)
        };
        let meta = read_request_routed(&mut wire.as_slice(), &mut lookup, &mut decoded).unwrap();
        assert_eq!(decoded, input);
        assert_eq!(meta.tag, Some(11));
        assert_eq!(meta.model, Some(2));
        assert_eq!(seen, vec![Some(2)], "lookup runs exactly once with the frame's model id");
    }

    #[test]
    fn model_zero_routes_like_v2_on_a_single_model_reader() {
        let input = vec![1.0f32, 2.0];
        let mut wire = Vec::new();
        write_request_routed(&mut wire, 4, 0, &input).unwrap();
        let mut decoded = Vec::new();
        let meta = read_request(&mut wire.as_slice(), 2, &mut decoded).unwrap();
        assert_eq!(decoded, input);
        assert_eq!(meta.tag, Some(4));
        assert_eq!(meta.model, Some(0));
    }

    #[test]
    fn unknown_model_consumes_frame_and_keeps_stream_framed() {
        // Two frames back to back: the first names a model nobody serves,
        // the second is fine. The reader must consume the first payload and
        // then read the second frame cleanly.
        let mut wire = Vec::new();
        write_request_routed(&mut wire, 1, 7, &[9.0f32; 4]).unwrap();
        write_request_routed(&mut wire, 2, 0, &[1.0f32, 2.0]).unwrap();
        let mut r = wire.as_slice();
        let mut decoded = Vec::new();
        match read_request(&mut r, 2, &mut decoded) {
            Err(FrameError::UnknownModel { tag, model }) => {
                assert_eq!(tag, Some(1));
                assert_eq!(model, 7);
            }
            other => panic!("expected UnknownModel, got {other:?}"),
        }
        let meta = read_request(&mut r, 2, &mut decoded).unwrap();
        assert_eq!(meta.tag, Some(2));
        assert_eq!(decoded, vec![1.0, 2.0]);
    }

    #[test]
    fn incremental_parser_handles_v3_frames() {
        let input = vec![3.0f32; 2];
        let mut wire = Vec::new();
        write_request_routed(&mut wire, 21, 5, &input).unwrap();
        for cut in 0..wire.len() {
            assert!(
                matches!(parse_frame(&wire[..cut]), Ok(None)),
                "prefix of {cut} bytes must ask for more"
            );
        }
        let view = parse_frame(&wire).unwrap().expect("complete frame");
        assert_eq!(view.version, VERSION_V3);
        assert_eq!(view.tag, Some(21));
        assert_eq!(view.model, Some(5));
        assert_eq!(view.payload_start, HEADER_V3_BYTES);
        assert_eq!(view.consumed, wire.len());
        let mut decoded = Vec::new();
        decode_infer_payload(
            view.op,
            &wire[view.payload_start..view.payload_start + view.payload_len],
            2,
            &mut decoded,
        )
        .unwrap();
        assert_eq!(decoded, input);
    }

    #[test]
    fn unknown_model_status_round_trips() {
        let mut wire = Vec::new();
        write_error_reply(&mut wire, Some(9), Status::UnknownModel, "no model registered")
            .unwrap();
        let reply = read_reply(&mut wire.as_slice()).unwrap();
        assert_eq!(reply.status, Status::UnknownModel);
        assert_eq!(reply.tag, Some(9));
        assert!(reply.message.contains("no model"));
    }
}
