//! Length-prefixed binary wire protocol.
//!
//! Every frame — request or reply — starts with the same 10-byte header:
//!
//! ```text
//! offset  size  field
//! 0       4     magic   = 0x434E5351 ("QSNC" as little-endian bytes)
//! 4       1     version = 1
//! 5       1     request: op (0 = infer) / reply: status code
//! 6       4     payload length in bytes, little-endian
//! 10      len   payload
//! ```
//!
//! An infer request's payload is the example as little-endian `f32`s and
//! must be exactly `4 · input_len` bytes for the model being served. An
//! [`Status::Ok`] reply's payload is `argmax: u32`, `n: u32`, then `n`
//! little-endian `f32` logits; every other status carries a UTF-8 error
//! message. Payloads are capped at [`MAX_FRAME_BYTES`]; a frame declaring
//! more than that (or a bad magic/version) cannot be resynchronized and the
//! server closes the connection after replying.

use std::io::{self, Read, Write};
use std::time::Instant;

/// Frame magic: the bytes `QSNC` read as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"QSNC");

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Request opcode: run inference on one example.
pub const OP_INFER: u8 = 0;

/// Upper bound on a frame payload; anything larger is rejected unread.
pub const MAX_FRAME_BYTES: u32 = 4 << 20;

/// Bytes in the fixed frame header.
pub const HEADER_BYTES: usize = 10;

/// Reply status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Inference ran; payload carries argmax + logits.
    Ok,
    /// The bounded request queue was full — retry later (backpressure).
    Busy,
    /// The request was malformed; payload carries a message.
    BadRequest,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
}

impl Status {
    fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Busy => 1,
            Status::BadRequest => 2,
            Status::ShuttingDown => 3,
        }
    }

    fn from_code(code: u8) -> Option<Status> {
        match code {
            0 => Some(Status::Ok),
            1 => Some(Status::Busy),
            2 => Some(Status::BadRequest),
            3 => Some(Status::ShuttingDown),
            _ => None,
        }
    }
}

/// A decoded reply frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Outcome of the request.
    pub status: Status,
    /// Index of the largest logit (valid when `status` is [`Status::Ok`]).
    pub argmax: u32,
    /// Class logits (empty unless `status` is [`Status::Ok`]).
    pub logits: Vec<f32>,
    /// Error message (empty when `status` is [`Status::Ok`]).
    pub message: String,
}

/// Why reading a request frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection (cleanly or mid-frame).
    Disconnected,
    /// Well-framed but invalid request; the connection can continue.
    Bad(String),
    /// Unframeable input (bad magic/version, oversized declaration); the
    /// connection cannot be resynchronized and must close after replying.
    Fatal(String),
    /// Transport error.
    Io(io::Error),
}

fn read_exact_or_disconnect(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(FrameError::Disconnected),
        Err(e) => Err(FrameError::Io(e)),
    }
}

/// Server side: reads one infer request, validating framing and that the
/// payload holds exactly `input_len` `f32`s, which are appended to `input`
/// (cleared first). Payload bytes stage through the thread's
/// [`qsnc_tensor::scratch`] arena, so a persistent connection thread reads
/// allocation-free once warm.
pub fn read_request(
    r: &mut impl Read,
    input_len: usize,
    input: &mut Vec<f32>,
) -> Result<(), FrameError> {
    read_request_inner(r, input_len, input, false).map(|_| ())
}

/// [`read_request`] plus decode timing: on success returns the
/// microseconds spent reading and parsing the payload *after* the header
/// arrived. Header wait is excluded on purpose — on a keep-alive
/// connection it is idle time between requests, not decode work. The
/// serving layer feeds the result into the `serve.stage.decode.us`
/// quantile sketch.
pub fn read_request_traced(
    r: &mut impl Read,
    input_len: usize,
    input: &mut Vec<f32>,
) -> Result<u64, FrameError> {
    read_request_inner(r, input_len, input, true)
}

fn read_request_inner(
    r: &mut impl Read,
    input_len: usize,
    input: &mut Vec<f32>,
    timed: bool,
) -> Result<u64, FrameError> {
    let mut header = [0u8; HEADER_BYTES];
    read_exact_or_disconnect(r, &mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(FrameError::Fatal(format!(
            "bad magic 0x{magic:08x} (expected 0x{MAGIC:08x})"
        )));
    }
    if header[4] != VERSION {
        return Err(FrameError::Fatal(format!(
            "unsupported protocol version {} (expected {VERSION})",
            header[4]
        )));
    }
    let op = header[5];
    let len = u32::from_le_bytes(header[6..10].try_into().unwrap());
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Fatal(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let t0 = timed.then(Instant::now);
    // From here the payload length is trusted: consume it fully so the
    // stream stays framed even when the request is rejected.
    let mut payload = qsnc_tensor::scratch::take_u8(len as usize);
    let read = read_exact_or_disconnect(r, &mut payload);
    let result = read.and_then(|()| {
        if op != OP_INFER {
            return Err(FrameError::Bad(format!("unknown opcode {op}")));
        }
        if payload.len() != 4 * input_len {
            return Err(FrameError::Bad(format!(
                "payload is {} bytes, model expects {} ({} f32 values)",
                payload.len(),
                4 * input_len,
                input_len
            )));
        }
        input.clear();
        input.extend(
            payload
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap())),
        );
        Ok(t0.map_or(0, |t| t.elapsed().as_micros() as u64))
    });
    qsnc_tensor::scratch::put_u8(payload);
    result
}

fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    let mut frame = qsnc_tensor::scratch::take_u8(HEADER_BYTES + payload.len());
    frame[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    frame[4] = VERSION;
    frame[5] = kind;
    frame[6..10].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    frame[HEADER_BYTES..].copy_from_slice(payload);
    let result = w.write_all(&frame).and_then(|()| w.flush());
    qsnc_tensor::scratch::put_u8(frame);
    result
}

/// Client side: writes one infer request frame.
pub fn write_request(w: &mut impl Write, input: &[f32]) -> io::Result<()> {
    let mut payload = qsnc_tensor::scratch::take_u8(4 * input.len());
    for (chunk, v) in payload.chunks_exact_mut(4).zip(input) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
    let result = write_frame(w, OP_INFER, &payload);
    qsnc_tensor::scratch::put_u8(payload);
    result
}

/// Server side: writes an [`Status::Ok`] reply with argmax + logits.
pub fn write_ok_reply(w: &mut impl Write, argmax: u32, logits: &[f32]) -> io::Result<()> {
    let mut payload = qsnc_tensor::scratch::take_u8(8 + 4 * logits.len());
    payload[0..4].copy_from_slice(&argmax.to_le_bytes());
    payload[4..8].copy_from_slice(&(logits.len() as u32).to_le_bytes());
    for (chunk, v) in payload[8..].chunks_exact_mut(4).zip(logits) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
    let result = write_frame(w, Status::Ok.code(), &payload);
    qsnc_tensor::scratch::put_u8(payload);
    result
}

/// Server side: writes an error reply carrying `message`.
pub fn write_error_reply(w: &mut impl Write, status: Status, message: &str) -> io::Result<()> {
    debug_assert_ne!(status, Status::Ok, "error replies carry non-Ok statuses");
    write_frame(w, status.code(), message.as_bytes())
}

/// Client side: reads one reply frame.
pub fn read_reply(r: &mut impl Read) -> io::Result<Reply> {
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC || header[4] != VERSION {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad reply header"));
    }
    let status = Status::from_code(header[5])
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unknown status"))?;
    let len = u32::from_le_bytes(header[6..10].try_into().unwrap());
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "oversized reply"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    match status {
        Status::Ok => {
            if payload.len() < 8 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated Ok reply"));
            }
            let argmax = u32::from_le_bytes(payload[0..4].try_into().unwrap());
            let n = u32::from_le_bytes(payload[4..8].try_into().unwrap()) as usize;
            if payload.len() != 8 + 4 * n {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "bad logits length"));
            }
            let logits = payload[8..]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Ok(Reply { status, argmax, logits, message: String::new() })
        }
        _ => Ok(Reply {
            status,
            argmax: 0,
            logits: Vec::new(),
            message: String::from_utf8_lossy(&payload).into_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let input = vec![0.0f32, 0.5, -1.25, 3.0];
        let mut wire = Vec::new();
        write_request(&mut wire, &input).unwrap();
        assert_eq!(wire.len(), HEADER_BYTES + 16);
        let mut decoded = Vec::new();
        read_request(&mut wire.as_slice(), 4, &mut decoded).unwrap();
        assert_eq!(decoded, input);
    }

    #[test]
    fn traced_read_reports_decode_time() {
        let input = vec![1.0f32; 8];
        let mut wire = Vec::new();
        write_request(&mut wire, &input).unwrap();
        let mut decoded = Vec::new();
        let us = read_request_traced(&mut wire.as_slice(), 8, &mut decoded).unwrap();
        assert_eq!(decoded, input);
        assert!(us < 1_000_000, "decode of an in-memory frame took {us}µs");
    }

    #[test]
    fn ok_reply_round_trip() {
        let logits = vec![0.25f32, -0.5, 9.0];
        let mut wire = Vec::new();
        write_ok_reply(&mut wire, 2, &logits).unwrap();
        let reply = read_reply(&mut wire.as_slice()).unwrap();
        assert_eq!(reply.status, Status::Ok);
        assert_eq!(reply.argmax, 2);
        assert_eq!(reply.logits, logits);
    }

    #[test]
    fn error_reply_carries_message() {
        let mut wire = Vec::new();
        write_error_reply(&mut wire, Status::Busy, "queue full — retry").unwrap();
        let reply = read_reply(&mut wire.as_slice()).unwrap();
        assert_eq!(reply.status, Status::Busy);
        assert_eq!(reply.message, "queue full — retry");
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut wire = Vec::new();
        write_request(&mut wire, &[1.0]).unwrap();
        wire[0] ^= 0xff;
        let mut buf = Vec::new();
        match read_request(&mut wire.as_slice(), 1, &mut buf) {
            Err(FrameError::Fatal(msg)) => assert!(msg.contains("magic"), "{msg}"),
            other => panic!("expected Fatal, got {other:?}"),
        }
    }

    #[test]
    fn oversized_declaration_is_fatal_without_reading_payload() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC.to_le_bytes());
        wire.push(VERSION);
        wire.push(OP_INFER);
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut buf = Vec::new();
        match read_request(&mut wire.as_slice(), 1, &mut buf) {
            Err(FrameError::Fatal(msg)) => assert!(msg.contains("cap"), "{msg}"),
            other => panic!("expected Fatal, got {other:?}"),
        }
    }

    #[test]
    fn wrong_payload_length_is_recoverable() {
        let mut wire = Vec::new();
        write_request(&mut wire, &[1.0, 2.0]).unwrap();
        // Model expects 3 values: Bad (resyncable), not Fatal.
        let mut buf = Vec::new();
        match read_request(&mut wire.as_slice(), 3, &mut buf) {
            Err(FrameError::Bad(msg)) => assert!(msg.contains("expects"), "{msg}"),
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn disconnect_mid_frame_is_disconnected() {
        let mut wire = Vec::new();
        write_request(&mut wire, &[1.0, 2.0]).unwrap();
        wire.truncate(HEADER_BYTES + 3);
        let mut buf = Vec::new();
        assert!(matches!(
            read_request(&mut wire.as_slice(), 2, &mut buf),
            Err(FrameError::Disconnected)
        ));
        // And mid-header too.
        assert!(matches!(
            read_request(&mut [0x51u8, 0x53].as_slice(), 2, &mut buf),
            Err(FrameError::Disconnected)
        ));
    }
}
