//! The epoll readiness front end: a small number of event-loop threads own
//! every client socket, replacing thread-per-connection blocking I/O.
//!
//! ## Shape
//!
//! Loop 0 owns the (non-blocking) listener and distributes accepted
//! connections round-robin across all loops (`QSNC_SERVE_LOOPS`); a
//! connection lives on exactly one loop for its whole life, so no
//! per-connection state is ever shared between loop threads. Each loop
//! drives a level-triggered epoll instance ([`crate::sys`]) over:
//!
//! - its **connections** — each a read/write state machine: bytes
//!   accumulate in a per-connection buffer, [`protocol::parse_frame`]
//!   walks complete frames out of it (v1 and v2 interleave freely), and
//!   replies are encoded into a per-connection output buffer that flushes
//!   as far as `EAGAIN` allows, finishing under `EPOLLOUT`;
//! - its **wakeup pipe** — workers finish a batch, push completions onto
//!   the owning loop's queue ([`LoopShared::complete`]) and write one byte
//!   to wake it;
//! - (loop 0) the **listener**.
//!
//! ## Multiplexing and backpressure
//!
//! A v2 frame carries a client-chosen tag; up to
//! [`LoopConfig::max_inflight`] requests may be in flight per connection
//! and replies return tagged in completion order — out of order is
//! expected and correct. The per-connection budget answers
//! [`Status::Busy`] (tagged) when exhausted; the bounded admission queue
//! answers `Busy` exactly as the threaded front end does; and a
//! connection whose output buffer passes the high-water mark stops being
//! *read* (its `EPOLLIN` interest drops) until the client drains replies,
//! so a slow reader throttles itself through TCP instead of growing
//! server memory. A v1 (untagged) frame gates parsing until its reply is
//! written — the reply is only identifiable by arrival order — which
//! preserves exact PR 4 lockstep semantics on the same port.
//!
//! ## Drain
//!
//! Shutdown flips `running`, wakes every loop, and each loop: deregisters
//! the listener, stops parsing new frames, answers everything already
//! admitted (workers keep running until the loops exit), flushes every
//! output buffer, then closes its connections and returns. Unparsed bytes
//! buffered behind the drain point are dropped — those requests were
//! never admitted. A client that stopped reading cannot stall the drain
//! past [`DRAIN_FLUSH_LIMIT`].
//!
//! Telemetry lands under `serve.conn.*` (connection-scoped gauges and
//! counters) and `serve.loop.*` (loop-scoped counters and the dispatch
//! sketch); see docs/telemetry.md.

use crate::batcher::{Request, ReplyRoute, WorkerReply, QUEUE_DEPTH_EDGES};
use crate::protocol::{self, FrameError, Status};
use crate::registry::{Lease, ModelEntry, ModelRegistry, ModelVersion};
use crate::sys::{
    epoll_create, epoll_ctl, epoll_wait, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT,
    EPOLLRDHUP, EPOLL_CTL_ADD, EPOLL_CTL_DEL, EPOLL_CTL_MOD,
};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, OwnedFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Event cookie for the listener fd (loop 0 only).
const LISTENER_DATA: u64 = u64::MAX;
/// Event cookie for the wakeup pipe.
const WAKE_DATA: u64 = u64::MAX - 1;

/// Events fetched per `epoll_wait` call.
const MAX_EVENTS: usize = 256;

/// Bytes read from a socket per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// Unparsed-input cap per dispatch round — bounds per-connection work per
/// iteration for fairness; level-triggered epoll re-arms for the rest.
const RBUF_ROUND_LIMIT: usize = 1024 * 1024;

/// Output-buffer high-water mark: above this many pending reply bytes the
/// connection's read interest drops until the client drains.
const OUT_HIGH_WATER: usize = 256 * 1024;

/// Compact the output buffer once this many bytes are dead at its front.
const OUT_COMPACT: usize = 64 * 1024;

/// Longest a drain waits for slow readers to take their flushed replies.
const DRAIN_FLUSH_LIMIT: Duration = Duration::from_secs(5);

/// Histogram edges for the `serve.conn.active` gauge.
const CONN_ACTIVE_EDGES: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0];

/// Histogram edges for the `serve.conn.inflight` gauge.
const CONN_INFLIGHT_EDGES: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Front-end parameters resolved by [`crate::Server::spawn`].
#[derive(Clone)]
pub(crate) struct LoopConfig {
    /// The model table: frames resolve their model id (default for v1/v2)
    /// against it, payloads are validated against the resolved engine's
    /// input length, and admission leases the engine snapshot.
    pub(crate) registry: Arc<ModelRegistry>,
    /// In-flight request budget per connection (tagged + untagged).
    pub(crate) max_inflight: usize,
    /// Connection-slot capacity per loop; accepts beyond it are refused
    /// with [`Status::Busy`].
    pub(crate) max_conns: usize,
    /// Slow-trace threshold in microseconds (`None` disables capture).
    pub(crate) slow_us: Option<u64>,
}

/// The half of an event loop that other threads touch: workers push
/// completions here, loop 0 pushes handed-off connections, and
/// [`crate::Server::drain`] wakes the loop.
pub(crate) struct LoopShared {
    completions: Mutex<Vec<Completion>>,
    inbound: Mutex<Vec<TcpStream>>,
    wake_tx: UnixStream,
}

impl LoopShared {
    /// Wakes the owning loop (a 1-byte write; a full pipe already has a
    /// wakeup pending, so `WouldBlock` is success).
    pub(crate) fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1u8]);
    }

    /// Queues a finished reply for the owning loop and wakes it.
    pub(crate) fn complete(&self, completion: Completion) {
        if let Ok(mut q) = self.completions.lock() {
            q.push(completion);
        }
        self.wake();
    }

    fn push_inbound(&self, stream: TcpStream) {
        if let Ok(mut q) = self.inbound.lock() {
            q.push(stream);
        }
        self.wake();
    }
}

/// A finished inference travelling from a worker back to the loop that
/// owns the connection.
pub(crate) struct Completion {
    /// Connection slot index on the owning loop.
    pub(crate) conn: u32,
    /// Slot generation at admission time; a mismatch means the connection
    /// died first and the reply is dropped.
    pub(crate) generation: u32,
    /// The client's request tag (`None` for v1 frames).
    pub(crate) tag: Option<u32>,
    /// The inference result plus worker-side stage timings.
    pub(crate) reply: WorkerReply,
    /// Admission timestamp (`serve.latency_us` start).
    pub(crate) enqueued: Instant,
    /// Front-end decode time for the slow trace.
    pub(crate) decode_us: u64,
    /// Process-wide request id for the slow trace.
    pub(crate) id: u64,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    generation: u32,
    /// Accumulated unparsed input; `rpos` marks how far parsing got.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Encoded-but-unwritten reply bytes; `wpos` marks how far the kernel
    /// accepted them.
    out: Vec<u8>,
    wpos: usize,
    /// Tags currently in flight (linear scan — the budget is small).
    tags: Vec<u32>,
    /// Untagged (v1) requests in flight; > 0 gates parsing.
    untagged: usize,
    /// Peer sent EOF / half-closed, or a fatal frame stopped parsing.
    read_closed: bool,
    /// Fatal frame seen: flush what is owed, then close.
    closing: bool,
    /// Interest mask currently registered with epoll.
    interest: u32,
}

impl Conn {
    fn inflight(&self) -> usize {
        self.tags.len() + self.untagged
    }

    fn out_pending(&self) -> usize {
        self.out.len() - self.wpos
    }

    fn cookie(&self, idx: usize) -> u64 {
        (u64::from(self.generation) << 32) | idx as u64
    }
}

/// Everything one event-loop thread owns.
struct EventLoop {
    index: usize,
    ep: OwnedFd,
    wake_rx: UnixStream,
    shared: Arc<LoopShared>,
    /// Every loop's shared half, for round-robin dispatch from loop 0.
    peers: Vec<Arc<LoopShared>>,
    listener: Option<TcpListener>,
    conns: Vec<Option<Conn>>,
    /// Slot generations (bumped on free so stale completions miss).
    gens: Vec<u32>,
    free: Vec<u32>,
    /// Admitted-but-unanswered requests across this loop's connections.
    inflight: usize,
    next_rr: usize,
    cfg: LoopConfig,
    running: Arc<AtomicBool>,
    req_tx: SyncSender<Request>,
    depth: Arc<AtomicUsize>,
    /// Process-wide active-connection gauge (shared across loops).
    active: Arc<AtomicUsize>,
    draining: Option<Instant>,
}

/// The join handles plus each loop's shared half, as returned by [`spawn`].
pub(crate) type SpawnedLoops = (Vec<JoinHandle<()>>, Vec<Arc<LoopShared>>);

/// Binds the event-loop front end: `loops` threads, loop 0 owning
/// `listener`. Returns the join handles and each loop's shared half.
pub(crate) fn spawn(
    listener: TcpListener,
    loops: usize,
    cfg: LoopConfig,
    running: Arc<AtomicBool>,
    req_tx: SyncSender<Request>,
    depth: Arc<AtomicUsize>,
    active: Arc<AtomicUsize>,
) -> io::Result<SpawnedLoops> {
    listener.set_nonblocking(true)?;
    let mut shareds = Vec::with_capacity(loops);
    let mut wake_rxs = Vec::with_capacity(loops);
    for _ in 0..loops {
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        shareds.push(Arc::new(LoopShared {
            completions: Mutex::new(Vec::new()),
            inbound: Mutex::new(Vec::new()),
            wake_tx,
        }));
        wake_rxs.push(wake_rx);
    }
    let mut handles = Vec::with_capacity(loops);
    for (index, wake_rx) in wake_rxs.into_iter().enumerate() {
        let ep = epoll_create()?;
        epoll_ctl(ep.as_raw_fd(), EPOLL_CTL_ADD, wake_rx.as_raw_fd(), EPOLLIN, WAKE_DATA)?;
        let listener = if index == 0 {
            let l = listener.try_clone()?;
            epoll_ctl(ep.as_raw_fd(), EPOLL_CTL_ADD, l.as_raw_fd(), EPOLLIN, LISTENER_DATA)?;
            Some(l)
        } else {
            None
        };
        let lp = EventLoop {
            index,
            ep,
            wake_rx,
            shared: Arc::clone(&shareds[index]),
            peers: shareds.clone(),
            listener,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            inflight: 0,
            next_rr: 0,
            cfg: cfg.clone(),
            running: Arc::clone(&running),
            req_tx: req_tx.clone(),
            depth: Arc::clone(&depth),
            active: Arc::clone(&active),
            draining: None,
        };
        handles.push(
            std::thread::Builder::new()
                .name(format!("qsnc-serve-loop-{index}"))
                .spawn(move || lp.run())?,
        );
    }
    Ok((handles, shareds))
}

impl EventLoop {
    fn run(mut self) {
        let mut events = [EpollEvent::zeroed(); MAX_EVENTS];
        loop {
            // Block indefinitely while serving — every state change that
            // matters arrives as an event (sockets, wakeup pipe). While
            // draining, poll so the flush deadline is honored even if a
            // slow reader never becomes writable.
            let timeout_ms = if self.draining.is_some() { 100 } else { -1 };
            let n = match epoll_wait(self.ep.as_raw_fd(), &mut events, timeout_ms) {
                Ok(n) => n,
                Err(_) => break, // epoll fd itself failed: unrecoverable
            };
            let tele = qsnc_telemetry::enabled();
            let t0 = tele.then(Instant::now);
            if tele {
                qsnc_telemetry::counter_add("serve.loop.wakeups", 1);
                qsnc_telemetry::counter_add("serve.loop.events", n as u64);
            }
            for ev in &events[..n] {
                // Copy out of the (packed) event before use.
                let data = { ev.data };
                let bits = { ev.events };
                match data {
                    LISTENER_DATA => self.accept_ready(),
                    WAKE_DATA => self.drain_wake_pipe(),
                    _ => self.conn_ready(data, bits),
                }
            }
            self.adopt_inbound();
            self.process_completions();
            if self.draining.is_none() && !self.running.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            if let Some(t0) = t0 {
                qsnc_telemetry::quantile_observe(
                    "serve.loop.dispatch.us",
                    t0.elapsed().as_micros() as f64,
                );
            }
            if self.draining.is_some() && self.try_finish_drain() {
                break;
            }
        }
    }

    // ---- accept path ---------------------------------------------------

    fn accept_ready(&mut self) {
        let accepting = self.running.load(Ordering::SeqCst);
        loop {
            let Some(listener) = self.listener.as_ref() else { return };
            match listener.accept() {
                Ok((stream, _)) => {
                    if !accepting {
                        // A client racing shutdown: tell it, don't serve it.
                        let mut stream = stream;
                        let _ = stream.set_nonblocking(false);
                        let _ = protocol::write_error_reply(
                            &mut stream,
                            None,
                            Status::ShuttingDown,
                            "server shutting down",
                        );
                        continue;
                    }
                    qsnc_telemetry::counter_add("serve.connections", 1);
                    let target = self.next_rr % self.peers.len();
                    self.next_rr = self.next_rr.wrapping_add(1);
                    if target == self.index {
                        self.register_conn(stream);
                    } else {
                        self.peers[target].push_inbound(stream);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // transient accept error; epoll will retry
            }
        }
    }

    fn adopt_inbound(&mut self) {
        let streams = match self.shared.inbound.lock() {
            Ok(mut q) => std::mem::take(&mut *q),
            Err(_) => return,
        };
        for stream in streams {
            self.register_conn(stream);
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        let live = self.conns.len() - self.free.len();
        if live >= self.cfg.max_conns || self.draining.is_some() {
            qsnc_telemetry::counter_add("serve.conn.refused", 1);
            let mut stream = stream;
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let _ = protocol::write_error_reply(
                &mut stream,
                None,
                Status::Busy,
                "connection limit reached: retry elsewhere",
            );
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let idx = match self.free.pop() {
            Some(idx) => idx as usize,
            None => {
                self.conns.push(None);
                self.gens.push(0);
                self.conns.len() - 1
            }
        };
        let conn = Conn {
            stream,
            generation: self.gens[idx],
            rbuf: Vec::new(),
            rpos: 0,
            out: Vec::new(),
            wpos: 0,
            tags: Vec::new(),
            untagged: 0,
            read_closed: false,
            closing: false,
            interest: EPOLLIN | EPOLLRDHUP,
        };
        if epoll_ctl(
            self.ep.as_raw_fd(),
            EPOLL_CTL_ADD,
            conn.stream.as_raw_fd(),
            conn.interest,
            conn.cookie(idx),
        )
        .is_err()
        {
            self.free.push(idx as u32);
            return;
        }
        let now_active = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        if qsnc_telemetry::enabled() {
            qsnc_telemetry::observe("serve.conn.active", now_active as f64, CONN_ACTIVE_EDGES);
        }
        self.conns[idx] = Some(conn);
    }

    fn drop_conn(&mut self, idx: usize, conn: Conn) {
        // Requests this connection still has in flight will complete and
        // be discarded by the generation check; account for them now so
        // the drain criterion cannot wedge on a dead client.
        self.inflight -= conn.inflight();
        let _ = epoll_ctl(self.ep.as_raw_fd(), EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, 0);
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx as u32);
        self.active.fetch_sub(1, Ordering::Relaxed);
        // `conn` drops here, closing the socket.
    }

    // ---- readiness dispatch --------------------------------------------

    fn conn_ready(&mut self, data: u64, bits: u32) {
        let idx = (data & 0xFFFF_FFFF) as usize;
        let gen = (data >> 32) as u32;
        let Some(slot) = self.conns.get_mut(idx) else { return };
        let Some(mut conn) = slot.take() else { return };
        if conn.generation != gen {
            *slot = Some(conn); // stale event for a reused slot
            return;
        }
        let mut alive = bits & EPOLLERR == 0;
        if alive && bits & EPOLLOUT != 0 {
            alive = self.flush(&mut conn);
        }
        if alive && bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0 {
            alive = self.fill(&mut conn);
        }
        if bits & EPOLLHUP != 0 {
            // Full close from the peer: replies have nowhere to go.
            alive = false;
        }
        self.settle(idx, conn, alive);
    }

    /// Runs the parse→flush cycle to quiescence, then parks the connection
    /// back in its slot — or drops it if it is dead or finished (nothing
    /// owed in either direction).
    ///
    /// The cycle must live here, after every kind of progress, because
    /// nothing external re-triggers parsing of bytes already pulled into
    /// `rbuf`: a reply landing (lifting the v1 lockstep gate) or a flush
    /// draining the output buffer below its high-water mark can each make
    /// previously-gated buffered frames parseable with no further epoll
    /// event coming.
    fn settle(&mut self, idx: usize, mut conn: Conn, mut alive: bool) {
        while alive {
            let unparsed = conn.rbuf.len() - conn.rpos;
            if unparsed > 0 && !self.parse_gated(&conn) {
                self.parse(idx, &mut conn);
            }
            alive = self.flush(&mut conn);
            if conn.rbuf.len() - conn.rpos == unparsed {
                break; // no parsing progress: partial frame or gated
            }
        }
        let idle = conn.inflight() == 0;
        let no_more_input = conn.closing || conn.read_closed;
        let done = no_more_input && idle && conn.out_pending() == 0;
        if !alive || done {
            self.drop_conn(idx, conn);
            return;
        }
        self.update_interest(&mut conn, idx);
        self.conns[idx] = Some(conn);
    }

    fn desired_interest(&self, conn: &Conn) -> u32 {
        let mut want = 0;
        if !self.read_gated(conn) {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if conn.out_pending() > 0 {
            want |= EPOLLOUT;
        }
        want
    }

    fn update_interest(&self, conn: &mut Conn, idx: usize) {
        let want = self.desired_interest(conn);
        if want != conn.interest
            && epoll_ctl(
                self.ep.as_raw_fd(),
                EPOLL_CTL_MOD,
                conn.stream.as_raw_fd(),
                want,
                conn.cookie(idx),
            )
            .is_ok()
        {
            conn.interest = want;
        }
    }

    /// True when frames already buffered in `rbuf` must not be parsed
    /// right now: a v1 request is in lockstep flight, a fatal frame closed
    /// the stream, the output buffer is over its high-water mark, or the
    /// server is draining. [`Self::settle`] re-runs the parse the moment a
    /// gate lifts.
    fn parse_gated(&self, conn: &Conn) -> bool {
        conn.untagged > 0
            || conn.closing
            || conn.out_pending() > OUT_HIGH_WATER
            || self.draining.is_some()
    }

    /// True when no further *socket* input should be consumed. Everything
    /// that gates parsing also gates reading (no point buffering what
    /// cannot be parsed), plus EOF. Level-triggered epoll makes gating
    /// safe: unread socket bytes re-arm `EPOLLIN` as soon as the interest
    /// returns.
    fn read_gated(&self, conn: &Conn) -> bool {
        self.parse_gated(conn) || conn.read_closed
    }

    // ---- read / parse / admit ------------------------------------------

    /// Pulls readable bytes into `rbuf`. Returns false if the transport
    /// failed hard.
    fn fill(&mut self, conn: &mut Conn) -> bool {
        if self.read_gated(conn) {
            return true;
        }
        let mut chunk = qsnc_tensor::scratch::take_u8(READ_CHUNK);
        let mut alive = true;
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    if conn.rbuf.len() - conn.rpos > RBUF_ROUND_LIMIT {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    alive = false;
                    break;
                }
            }
        }
        qsnc_tensor::scratch::put_u8(chunk);
        alive
    }

    /// Walks complete frames out of `rbuf`, admitting or error-replying
    /// each, until the buffer runs dry or a gate closes.
    fn parse(&mut self, idx: usize, conn: &mut Conn) {
        let tele = qsnc_telemetry::enabled();
        let mut hit_need_more = false;
        loop {
            if self.parse_gated(conn) {
                break;
            }
            let t0 = tele.then(Instant::now);
            match protocol::parse_frame(&conn.rbuf[conn.rpos..]) {
                Ok(None) => {
                    hit_need_more = true;
                    break;
                }
                Ok(Some(view)) => {
                    let Some((entry, version)) = self.cfg.registry.resolve(view.model) else {
                        // Unknown model id. The frame's length parsed fine,
                        // so consume it whole and answer the tag: the
                        // stream stays framed and the connection survives.
                        qsnc_telemetry::counter_add("serve.model.unknown", 1);
                        qsnc_telemetry::counter_add("serve.bad_requests", 1);
                        protocol::encode_error_reply(
                            &mut conn.out,
                            view.tag,
                            Status::UnknownModel,
                            &FrameError::unknown_model_message(view.model.unwrap_or(0)),
                        );
                        conn.rpos += view.consumed;
                        continue;
                    };
                    let input_len = version.input_len;
                    let start = conn.rpos + view.payload_start;
                    let payload = &conn.rbuf[start..start + view.payload_len];
                    let mut input = Vec::with_capacity(input_len);
                    let decoded =
                        protocol::decode_infer_payload(view.op, payload, input_len, &mut input);
                    conn.rpos += view.consumed;
                    match decoded {
                        Ok(()) => {
                            let decode_us =
                                t0.map_or(0, |t| t.elapsed().as_micros() as u64);
                            self.admit(idx, conn, view.tag, input, decode_us, entry, version, tele);
                        }
                        Err(FrameError::Bad(msg)) => {
                            qsnc_telemetry::counter_add("serve.bad_requests", 1);
                            protocol::encode_error_reply(
                                &mut conn.out,
                                view.tag,
                                Status::BadRequest,
                                &msg,
                            );
                        }
                        // decode_infer_payload only returns Bad.
                        Err(_) => unreachable!("payload decode cannot fail any other way"),
                    }
                }
                Err(FrameError::TooLarge { tag, declared }) => {
                    // The tag parsed before the length check, so a v2
                    // client gets the rejection attributed to its request
                    // (not a bare drop); the stream still can't be
                    // resynchronized past an unread payload, so flush and
                    // close.
                    qsnc_telemetry::counter_add("serve.bad_requests", 1);
                    protocol::encode_error_reply(
                        &mut conn.out,
                        tag,
                        Status::BadRequest,
                        &FrameError::too_large_message(declared),
                    );
                    conn.closing = true;
                    break;
                }
                Err(FrameError::Fatal(msg)) => {
                    qsnc_telemetry::counter_add("serve.bad_requests", 1);
                    protocol::encode_error_reply(&mut conn.out, None, Status::BadRequest, &msg);
                    conn.closing = true;
                    break;
                }
                // parse_frame only returns Fatal/TooLarge errors.
                Err(_) => unreachable!("parse_frame cannot fail any other way"),
            }
        }
        if conn.rpos == conn.rbuf.len() {
            conn.rbuf.clear();
            conn.rpos = 0;
        } else if conn.rpos >= OUT_COMPACT {
            conn.rbuf.drain(..conn.rpos);
            conn.rpos = 0;
        }
        // A half-closed peer can never complete a partial trailing frame:
        // discard it so the connection can retire once replies flush.
        if hit_need_more && conn.read_closed {
            conn.rbuf.clear();
            conn.rpos = 0;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn admit(
        &mut self,
        idx: usize,
        conn: &mut Conn,
        tag: Option<u32>,
        input: Vec<f32>,
        decode_us: u64,
        entry: Arc<ModelEntry>,
        version: Arc<ModelVersion>,
        tele: bool,
    ) {
        if tag.is_some_and(|t| conn.tags.contains(&t)) {
            qsnc_telemetry::counter_add("serve.bad_requests", 1);
            protocol::encode_error_reply(
                &mut conn.out,
                tag,
                Status::BadRequest,
                &format!(
                    "tag {} is already in flight on this connection",
                    tag.unwrap_or_default()
                ),
            );
            return;
        }
        if conn.inflight() >= self.cfg.max_inflight {
            qsnc_telemetry::counter_add("serve.conn.rejected", 1);
            protocol::encode_error_reply(
                &mut conn.out,
                tag,
                Status::Busy,
                "per-connection in-flight budget exhausted: drain replies and retry",
            );
            return;
        }
        // The quota tier: this model at capacity answers Busy without
        // touching the shared queue.
        let Some(lease) = Lease::acquire(&entry, &version) else {
            qsnc_telemetry::counter_add(&entry.tele_rejected, 1);
            protocol::encode_error_reply(
                &mut conn.out,
                tag,
                Status::Busy,
                "model admission quota reached: retry",
            );
            return;
        };
        let id = if tele { crate::next_request_id() } else { 0 };
        let enqueued = Instant::now();
        // Count before sending so the batcher's decrement can never
        // observe the admission before the gauge does.
        let occupied = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        let req = Request {
            input,
            lease: Some(lease),
            route: ReplyRoute::Loop {
                shared: Arc::clone(&self.shared),
                conn: idx as u32,
                generation: conn.generation,
                tag,
            },
            enqueued,
            decode_us,
            id,
        };
        match self.req_tx.try_send(req) {
            Ok(()) => {
                self.inflight += 1;
                match tag {
                    Some(t) => conn.tags.push(t),
                    None => conn.untagged += 1,
                }
                if tele {
                    qsnc_telemetry::counter_add("serve.requests", 1);
                    qsnc_telemetry::counter_add(&entry.tele_requests, 1);
                    qsnc_telemetry::quantile_observe("serve.stage.decode.us", decode_us as f64);
                    qsnc_telemetry::observe("serve.queue.depth", occupied as f64, QUEUE_DEPTH_EDGES);
                    qsnc_telemetry::observe(
                        "serve.conn.inflight",
                        conn.inflight() as f64,
                        CONN_INFLIGHT_EDGES,
                    );
                }
            }
            Err(TrySendError::Full(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                qsnc_telemetry::counter_add("serve.rejected", 1);
                protocol::encode_error_reply(
                    &mut conn.out,
                    tag,
                    Status::Busy,
                    "request queue full (backpressure): retry",
                );
            }
            Err(TrySendError::Disconnected(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                protocol::encode_error_reply(
                    &mut conn.out,
                    tag,
                    Status::ShuttingDown,
                    "server shutting down",
                );
                conn.closing = true;
            }
        }
    }

    // ---- write path ----------------------------------------------------

    /// Pushes pending output as far as `EAGAIN` allows. Returns false if
    /// the transport failed hard.
    fn flush(&mut self, conn: &mut Conn) -> bool {
        while conn.wpos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.wpos..]) {
                Ok(0) => return false,
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if conn.wpos == conn.out.len() {
            conn.out.clear();
            conn.wpos = 0;
        } else if conn.wpos >= OUT_COMPACT {
            conn.out.drain(..conn.wpos);
            conn.wpos = 0;
        }
        true
    }

    // ---- completions ---------------------------------------------------

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => break, // write half dropped: shutdown under way
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock: drained
            }
        }
    }

    fn process_completions(&mut self) {
        let mut batch = match self.shared.completions.lock() {
            Ok(mut q) => std::mem::take(&mut *q),
            Err(_) => return, // a worker panicked mid-push; nothing to do
        };
        if batch.is_empty() {
            return;
        }
        let tele = qsnc_telemetry::enabled();
        qsnc_telemetry::counter_add("serve.loop.completions", batch.len() as u64);
        for c in batch.drain(..) {
            let idx = c.conn as usize;
            let Some(slot) = self.conns.get_mut(idx) else { continue };
            let Some(mut conn) = slot.take() else { continue };
            if conn.generation != c.generation {
                *slot = Some(conn); // connection died; drop the reply
                continue;
            }
            match c.tag {
                Some(t) => {
                    if let Some(p) = conn.tags.iter().position(|&x| x == t) {
                        conn.tags.swap_remove(p);
                    }
                }
                None => conn.untagged = conn.untagged.saturating_sub(1),
            }
            self.inflight -= 1;
            let t_encode = tele.then(Instant::now);
            protocol::encode_ok_reply(&mut conn.out, c.tag, c.reply.argmax, &c.reply.logits);
            if let Some(t_encode) = t_encode {
                let encode_us = t_encode.elapsed().as_micros() as u64;
                let total_us = c.enqueued.elapsed().as_micros() as u64;
                qsnc_telemetry::quantile_observe("serve.stage.encode.us", encode_us as f64);
                qsnc_telemetry::quantile_observe("serve.latency_us", total_us as f64);
                if self.cfg.slow_us.is_some_and(|slow| total_us >= slow) {
                    qsnc_telemetry::flight_record(
                        "serve.slow",
                        c.id,
                        &[
                            ("decode_us", c.decode_us),
                            ("queue_us", c.reply.queue_us),
                            ("infer_us", c.reply.infer_us),
                            ("encode_us", encode_us),
                            ("total_us", total_us),
                            ("batch", u64::from(c.reply.batch)),
                        ],
                    );
                }
            }
            // settle flushes the reply out and — because an answered v1
            // request lifts the lockstep gate — re-parses frames that were
            // buffered behind it.
            self.settle(idx, conn, true);
        }
        // Hand the emptied buffer back so the completion queue reuses its
        // capacity instead of reallocating every batch.
        if let Ok(mut q) = self.shared.completions.lock() {
            if q.is_empty() {
                *q = batch;
            }
        }
    }

    // ---- drain ---------------------------------------------------------

    fn begin_drain(&mut self) {
        self.draining = Some(Instant::now());
        if let Some(listener) = self.listener.take() {
            let _ = epoll_ctl(self.ep.as_raw_fd(), EPOLL_CTL_DEL, listener.as_raw_fd(), 0, 0);
        }
        // Gate every connection's reads; keep write interest for flushes.
        for idx in 0..self.conns.len() {
            if let Some(mut conn) = self.conns[idx].take() {
                self.update_interest(&mut conn, idx);
                self.conns[idx] = Some(conn);
            }
        }
    }

    /// True once everything admitted is answered and flushed (or the flush
    /// grace period expired). Closes all remaining connections on success.
    fn try_finish_drain(&mut self) -> bool {
        let deadline_passed = self
            .draining
            .is_some_and(|t| t.elapsed() > DRAIN_FLUSH_LIMIT);
        let owed = self.inflight > 0
            || self
                .conns
                .iter()
                .flatten()
                .any(|c| c.out_pending() > 0);
        if owed && !deadline_passed {
            return false;
        }
        for idx in 0..self.conns.len() {
            if let Some(conn) = self.conns[idx].take() {
                self.drop_conn(idx, conn);
            }
        }
        true
    }
}
