//! Behavioural memristor device model.
//!
//! Follows the configuration of the paper's deployment platform (ref. \[12\],
//! "A spiking neuromorphic design with resistive crossbar"): devices with
//! resistance programmable in `[50 kΩ, 1 MΩ]`, i.e. conductance in
//! `[1 µS, 20 µS]`, discretized to `N`-bit linear levels. Programming
//! (write) variation and read noise are modelled as log-normal and additive
//! Gaussian perturbations respectively.

use qsnc_tensor::TensorRng;

/// Static configuration of a memristor device population.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeviceConfig {
    /// Low-resistance state, ohms (paper: 50 kΩ).
    pub r_on: f32,
    /// High-resistance state, ohms (paper: 1 MΩ).
    pub r_off: f32,
    /// Bits of conductance resolution per device.
    pub bits: u32,
    /// Log-normal programming variation (σ of ln g); 0 disables.
    pub write_sigma: f32,
    /// Relative additive read-noise σ; 0 disables.
    pub read_sigma: f32,
    /// Read voltage, volts.
    pub v_read: f32,
}

impl DeviceConfig {
    /// The paper's device: 50 kΩ–1 MΩ, ideal (noise-free) programming.
    pub fn paper(bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "device resolution must be 1..=8 bits");
        DeviceConfig {
            r_on: 50e3,
            r_off: 1e6,
            bits,
            write_sigma: 0.0,
            read_sigma: 0.0,
            v_read: 0.2,
        }
    }

    /// Same device with noise terms enabled.
    pub fn with_noise(mut self, write_sigma: f32, read_sigma: f32) -> Self {
        assert!(write_sigma >= 0.0 && read_sigma >= 0.0, "noise must be non-negative");
        self.write_sigma = write_sigma;
        self.read_sigma = read_sigma;
        self
    }

    /// Minimum programmable conductance, siemens (`1/r_off`).
    pub fn g_min(&self) -> f32 {
        1.0 / self.r_off
    }

    /// Maximum programmable conductance, siemens (`1/r_on`).
    pub fn g_max(&self) -> f32 {
        1.0 / self.r_on
    }

    /// Number of discrete conductance levels, `2^bits`.
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Conductance step between adjacent levels.
    pub fn g_lsb(&self) -> f32 {
        (self.g_max() - self.g_min()) / (self.levels() - 1).max(1) as f32
    }

    /// Ideal conductance of level `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    pub fn level_conductance(&self, level: u32) -> f32 {
        assert!(level < self.levels(), "level {level} out of range");
        self.g_min() + level as f32 * self.g_lsb()
    }

    /// Nearest level for a target conductance (clamped into range).
    ///
    /// Degenerate grids — a single level (`bits == 0` built by hand) or a
    /// zero conductance span (`r_on == r_off`) — have `g_lsb() == 0`;
    /// dividing by it would produce NaN, which `as u32` silently casts to
    /// level 0. Every conductance maps to the only representable level, so
    /// answer 0 directly instead of routing through NaN.
    pub fn nearest_level(&self, g: f32) -> u32 {
        let lsb = self.g_lsb();
        if lsb <= 0.0 {
            return 0;
        }
        let idx = ((g - self.g_min()) / lsb).round();
        idx.clamp(0.0, (self.levels() - 1) as f32) as u32
    }
}

/// One programmed memristor cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Programmed level (the digital intent).
    pub level: u32,
    /// Actual conductance after programming variation, siemens.
    pub conductance: f32,
}

impl Device {
    /// Programs a device to `level` under `config`, applying write
    /// variation when a generator is supplied.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range for the config.
    pub fn program(config: &DeviceConfig, level: u32, rng: Option<&mut TensorRng>) -> Self {
        let ideal = config.level_conductance(level);
        let conductance = match rng {
            Some(rng) if config.write_sigma > 0.0 => {
                let g = ideal * rng.normal_with(0.0, config.write_sigma).exp();
                g.clamp(config.g_min(), config.g_max())
            }
            _ => ideal,
        };
        Device { level, conductance }
    }

    /// Current drawn at voltage `v` (Ohm's law), with read noise when a
    /// generator is supplied.
    pub fn read(&self, config: &DeviceConfig, v: f32, rng: Option<&mut TensorRng>) -> f32 {
        let ideal = self.conductance * v;
        match rng {
            Some(rng) if config.read_sigma > 0.0 => {
                ideal * (1.0 + rng.normal_with(0.0, config.read_sigma))
            }
            _ => ideal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_ranges() {
        let c = DeviceConfig::paper(4);
        assert_eq!(c.g_min(), 1e-6);
        assert_eq!(c.g_max(), 2e-5);
        assert_eq!(c.levels(), 16);
        assert!(c.g_lsb() > 0.0);
    }

    #[test]
    fn level_conductances_are_linear_and_monotone() {
        let c = DeviceConfig::paper(3);
        let mut prev = 0.0;
        for l in 0..c.levels() {
            let g = c.level_conductance(l);
            assert!(g > prev);
            prev = g;
        }
        assert!((c.level_conductance(0) - c.g_min()).abs() < 1e-12);
        assert!((c.level_conductance(c.levels() - 1) - c.g_max()).abs() < 1e-9);
        // Linearity: equal spacing.
        let d1 = c.level_conductance(1) - c.level_conductance(0);
        let d2 = c.level_conductance(5) - c.level_conductance(4);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn nearest_level_round_trip() {
        let c = DeviceConfig::paper(4);
        for l in 0..c.levels() {
            assert_eq!(c.nearest_level(c.level_conductance(l)), l);
        }
        // Out-of-range targets clamp.
        assert_eq!(c.nearest_level(0.0), 0);
        assert_eq!(c.nearest_level(1.0), c.levels() - 1);
    }

    #[test]
    fn ideal_programming_is_exact() {
        let c = DeviceConfig::paper(4);
        let d = Device::program(&c, 7, None);
        assert_eq!(d.conductance, c.level_conductance(7));
        let i = d.read(&c, 0.2, None);
        assert!((i - d.conductance * 0.2).abs() < 1e-12);
    }

    #[test]
    fn write_variation_spreads_conductance() {
        let c = DeviceConfig::paper(4).with_noise(0.05, 0.0);
        let mut rng = TensorRng::seed(0);
        let samples: Vec<f32> = (0..500)
            .map(|_| Device::program(&c, 8, Some(&mut rng)).conductance)
            .collect();
        let mean: f32 = samples.iter().sum::<f32>() / samples.len() as f32;
        let ideal = c.level_conductance(8);
        assert!((mean / ideal - 1.0).abs() < 0.02, "mean drifted: {mean} vs {ideal}");
        assert!(samples.iter().any(|&g| (g - ideal).abs() > 1e-9));
        // Always stays in the physical range.
        assert!(samples.iter().all(|&g| g >= c.g_min() && g <= c.g_max()));
    }

    #[test]
    fn read_noise_is_zero_mean() {
        let c = DeviceConfig::paper(4).with_noise(0.0, 0.05);
        let d = Device::program(&c, 15, None);
        let mut rng = TensorRng::seed(1);
        let reads: Vec<f32> = (0..2000).map(|_| d.read(&c, 0.2, Some(&mut rng))).collect();
        let mean: f32 = reads.iter().sum::<f32>() / reads.len() as f32;
        let ideal = d.conductance * 0.2;
        assert!((mean / ideal - 1.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_level_panics() {
        Device::program(&DeviceConfig::paper(2), 4, None);
    }

    #[test]
    fn nearest_level_zero_span_grid_is_level_zero() {
        // r_on == r_off: the whole grid collapses to one conductance and
        // g_lsb() == 0. nearest_level used to divide by it, and the
        // resulting NaN cast silently to 0 — now it short-circuits.
        let c = DeviceConfig { r_on: 1e5, r_off: 1e5, ..DeviceConfig::paper(4) };
        assert_eq!(c.g_lsb(), 0.0);
        for g in [0.0, c.g_min(), c.g_max(), 1.0, f32::MAX] {
            assert_eq!(c.nearest_level(g), 0, "zero-span grid must map {g} to level 0");
        }
    }

    #[test]
    fn nearest_level_single_level_grid_is_level_zero() {
        // bits == 0 is rejected by paper() but reachable through the public
        // fields; levels() == 1 means level 0 is the only legal answer.
        let c = DeviceConfig { bits: 0, ..DeviceConfig::paper(4) };
        assert_eq!(c.levels(), 1);
        for g in [0.0, c.g_min(), (c.g_min() + c.g_max()) / 2.0, c.g_max()] {
            let level = c.nearest_level(g);
            assert!(level < c.levels(), "level {level} out of the 1-level grid");
            assert_eq!(level, 0);
        }
        // The round-trip through level_conductance stays panic-free.
        assert_eq!(c.level_conductance(0), c.g_min());
    }
}
