//! Analytical speed / energy / area model of the memristor SNC
//! (Table 5 of the paper).
//!
//! The paper obtains its numbers from circuit simulation of the four
//! per-layer components (WL drivers, crossbars, IFCs, counters) on IBM
//! 130 nm, configured per its ref. \[12\]. We reproduce the *model structure*
//! — everything scales with the spike window `2^M`, the Eq. 1 crossbar
//! count, and the row/column populations — and calibrate the component
//! constants against the published LeNet rows of Table 5. All other rows
//! (other networks, other bit widths) are *derived*, and EXPERIMENTS.md
//! compares them against the paper's values.
//!
//! Structure:
//!
//! - **Latency**: each layer's evaluation occupies `2^M + K` spike slots
//!   (window plus fixed pipeline overhead); layers execute in sequence, so
//!   the reported "Speed (MHz)" is `1 / Σ_l (2^M + K)·t_slot`.
//! - **Energy**: dynamic energy per layer is `ρ·2^M` slots of driver +
//!   crossbar + IFC activity (`ρ` = average spike activity), plus a
//!   per-column digital term proportional to the counter width `M`.
//! - **Area**: crossbars (multiplied by `⌈N/4⌉` when weights exceed the
//!   4-bit native device resolution and pairs must be composed), drivers
//!   per row, IFC per column, and `M` counter bits per column.

use crate::mapping::{network_geometry, LayerGeometry};
use qsnc_nn::LayerDesc;

/// Calibrated component constants of the hardware model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HwModel {
    /// Spike slot duration, nanoseconds.
    pub t_slot_ns: f32,
    /// Fixed per-layer pipeline overhead, slots.
    pub overhead_slots: f32,
    /// Average spike activity factor ρ (fraction of window slots active).
    pub activity: f32,
    /// Crossbar read energy per active slot, µJ.
    pub e_xbar_uj: f32,
    /// Wordline driver energy per row per active slot, µJ.
    pub e_driver_uj: f32,
    /// IFC energy per column per active slot, µJ.
    pub e_ifc_uj: f32,
    /// Digital (counter/routing) energy per column per output bit, µJ.
    pub e_counter_uj: f32,
    /// Area per 32×32 crossbar including local periphery, mm².
    pub a_xbar_mm2: f32,
    /// Area per wordline driver, mm².
    pub a_driver_mm2: f32,
    /// Area per IFC, mm².
    pub a_ifc_mm2: f32,
    /// Area per counter bit, mm².
    pub a_counter_bit_mm2: f32,
    /// Native device resolution in bits (crossbars are replicated
    /// `⌈N / native⌉` times for wider weights).
    pub native_weight_bits: u32,
}

impl HwModel {
    /// Constants calibrated so the LeNet rows of Table 5 are reproduced;
    /// see the module docs for the calibration procedure.
    pub fn calibrated() -> Self {
        HwModel {
            t_slot_ns: 1.511,
            overhead_slots: 2.56,
            activity: 0.5,
            e_xbar_uj: 1.0e-4,
            e_driver_uj: 2.0e-5,
            e_ifc_uj: 7.8e-5,
            e_counter_uj: 6.8e-4,
            a_xbar_mm2: 2.0e-3,
            a_driver_mm2: 4.0e-4,
            a_ifc_mm2: 2.9e-3,
            a_counter_bit_mm2: 7.41e-4,
            native_weight_bits: 4,
        }
    }

    /// Crossbar replication factor for `n`-bit weights.
    pub fn weight_multiplier(&self, weight_bits: u32) -> usize {
        weight_bits.div_ceil(self.native_weight_bits) as usize
    }

    /// Evaluates the model for a network geometry at signal width `m_bits`
    /// and weight width `n_bits`, with the given execution schedule.
    pub fn evaluate_with_mode(
        &self,
        geometry: &[LayerGeometry],
        m_bits: u32,
        n_bits: u32,
        mode: ExecutionMode,
    ) -> HwReport {
        let mut report = self.evaluate(geometry, m_bits, n_bits);
        if mode == ExecutionMode::Pipelined && !geometry.is_empty() {
            // Every layer is a pipeline stage; steady-state throughput is
            // set by one window (+ overhead), not by the layer sum. Energy
            // per inference and area are unchanged.
            let window = (1u64 << m_bits) as f32;
            let stage_ns = (window + self.overhead_slots) * self.t_slot_ns;
            report.speed_mhz = 1e3 / stage_ns;
        }
        report
    }

    /// Evaluates the model for a network geometry at signal width `m_bits`
    /// and weight width `n_bits` (layer-sequential schedule, as in the
    /// paper's Table 5).
    pub fn evaluate(&self, geometry: &[LayerGeometry], m_bits: u32, n_bits: u32) -> HwReport {
        let window = (1u64 << m_bits) as f32;
        let w_mult = self.weight_multiplier(n_bits) as f32;
        let mut total_slots = 0.0f32;
        let mut energy = 0.0f32;
        let mut area = 0.0f32;
        let mut crossbars = 0usize;
        for g in geometry {
            let xbars = g.crossbars as f32 * w_mult;
            crossbars += g.crossbars * w_mult as usize;
            total_slots += window + self.overhead_slots;
            energy += self.activity
                * window
                * (xbars * self.e_xbar_uj
                    + g.rows as f32 * self.e_driver_uj
                    + g.cols as f32 * self.e_ifc_uj)
                + g.cols as f32 * m_bits as f32 * self.e_counter_uj;
            area += xbars * self.a_xbar_mm2
                + g.rows as f32 * self.a_driver_mm2
                + g.cols as f32 * (self.a_ifc_mm2 + m_bits as f32 * self.a_counter_bit_mm2);
        }
        let time_ns = total_slots * self.t_slot_ns;
        HwReport {
            layers: geometry.len(),
            crossbars,
            speed_mhz: 1e3 / time_ns,
            energy_uj: energy,
            area_mm2: area,
        }
    }

    /// Per-layer cost breakdown at `(m_bits, n_bits)`: one entry per
    /// geometry row, in order. Useful for locating the dominant layer.
    pub fn breakdown(
        &self,
        geometry: &[LayerGeometry],
        m_bits: u32,
        n_bits: u32,
    ) -> Vec<LayerHwReport> {
        geometry
            .iter()
            .map(|g| {
                let single = self.evaluate(std::slice::from_ref(g), m_bits, n_bits);
                LayerHwReport {
                    rows: g.rows,
                    cols: g.cols,
                    crossbars: single.crossbars,
                    latency_us: 1.0 / single.speed_mhz,
                    energy_uj: single.energy_uj,
                    area_mm2: single.area_mm2,
                }
            })
            .collect()
    }

    /// Evaluates the model for a list of layer descriptors with `t × t`
    /// crossbars.
    pub fn evaluate_network(
        &self,
        descs: &[LayerDesc],
        t: usize,
        m_bits: u32,
        n_bits: u32,
    ) -> HwReport {
        self.evaluate(&network_geometry(descs, t), m_bits, n_bits)
    }
}

impl Default for HwModel {
    fn default() -> Self {
        HwModel::calibrated()
    }
}

/// How layer evaluations are scheduled on the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ExecutionMode {
    /// Layers evaluate one after another (the conservative schedule used
    /// for Table 5).
    LayerSequential,
    /// Layers form a pipeline; throughput is one spike window per
    /// inference in steady state (PipeLayer-style, the paper's ref. \[20\]).
    Pipelined,
}

/// Per-layer entry of [`HwModel::breakdown`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LayerHwReport {
    /// Wordlines used.
    pub rows: usize,
    /// Bitlines used.
    pub cols: usize,
    /// Crossbars (after weight-bit replication).
    pub crossbars: usize,
    /// Layer evaluation latency, µs.
    pub latency_us: f32,
    /// Layer energy per inference, µJ.
    pub energy_uj: f32,
    /// Layer area, mm².
    pub area_mm2: f32,
}

/// Model output for one (network, M, N) configuration — one row of
/// Table 5.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HwReport {
    /// Number of computation-unit layers.
    pub layers: usize,
    /// Total crossbars (after weight-bit replication).
    pub crossbars: usize,
    /// Inference rate, MHz.
    pub speed_mhz: f32,
    /// Energy per inference, µJ.
    pub energy_uj: f32,
    /// Silicon area, mm².
    pub area_mm2: f32,
}

impl HwReport {
    /// Speedup of `self` relative to `baseline`.
    pub fn speedup_over(&self, baseline: &HwReport) -> f32 {
        self.speed_mhz / baseline.speed_mhz
    }

    /// Fractional energy saving relative to `baseline` (0.891 = 89.1%).
    pub fn energy_saving_over(&self, baseline: &HwReport) -> f32 {
        1.0 - self.energy_uj / baseline.energy_uj
    }

    /// Fractional area saving relative to `baseline`.
    pub fn area_saving_over(&self, baseline: &HwReport) -> f32 {
        1.0 - self.area_mm2 / baseline.area_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsnc_nn::models::{self, ModelKind};
    use qsnc_tensor::TensorRng;

    fn lenet_geometry() -> Vec<LayerGeometry> {
        let mut rng = TensorRng::seed(0);
        let net = models::build_model(ModelKind::Lenet, 1.0, 10, &mut rng);
        network_geometry(&net.synaptic_descriptors(), 32)
    }

    #[test]
    fn lenet_8bit_speed_matches_paper_row() {
        let model = HwModel::calibrated();
        let r = model.evaluate(&lenet_geometry(), 8, 8);
        // Paper: 0.64 MHz.
        assert!((r.speed_mhz - 0.64).abs() < 0.05, "speed {}", r.speed_mhz);
        assert_eq!(r.layers, 4);
    }

    #[test]
    fn lenet_speedups_match_paper_shape() {
        let model = HwModel::calibrated();
        let geo = lenet_geometry();
        let base = model.evaluate(&geo, 8, 8);
        let b4 = model.evaluate(&geo, 4, 4);
        let b3 = model.evaluate(&geo, 3, 3);
        // Paper: 13.9× and 24.4×.
        assert!((b4.speedup_over(&base) - 13.9).abs() < 0.5, "{}", b4.speedup_over(&base));
        assert!((b3.speedup_over(&base) - 24.4).abs() < 1.0, "{}", b3.speedup_over(&base));
    }

    #[test]
    fn lenet_energy_matches_paper_shape() {
        let model = HwModel::calibrated();
        let geo = lenet_geometry();
        let base = model.evaluate(&geo, 8, 8);
        let b4 = model.evaluate(&geo, 4, 4);
        // Paper: 4.7 µJ baseline, 87.9% saving at 4-bit.
        assert!((base.energy_uj - 4.7).abs() < 0.5, "energy {}", base.energy_uj);
        let saving = b4.energy_saving_over(&base);
        assert!((saving - 0.879).abs() < 0.05, "saving {saving}");
    }

    #[test]
    fn lenet_area_matches_paper_shape() {
        let model = HwModel::calibrated();
        let geo = lenet_geometry();
        let base = model.evaluate(&geo, 8, 8);
        let b4 = model.evaluate(&geo, 4, 4);
        let b3 = model.evaluate(&geo, 3, 3);
        // Paper: 1.48 mm², 29.7% saving at 4-bit, 37.2% at 3-bit.
        assert!((base.area_mm2 - 1.48).abs() < 0.1, "area {}", base.area_mm2);
        assert!((b4.area_saving_over(&base) - 0.297).abs() < 0.03);
        assert!((b3.area_saving_over(&base) - 0.372).abs() < 0.04);
    }

    #[test]
    fn weight_multiplier_steps_at_native_resolution() {
        let model = HwModel::calibrated();
        assert_eq!(model.weight_multiplier(3), 1);
        assert_eq!(model.weight_multiplier(4), 1);
        assert_eq!(model.weight_multiplier(5), 2);
        assert_eq!(model.weight_multiplier(8), 2);
    }

    #[test]
    fn larger_networks_are_slower_and_bigger() {
        let model = HwModel::calibrated();
        let mut rng = TensorRng::seed(1);
        let lenet = models::build_model(ModelKind::Lenet, 1.0, 10, &mut rng);
        let alexnet = models::build_model(ModelKind::Alexnet, 1.0, 10, &mut rng);
        let rl = model.evaluate_network(&lenet.synaptic_descriptors(), 32, 4, 4);
        let ra = model.evaluate_network(&alexnet.synaptic_descriptors(), 32, 4, 4);
        assert!(ra.speed_mhz < rl.speed_mhz);
        assert!(ra.energy_uj > rl.energy_uj);
        assert!(ra.area_mm2 > rl.area_mm2);
        assert_eq!(ra.layers, 8);
    }

    #[test]
    fn breakdown_sums_to_totals() {
        let model = HwModel::calibrated();
        let geo = lenet_geometry();
        let total = model.evaluate(&geo, 4, 4);
        let parts = model.breakdown(&geo, 4, 4);
        assert_eq!(parts.len(), geo.len());
        let energy: f32 = parts.iter().map(|p| p.energy_uj).sum();
        let area: f32 = parts.iter().map(|p| p.area_mm2).sum();
        let latency: f32 = parts.iter().map(|p| p.latency_us).sum();
        assert!((energy - total.energy_uj).abs() < 1e-4 * total.energy_uj.max(1.0));
        assert!((area - total.area_mm2).abs() < 1e-4 * total.area_mm2.max(1.0));
        assert!((latency - 1.0 / total.speed_mhz).abs() < 1e-3 / total.speed_mhz);
    }

    #[test]
    fn pipelined_mode_outpaces_sequential() {
        let model = HwModel::calibrated();
        let geo = lenet_geometry();
        let seq = model.evaluate_with_mode(&geo, 4, 4, ExecutionMode::LayerSequential);
        let pipe = model.evaluate_with_mode(&geo, 4, 4, ExecutionMode::Pipelined);
        // 4 layers → pipeline is ~4× faster; energy and area identical.
        assert!((pipe.speed_mhz / seq.speed_mhz - 4.0).abs() < 0.1);
        assert_eq!(pipe.energy_uj, seq.energy_uj);
        assert_eq!(pipe.area_mm2, seq.area_mm2);
    }

    #[test]
    fn window_scaling_dominates_speed() {
        let model = HwModel::calibrated();
        let geo = lenet_geometry();
        let mut prev = f32::INFINITY;
        for m in 1..=8 {
            let r = model.evaluate(&geo, m, 4);
            assert!(r.speed_mhz < prev, "speed should fall with window size");
            prev = r.speed_mhz;
        }
    }
}
