//! Signed memristor crossbar arrays.
//!
//! Each synaptic weight code `c ∈ [−2^(N−1), 2^(N−1)]` is realized by a
//! **differential device pair** on the same bitline: a "plus" device at
//! level `c` (for positive codes) and a "minus" device at level `−c` (for
//! negative), both riding on the `g_min` baseline, so the differential
//! current is exactly `V · c · g_lsb`. The crossbar computes one
//! vector-matrix product per read: wordline voltages in, bitline current
//! differences out.

use crate::device::{Device, DeviceConfig};
use crate::fault::{CellFault, DegradationStats, FaultMap};
use crate::program::program_device_verified;
use qsnc_tensor::TensorRng;

/// Bucket edges for the `snc.fault.retries` histogram (extra program
/// attempts per device beyond the first).
const RETRY_BUCKETS: [f64; 4] = [0.5, 1.5, 3.5, 7.5];

/// Context for programming a crossbar against a known fault population.
pub(crate) struct ReliableProgramming<'a> {
    /// Ground-truth faults of this physical array.
    pub map: &'a FaultMap,
    /// Run the write-verify loop and zero-mask unrecoverable cells; `false`
    /// programs naively (stuck cells keep their erroneous conductance).
    pub verify: bool,
    /// Write-verify retry budget per device.
    pub max_retries: u32,
    /// Degradation accounting, accumulated into by the programming pass.
    pub stats: &'a mut DegradationStats,
    /// Faults *observed* during programming (write-verify failures and dead
    /// lines), recorded for later fault-aware remapping.
    pub observed: &'a mut FaultMap,
}

/// A `rows × cols` crossbar of differential memristor pairs.
#[derive(Debug, Clone)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    config: DeviceConfig,
    g_plus: Vec<f32>,
    g_minus: Vec<f32>,
}

impl Crossbar {
    /// Programs a crossbar from signed weight codes in row-major
    /// `[rows, cols]` order (`rows` = wordlines/inputs, `cols` =
    /// bitlines/outputs). Write variation applies when `rng` is given.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != rows·cols` or any `|code|` exceeds the
    /// device's level range.
    pub fn from_codes(
        codes: &[i32],
        rows: usize,
        cols: usize,
        config: DeviceConfig,
        mut rng: Option<&mut TensorRng>,
    ) -> Self {
        assert_eq!(codes.len(), rows * cols, "code count mismatch");
        let max_level = config.levels() - 1;
        let mut g_plus = Vec::with_capacity(codes.len());
        let mut g_minus = Vec::with_capacity(codes.len());
        for &c in codes {
            assert!(
                c.unsigned_abs() <= max_level,
                "code {c} exceeds device range ±{max_level}"
            );
            let (lp, lm) = if c >= 0 { (c as u32, 0) } else { (0, (-c) as u32) };
            g_plus.push(Device::program(&config, lp, rng.as_deref_mut()).conductance);
            g_minus.push(Device::program(&config, lm, rng.as_deref_mut()).conductance);
        }
        Crossbar {
            rows,
            cols,
            config,
            g_plus,
            g_minus,
        }
    }

    /// Programs a crossbar whose physical array carries the faults in
    /// `prog.map` (sized `rows × cols`). Cell `(i, j)` holds `codes[i·cols + j]`.
    ///
    /// Semantics per cell:
    ///
    /// - A **dead line** (row or column) zeroes the cell's differential
    ///   current — both devices are left at the `g_min` baseline — and its
    ///   weight magnitude is charged to `stats.magnitude_lost`.
    /// - A **stuck cell** pins the plus device (`g_max` for stuck-on,
    ///   `g_min` for stuck-off). Naive programming (`verify == false`)
    ///   programs the minus device as intended and lives with the error.
    /// - With `verify == true` every device runs the write-verify loop of
    ///   [`crate::program::program_device_verified`]; a cell whose devices
    ///   cannot both verify is **zero-masked** (minus device programmed to
    ///   cancel the plus device exactly), charged to `stats.{unrecoverable,
    ///   masked, magnitude_lost}`, and recorded in `prog.observed`.
    ///
    /// With a clean fault map, no write noise, and `verify == true` this
    /// produces conductances bit-identical to [`Crossbar::from_codes`] —
    /// ideal devices verify on the first attempt at the exact level.
    ///
    /// # Panics
    ///
    /// Panics on code-count or fault-map shape mismatch, or codes outside
    /// the device range.
    pub(crate) fn from_codes_faulty(
        codes: &[i32],
        rows: usize,
        cols: usize,
        config: DeviceConfig,
        prog: ReliableProgramming<'_>,
        mut rng: Option<&mut TensorRng>,
    ) -> Self {
        assert_eq!(codes.len(), rows * cols, "code count mismatch");
        assert!(
            prog.map.rows() == rows && prog.map.cols() == cols,
            "fault map shape {}×{} does not match crossbar {rows}×{cols}",
            prog.map.rows(),
            prog.map.cols()
        );
        let max_level = config.levels() - 1;
        let g_min = config.g_min();
        let g_max = config.g_max();
        let instrument = qsnc_telemetry::enabled();
        let mut g_plus = Vec::with_capacity(codes.len());
        let mut g_minus = Vec::with_capacity(codes.len());
        for i in 0..rows {
            let row_dead = prog.map.row_is_dead(i);
            if row_dead && !prog.observed.row_is_dead(i) {
                prog.observed.record_dead_row(i);
            }
            for j in 0..cols {
                let c = codes[i * cols + j];
                assert!(
                    c.unsigned_abs() <= max_level,
                    "code {c} exceeds device range ±{max_level}"
                );
                let fault = prog.map.fault_at(i, j);
                let col_dead = prog.map.col_is_dead(j);
                if col_dead && i == 0 && !prog.observed.col_is_dead(j) {
                    prog.observed.record_dead_col(j);
                }
                if fault.is_some() || row_dead || col_dead {
                    prog.stats.cells += 1;
                }
                if row_dead || col_dead {
                    // No current through this line: differential is zero no
                    // matter what; the weight is gone.
                    g_plus.push(g_min);
                    g_minus.push(g_min);
                    prog.stats.magnitude_lost += c.unsigned_abs() as f64;
                    continue;
                }
                let (lp, lm) = if c >= 0 { (c as u32, 0) } else { (0, (-c) as u32) };
                let pinned_plus = fault.map(|f| match f {
                    CellFault::StuckOn => g_max,
                    CellFault::StuckOff => g_min,
                });
                if !prog.verify {
                    let gp = match pinned_plus {
                        Some(g) => g,
                        None => Device::program(&config, lp, rng.as_deref_mut()).conductance,
                    };
                    let gm = Device::program(&config, lm, rng.as_deref_mut()).conductance;
                    g_plus.push(gp);
                    g_minus.push(gm);
                    continue;
                }
                let plus = program_device_verified(
                    &config,
                    lp,
                    pinned_plus,
                    rng.as_deref_mut(),
                    prog.max_retries,
                );
                let minus = program_device_verified(
                    &config,
                    lm,
                    None,
                    rng.as_deref_mut(),
                    prog.max_retries,
                );
                let extra = (plus.attempts - 1) + (minus.attempts - 1);
                prog.stats.retries += extra as u64;
                if instrument {
                    qsnc_telemetry::observe("snc.fault.retries", extra as f64, &RETRY_BUCKETS);
                }
                if plus.verified && minus.verified {
                    g_plus.push(plus.conductance);
                    g_minus.push(minus.conductance);
                } else {
                    // Unrecoverable: cancel the pair so the cell reads as
                    // code 0 instead of an unbounded error, and remember it.
                    prog.stats.unrecoverable += 1;
                    prog.stats.masked += 1;
                    prog.stats.magnitude_lost += c.unsigned_abs() as f64;
                    let kind = match fault {
                        Some(f) => f,
                        // A merely-too-variable device: classify by where
                        // it ended up relative to mid-range.
                        None if plus.conductance > (g_min + g_max) / 2.0 => CellFault::StuckOn,
                        None => CellFault::StuckOff,
                    };
                    prog.observed.record(i, j, kind);
                    let g = plus.conductance.max(g_min);
                    g_plus.push(g);
                    g_minus.push(g);
                }
            }
        }
        Crossbar { rows, cols, config, g_plus, g_minus }
    }

    /// Number of wordlines (inputs).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bitlines (outputs).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Total physical devices (two per cell).
    pub fn device_count(&self) -> usize {
        2 * self.rows * self.cols
    }

    /// Differential bitline currents for wordline drive `x` (one value per
    /// row; each unit of `x` corresponds to one read-voltage spike slot).
    /// Read noise applies when `rng` is given.
    ///
    /// Returns one current per column, in amperes·slots.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows()`.
    pub fn matvec(&self, x: &[f32], mut rng: Option<&mut TensorRng>) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "input length mismatch");
        let v = self.config.v_read;
        let mut out = vec![0.0f32; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue; // no spikes, no charge — the event-driven saving
            }
            let row_p = &self.g_plus[i * self.cols..(i + 1) * self.cols];
            let row_m = &self.g_minus[i * self.cols..(i + 1) * self.cols];
            match rng.as_deref_mut() {
                Some(rng) if self.config.read_sigma > 0.0 => {
                    for j in 0..self.cols {
                        let ideal = (row_p[j] - row_m[j]) * v * xi;
                        out[j] += ideal
                            + (row_p[j] + row_m[j])
                                * v
                                * xi.abs()
                                * rng.normal_with(0.0, self.config.read_sigma);
                    }
                }
                _ => {
                    for j in 0..self.cols {
                        out[j] += (row_p[j] - row_m[j]) * v * xi;
                    }
                }
            }
        }
        out
    }

    /// Like [`matvec`](Self::matvec) but scaled back to **code units**:
    /// entry `j` approximates `Σ_i codes[i][j] · x[i]` (exactly, when the
    /// crossbar is noise-free).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows()`.
    pub fn matvec_code_units(&self, x: &[f32], rng: Option<&mut TensorRng>) -> Vec<f32> {
        let scale = 1.0 / (self.config.g_lsb() * self.config.v_read);
        self.matvec(x, rng).into_iter().map(|i| i * scale).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DeviceConfig {
        DeviceConfig::paper(4)
    }

    #[test]
    fn ideal_crossbar_is_exact_in_code_units() {
        let codes = vec![1, -2, 3, 0, 5, -8];
        let xb = Crossbar::from_codes(&codes, 2, 3, cfg(), None);
        let x = vec![2.0, 3.0];
        let y = xb.matvec_code_units(&x, None);
        // Expected: [1·2+0·3, −2·2+5·3, 3·2−8·3] = [2, 11, −18]
        let expected = [2.0, 11.0, -18.0];
        for (a, b) in y.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_input_draws_no_differential_current() {
        let codes = vec![7, -7];
        let xb = Crossbar::from_codes(&codes, 1, 2, cfg(), None);
        let y = xb.matvec(&[0.0], None);
        assert_eq!(y, vec![0.0, 0.0]);
    }

    #[test]
    fn matches_reference_matmul_on_random_codes() {
        let mut rng = TensorRng::seed(0);
        let (rows, cols) = (32, 32);
        let codes: Vec<i32> = (0..rows * cols)
            .map(|_| rng.index(17) as i32 - 8)
            .collect();
        let xb = Crossbar::from_codes(&codes, rows, cols, cfg(), None);
        let x: Vec<f32> = (0..rows).map(|_| rng.index(16) as f32).collect();
        let y = xb.matvec_code_units(&x, None);
        for j in 0..cols {
            let expected: f32 = (0..rows)
                .map(|i| codes[i * cols + j] as f32 * x[i])
                .sum();
            assert!(
                (y[j] - expected).abs() < 1e-2 * (1.0 + expected.abs()),
                "col {j}: {} vs {expected}",
                y[j]
            );
        }
    }

    #[test]
    fn write_noise_perturbs_but_preserves_signal() {
        let mut rng = TensorRng::seed(1);
        let codes = vec![8i32; 32];
        let noisy_cfg = cfg().with_noise(0.05, 0.0);
        let xb = Crossbar::from_codes(&codes, 32, 1, noisy_cfg, Some(&mut rng));
        let x = vec![1.0f32; 32];
        let y = xb.matvec_code_units(&x, None)[0];
        let ideal = 8.0 * 32.0;
        assert!((y / ideal - 1.0).abs() < 0.15, "noisy output {y} vs {ideal}");
        assert!((y - ideal).abs() > 1e-6, "noise had no effect");
    }

    #[test]
    fn read_noise_is_stochastic() {
        let codes = vec![5i32];
        let noisy_cfg = cfg().with_noise(0.0, 0.05);
        let xb = Crossbar::from_codes(&codes, 1, 1, noisy_cfg, None);
        let mut rng = TensorRng::seed(2);
        let a = xb.matvec_code_units(&[3.0], Some(&mut rng))[0];
        let b = xb.matvec_code_units(&[3.0], Some(&mut rng))[0];
        assert_ne!(a, b);
        assert!((a - 15.0).abs() < 5.0);
    }

    #[test]
    fn device_count_is_two_per_cell() {
        let xb = Crossbar::from_codes(&[0; 12], 3, 4, cfg(), None);
        assert_eq!(xb.device_count(), 24);
    }

    #[test]
    #[should_panic(expected = "exceeds device range")]
    fn oversized_code_panics() {
        Crossbar::from_codes(&[100], 1, 1, cfg(), None);
    }
}
