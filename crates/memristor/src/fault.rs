//! Per-crossbar fault maps and the reliability policy for deploying onto
//! imperfect hardware.
//!
//! Memristor arrays are exactly the substrate where devices fail:
//! stuck-at-G_on / stuck-at-G_off cells and broken word/bit lines are the
//! dominant accuracy hazard (the paper's group's own defect-rescue work,
//! ref. \[16\], and Wang et al.'s one-level-precision rescue study both
//! target them). This module is the deployment-time countermeasure layer:
//!
//! - [`FaultMap`] — a persistent per-crossbar record of faulty cells,
//!   either generated deterministically from seeded rates
//!   ([`FaultMap::seeded`]) or accumulated from observed programming
//!   failures ([`FaultMap::record`], fed by the write-verify loop in
//!   [`crate::program`]).
//! - [`ReliabilityConfig`] / [`ProgramPolicy`] — how a deployment reacts:
//!   ignore the faults ([`ProgramPolicy::Naive`]), detect-and-mask them
//!   ([`ProgramPolicy::WriteVerify`]), or additionally steer important
//!   weight columns away from them via spare-column redundancy
//!   ([`ProgramPolicy::Remap`], implemented in [`crate::mapping`]).
//! - [`DegradationStats`] — what the hardware cost this deploy, reported
//!   per layer and in total by [`crate::SpikingNetwork::degradation`] and
//!   exported under the frozen `snc.fault.*` telemetry names.
//!
//! ## Physical model
//!
//! Every logical cell is a differential device pair (see
//! [`crate::crossbar`]). A **stuck-at-G_on** fault pins the cell's *plus*
//! device at `g_max`; a **stuck-at-G_off** fault pins it at `g_min`. A
//! **dead line** (broken wordline driver or bitline sense path) makes every
//! cell on that line contribute zero differential current. Masking a known
//! faulty cell programs the healthy *minus* device to the same conductance
//! as the stuck plus device, cancelling the differential current — the
//! weight is lost (reads as code 0) but the unbounded error is gone.

use qsnc_telemetry::json::Json;
use qsnc_tensor::TensorRng;
use std::collections::{BTreeMap, BTreeSet};

/// One cell-level fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CellFault {
    /// The cell's plus device is pinned at `g_max` (low-resistance short).
    StuckOn,
    /// The cell's plus device is pinned at `g_min` (open / high-resistance).
    StuckOff,
}

/// Independent per-cell / per-line fault probabilities used by
/// [`FaultMap::seeded`].
///
/// All rates are probabilities in `[0, 1]`. [`FaultRates::none`] (`0.0`
/// everywhere) leaves deployment bit-identical to the fault-free pipeline.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultRates {
    /// Per-cell probability of a stuck-at-G_on fault.
    pub stuck_on: f32,
    /// Per-cell probability of a stuck-at-G_off fault (drawn only for
    /// cells that did not already draw stuck-on; see [`FaultMap::seeded`]).
    pub stuck_off: f32,
    /// Per-line probability that a whole wordline or bitline is dead.
    pub dead_line: f32,
}

impl FaultRates {
    /// No faults at all.
    pub fn none() -> Self {
        FaultRates { stuck_on: 0.0, stuck_off: 0.0, dead_line: 0.0 }
    }

    /// A symmetric stuck-cell population: `rate` split evenly between
    /// stuck-on and stuck-off, no dead lines.
    pub fn stuck(rate: f32) -> Self {
        FaultRates { stuck_on: rate / 2.0, stuck_off: rate / 2.0, dead_line: 0.0 }
    }

    /// Whether any rate is non-zero.
    pub fn any(&self) -> bool {
        self.stuck_on > 0.0 || self.stuck_off > 0.0 || self.dead_line > 0.0
    }

    fn validate(&self) {
        for (name, r) in [
            ("stuck_on", self.stuck_on),
            ("stuck_off", self.stuck_off),
            ("dead_line", self.dead_line),
        ] {
            assert!((0.0..=1.0).contains(&r), "{name} rate {r} outside [0, 1]");
        }
    }
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates::none()
    }
}

/// A persistent map of the faulty cells and dead lines of **one physical
/// crossbar** (`rows × cols` cells).
///
/// Cell coordinates are `(row, col)` with `row` the wordline and `col` the
/// bitline index. Iteration order over faults is deterministic (sorted),
/// so every consumer — masking, remapping, statistics — behaves
/// identically run-to-run for the same map.
///
/// # Examples
///
/// ```
/// use qsnc_memristor::{CellFault, FaultMap, FaultRates};
///
/// // Seeded generation is deterministic: same seed, same map.
/// let a = FaultMap::seeded(32, 32, FaultRates::stuck(0.05), 7);
/// let b = FaultMap::seeded(32, 32, FaultRates::stuck(0.05), 7);
/// assert_eq!(a.to_json().render(), b.to_json().render());
///
/// // Maps can also be grown from observed programming failures.
/// let mut observed = FaultMap::new(32, 32);
/// observed.record(3, 17, CellFault::StuckOn);
/// assert_eq!(observed.fault_at(3, 17), Some(CellFault::StuckOn));
/// assert_eq!(observed.cell_fault_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultMap {
    rows: usize,
    cols: usize,
    cells: BTreeMap<(usize, usize), CellFault>,
    dead_rows: BTreeSet<usize>,
    dead_cols: BTreeSet<usize>,
}

impl FaultMap {
    /// An empty (fault-free) map for a `rows × cols` crossbar.
    pub fn new(rows: usize, cols: usize) -> Self {
        FaultMap { rows, cols, ..FaultMap::default() }
    }

    /// Deterministically generates a fault population from independent
    /// per-cell and per-line rates.
    ///
    /// Draw order is fixed and documented — it is part of the map's
    /// reproducibility contract: first every wordline draws `dead_line`,
    /// then every bitline, then cells in row-major order draw `stuck_on`
    /// and, only when that misses, `stuck_off` (a cell can carry one fault;
    /// stuck-on wins). The same `(rows, cols, rates, seed)` always yields
    /// the same map.
    pub fn seeded(rows: usize, cols: usize, rates: FaultRates, seed: u64) -> Self {
        rates.validate();
        let mut rng = TensorRng::seed(seed);
        let mut map = FaultMap::new(rows, cols);
        for r in 0..rows {
            if rng.chance(rates.dead_line) {
                map.dead_rows.insert(r);
            }
        }
        for c in 0..cols {
            if rng.chance(rates.dead_line) {
                map.dead_cols.insert(c);
            }
        }
        for r in 0..rows {
            for c in 0..cols {
                if rng.chance(rates.stuck_on) {
                    map.cells.insert((r, c), CellFault::StuckOn);
                } else if rng.chance(rates.stuck_off) {
                    map.cells.insert((r, c), CellFault::StuckOff);
                }
            }
        }
        map
    }

    /// Records an observed cell fault (e.g. a write-verify failure). A
    /// later record for the same cell overwrites the earlier one.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates lie outside the crossbar.
    pub fn record(&mut self, row: usize, col: usize, fault: CellFault) {
        assert!(row < self.rows && col < self.cols, "cell ({row}, {col}) outside crossbar");
        self.cells.insert((row, col), fault);
    }

    /// Marks a whole wordline as dead.
    pub fn record_dead_row(&mut self, row: usize) {
        assert!(row < self.rows, "row {row} outside crossbar");
        self.dead_rows.insert(row);
    }

    /// Marks a whole bitline as dead.
    pub fn record_dead_col(&mut self, col: usize) {
        assert!(col < self.cols, "col {col} outside crossbar");
        self.dead_cols.insert(col);
    }

    /// Wordline count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bitline count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The cell-level fault at `(row, col)`, if any (dead lines are
    /// reported separately by [`Self::row_is_dead`] / [`Self::col_is_dead`]).
    pub fn fault_at(&self, row: usize, col: usize) -> Option<CellFault> {
        self.cells.get(&(row, col)).copied()
    }

    /// Whether the cell is unusable for weight storage: it carries a cell
    /// fault or lies on a dead line.
    pub fn cell_is_faulty(&self, row: usize, col: usize) -> bool {
        self.fault_at(row, col).is_some() || self.row_is_dead(row) || self.col_is_dead(col)
    }

    /// Whether wordline `row` is dead.
    pub fn row_is_dead(&self, row: usize) -> bool {
        self.dead_rows.contains(&row)
    }

    /// Whether bitline `col` is dead.
    pub fn col_is_dead(&self, col: usize) -> bool {
        self.dead_cols.contains(&col)
    }

    /// Number of cell-level faults (dead lines not included).
    pub fn cell_fault_count(&self) -> usize {
        self.cells.len()
    }

    /// Total unusable cells: cell faults plus every cell on a dead line
    /// (each cell counted once).
    pub fn faulty_cell_count(&self) -> usize {
        let mut n = 0;
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.cell_is_faulty(r, c) {
                    n += 1;
                }
            }
        }
        n
    }

    /// Number of dead lines (rows + cols).
    pub fn dead_line_count(&self) -> usize {
        self.dead_rows.len() + self.dead_cols.len()
    }

    /// `true` when the map holds no faults at all.
    pub fn is_clean(&self) -> bool {
        self.cells.is_empty() && self.dead_rows.is_empty() && self.dead_cols.is_empty()
    }

    /// Serializes the map to the house JSON shape (see
    /// [`qsnc_telemetry::json`]); [`Self::from_json`] round-trips it. This
    /// is the persistence format: characterize a physical array once, store
    /// the document, and rebuild the map for every subsequent deploy.
    pub fn to_json(&self) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|(&(r, c), &f)| {
                Json::obj(vec![
                    ("row", Json::Num(r as f64)),
                    ("col", Json::Num(c as f64)),
                    (
                        "kind",
                        Json::Str(
                            match f {
                                CellFault::StuckOn => "stuck_on",
                                CellFault::StuckOff => "stuck_off",
                            }
                            .to_string(),
                        ),
                    ),
                ])
            })
            .collect();
        let lines = |set: &BTreeSet<usize>| {
            Json::Arr(set.iter().map(|&i| Json::Num(i as f64)).collect())
        };
        Json::obj(vec![
            ("rows", Json::Num(self.rows as f64)),
            ("cols", Json::Num(self.cols as f64)),
            ("cells", Json::Arr(cells)),
            ("dead_rows", lines(&self.dead_rows)),
            ("dead_cols", lines(&self.dead_cols)),
        ])
    }

    /// Rebuilds a map serialized by [`Self::to_json`]. Returns `None` when
    /// the document does not have the expected shape.
    pub fn from_json(doc: &Json) -> Option<Self> {
        let dim = |key: &str| doc.get(key)?.as_f64().map(|v| v as usize);
        let mut map = FaultMap::new(dim("rows")?, dim("cols")?);
        for cell in doc.get("cells")?.as_array()? {
            let row = cell.get("row")?.as_f64()? as usize;
            let col = cell.get("col")?.as_f64()? as usize;
            let kind = match cell.get("kind")?.as_str()? {
                "stuck_on" => CellFault::StuckOn,
                "stuck_off" => CellFault::StuckOff,
                _ => return None,
            };
            if row >= map.rows || col >= map.cols {
                return None;
            }
            map.cells.insert((row, col), kind);
        }
        for (key, dead_rows) in [("dead_rows", true), ("dead_cols", false)] {
            for line in doc.get(key)?.as_array()? {
                let i = line.as_f64()? as usize;
                let bound = if dead_rows { map.rows } else { map.cols };
                if i >= bound {
                    return None;
                }
                if dead_rows {
                    map.dead_rows.insert(i);
                } else {
                    map.dead_cols.insert(i);
                }
            }
        }
        Some(map)
    }
}

/// How a deployment reacts to device faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ProgramPolicy {
    /// Program as if the array were perfect; stuck cells read back whatever
    /// the fault pins them to. The accuracy baseline every countermeasure
    /// is measured against.
    Naive,
    /// Program-verify every device (see [`crate::program`]): retry failed
    /// writes with backoff toward adjacent conductance levels, then
    /// zero-mask the cells that never verify and record them in the
    /// observed [`FaultMap`].
    WriteVerify,
    /// [`ProgramPolicy::WriteVerify`] plus fault-aware column remapping:
    /// steer high-magnitude weight columns away from faulty cells using the
    /// spare bitlines of each tile (see [`crate::mapping`]), zero-masking
    /// only what the spares cannot absorb.
    Remap,
}

/// Deployment-time reliability configuration carried by
/// [`crate::DeployConfig`].
///
/// The default ([`ReliabilityConfig::ideal`]) injects no faults and leaves
/// the pipeline — including the integer fast-path engine — bit-identical
/// to a config without a reliability layer.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReliabilityConfig {
    /// Fault population injected into every programmed crossbar.
    pub rates: FaultRates,
    /// Master seed for fault generation; each tile derives its own
    /// sub-seed from this, its layer index, and its tile index, so the
    /// fault map is a pure function of `(seed, network geometry)` —
    /// policies can be compared on the *same* hardware.
    pub seed: u64,
    /// The countermeasure policy.
    pub policy: ProgramPolicy,
    /// Spare bitlines per physical tile, used by [`ProgramPolicy::Remap`].
    pub spare_cols: usize,
    /// Maximum write-verify retries per device; `None` reads
    /// `QSNC_PROGRAM_RETRIES` (default 3; see [`crate::program::program_retries`]).
    pub max_retries: Option<u32>,
}

impl ReliabilityConfig {
    /// Fault-free configuration: no injected faults, remap policy armed but
    /// inert. Deploys are bit-identical to the pre-reliability pipeline.
    pub fn ideal() -> Self {
        ReliabilityConfig {
            rates: FaultRates::none(),
            seed: 0,
            policy: ProgramPolicy::Remap,
            spare_cols: 0,
            max_retries: None,
        }
    }

    /// A faulty deployment: `rates` applied under `policy` with two spare
    /// bitlines per tile.
    pub fn faulty(rates: FaultRates, seed: u64, policy: ProgramPolicy) -> Self {
        ReliabilityConfig { rates, seed, policy, spare_cols: 2, max_retries: None }
    }

    /// Whether this configuration can perturb a deployment at all. Inactive
    /// configs take the exact pre-reliability code path.
    pub fn is_active(&self) -> bool {
        self.rates.any()
    }

    /// The sub-seed for one tile's fault map: deterministic mix of the
    /// master seed with the layer and tile indices (splitmix64-style).
    pub fn tile_seed(&self, layer: usize, tile: usize) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(1 + layer as u64))
            .wrapping_add(0x85eb_ca6bu64.wrapping_mul(1 + tile as u64));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig::ideal()
    }
}

/// What a deploy cost in hardware terms: the degradation report of one
/// layer or of the whole network (see
/// [`crate::SpikingNetwork::degradation`]).
///
/// The counters mirror the frozen telemetry taxonomy:
/// `snc.fault.{cells,unrecoverable,remapped,masked}` plus the
/// `snc.fault.retries` histogram.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct DegradationStats {
    /// Unusable cells present in the fault maps (stuck cells plus cells on
    /// dead lines), over the cells the layer actually occupies.
    pub cells: u64,
    /// Cells whose write-verify loop exhausted its retries.
    pub unrecoverable: u64,
    /// Logical columns steered away from their identity position by the
    /// remapper (onto a spare or a healthier physical column).
    pub remapped: u64,
    /// Cells zero-masked because no healthy position could hold them.
    pub masked: u64,
    /// Extra program-verify attempts beyond the first, summed over devices.
    pub retries: u64,
    /// Total `Σ|code|` of weight magnitude zeroed by masking and dead
    /// lines — the size of the hole faults punched into the layer.
    pub magnitude_lost: f64,
}

impl DegradationStats {
    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &DegradationStats) {
        self.cells += other.cells;
        self.unrecoverable += other.unrecoverable;
        self.remapped += other.remapped;
        self.masked += other.masked;
        self.retries += other.retries;
        self.magnitude_lost += other.magnitude_lost;
    }

    /// `true` when nothing was faulted, retried, remapped, or masked.
    pub fn is_clean(&self) -> bool {
        *self == DegradationStats::default()
    }

    /// Publishes the stats under the frozen `snc.fault.*` counter names
    /// (no-op when telemetry is off).
    pub fn publish(&self) {
        if !qsnc_telemetry::enabled() {
            return;
        }
        qsnc_telemetry::counter_add("snc.fault.cells", self.cells);
        qsnc_telemetry::counter_add("snc.fault.unrecoverable", self.unrecoverable);
        qsnc_telemetry::counter_add("snc.fault.remapped", self.remapped);
        qsnc_telemetry::counter_add("snc.fault.masked", self.masked);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_maps_are_deterministic_and_seed_sensitive() {
        let rates = FaultRates { stuck_on: 0.02, stuck_off: 0.02, dead_line: 0.01 };
        let a = FaultMap::seeded(32, 32, rates, 5);
        let b = FaultMap::seeded(32, 32, rates, 5);
        assert_eq!(a, b);
        let c = FaultMap::seeded(32, 32, rates, 6);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn seeded_rates_are_statistically_respected() {
        let map = FaultMap::seeded(128, 128, FaultRates::stuck(0.1), 1);
        let frac = map.cell_fault_count() as f32 / (128.0 * 128.0);
        assert!((frac - 0.1).abs() < 0.01, "fault fraction {frac}");
        // Roughly even split between the two stuck kinds.
        let on = (0..128)
            .flat_map(|r| (0..128).map(move |c| (r, c)))
            .filter(|&(r, c)| map.fault_at(r, c) == Some(CellFault::StuckOn))
            .count();
        let ratio = on as f32 / map.cell_fault_count() as f32;
        assert!((ratio - 0.5).abs() < 0.05, "stuck-on ratio {ratio}");
    }

    #[test]
    fn zero_rates_yield_clean_map() {
        let map = FaultMap::seeded(64, 64, FaultRates::none(), 99);
        assert!(map.is_clean());
        assert_eq!(map.faulty_cell_count(), 0);
    }

    #[test]
    fn dead_lines_mark_whole_rows_and_cols() {
        let mut map = FaultMap::new(8, 8);
        map.record_dead_row(3);
        map.record_dead_col(5);
        for i in 0..8 {
            assert!(map.cell_is_faulty(3, i));
            assert!(map.cell_is_faulty(i, 5));
        }
        assert_eq!(map.dead_line_count(), 2);
        // 8 + 8 − 1 overlap.
        assert_eq!(map.faulty_cell_count(), 15);
        assert_eq!(map.cell_fault_count(), 0);
    }

    #[test]
    fn json_round_trip_preserves_map() {
        let rates = FaultRates { stuck_on: 0.05, stuck_off: 0.03, dead_line: 0.02 };
        let map = FaultMap::seeded(33, 17, rates, 11);
        let doc = map.to_json();
        let text = doc.render_pretty(2);
        let parsed = Json::parse(&text).expect("parse");
        let restored = FaultMap::from_json(&parsed).expect("restore");
        assert_eq!(map, restored);
    }

    #[test]
    fn from_json_rejects_out_of_range_cells() {
        let mut map = FaultMap::new(4, 4);
        map.record(3, 3, CellFault::StuckOn);
        let mut doc = map.to_json();
        // Shrink the declared dims below the recorded cell.
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "rows" {
                    *v = Json::Num(2.0);
                }
            }
        }
        assert!(FaultMap::from_json(&doc).is_none());
    }

    #[test]
    fn tile_seeds_differ_across_layers_and_tiles() {
        let cfg = ReliabilityConfig { seed: 42, ..ReliabilityConfig::ideal() };
        let mut seen = BTreeSet::new();
        for layer in 0..8 {
            for tile in 0..64 {
                assert!(seen.insert(cfg.tile_seed(layer, tile)), "seed collision");
            }
        }
    }

    #[test]
    fn ideal_config_is_inactive() {
        assert!(!ReliabilityConfig::ideal().is_active());
        assert!(ReliabilityConfig::faulty(FaultRates::stuck(0.01), 0, ProgramPolicy::Naive)
            .is_active());
    }

    #[test]
    fn degradation_stats_merge_and_publish() {
        let mut a = DegradationStats { cells: 2, masked: 1, ..DegradationStats::default() };
        let b = DegradationStats {
            cells: 3,
            unrecoverable: 1,
            remapped: 4,
            retries: 7,
            magnitude_lost: 2.5,
            ..DegradationStats::default()
        };
        a.merge(&b);
        assert_eq!(a.cells, 5);
        assert_eq!(a.unrecoverable, 1);
        assert_eq!(a.remapped, 4);
        assert_eq!(a.masked, 1);
        assert_eq!(a.retries, 7);
        assert!((a.magnitude_lost - 2.5).abs() < 1e-12);
        assert!(!a.is_clean());
        assert!(DegradationStats::default().is_clean());

        let _guard = qsnc_telemetry::testing::lock();
        qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Record);
        qsnc_telemetry::reset();
        a.publish();
        let snap = qsnc_telemetry::snapshot();
        qsnc_telemetry::reset();
        qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Off);
        let get = |name: &str| {
            snap.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
        };
        assert_eq!(get("snc.fault.cells"), Some(5));
        assert_eq!(get("snc.fault.unrecoverable"), Some(1));
        assert_eq!(get("snc.fault.remapped"), Some(4));
        assert_eq!(get("snc.fault.masked"), Some(1));
    }
}
