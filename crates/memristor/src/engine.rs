//! Integer fast-path inference engine.
//!
//! A deployable network is exactly integer-valued: weights are clustered
//! grid codes (Eq. 6) and inter-layer signals are `M`-bit spike counts.
//! [`IntEngine`] exploits that — it compiles the pipeline's stages down to
//! packed `i8` code matrices ([`qsnc_tensor::PackedCodes`]), runs every
//! synaptic product through the `i32` [`qsnc_tensor::igemm`] kernels, and
//! replaces the per-call IFC float math with per-neuron integer threshold
//! tables built once at compile time. All working buffers come from the
//! [`qsnc_tensor::scratch`] arena, so steady-state inference performs zero
//! heap allocations (measured by the allocation-count benchmarks).
//!
//! **Bit-exactness.** The engine is bit-identical to the float pipeline
//! with exact synaptic sums ([`crate::SpikingNetwork::infer_reference`]):
//! every accumulator is an integer bounded below `2^24`, so the float
//! path's `f32` sums are exact and equal the engine's `i32` sums; the
//! requant thresholds are found by binary search over the *identical* float
//! expressions the pipeline evaluates, so each neuron's spike count agrees
//! on every possible accumulator value; and count → activation round trips
//! (`round((c/s)·s) == c`) plus the monotone max-pool commute exactly. The
//! proptests in `tests/engine_bit_identity.rs` assert this across
//! `M, N ∈ {2..8}` including the IFC saturation boundary.
//!
//! The engine is built only when the whole network is expressible in this
//! integer form — conv/FC/max-pool/flatten stages, ideal (noise-free)
//! programming, codes that fit `i8`, accumulators under `2^24` — and is
//! used only for noise-free reads; anything else falls back to the float
//! substrate simulation.

use crate::pipeline::{Stage, SynKind, SynapticStage};
use qsnc_quant::ActivationQuantizer;
use qsnc_tensor::{igemm, igemm_conv, scratch, PackedCodes, Tensor};
use std::time::Instant;

/// Records `elapsed` since `t0` (µs) into the named quantile sketch; the
/// `Option` is `None` when telemetry was off at stage entry, making the
/// disabled cost a single branch.
#[inline]
fn stage_us(name: &str, t0: Option<Instant>) -> Option<Instant> {
    if let Some(t0) = t0 {
        qsnc_telemetry::quantile_observe(name, t0.elapsed().as_secs_f64() * 1e6);
        Some(Instant::now())
    } else {
        None
    }
}

/// Accumulator magnitude bound guaranteeing `f32` exactness of the float
/// oracle's sums (every partial sum stays an integer below `2^24`).
const EXACT_F32_BOUND: i64 = 1 << 24;

/// How a synaptic stage's accumulator becomes the stage output.
///
/// `pub(crate)` (like [`EngineSyn`], [`EngineStage`], and the [`IntEngine`]
/// fields) so the [`crate::artifact`] serializer can walk and rebuild a
/// compiled engine without re-deriving thresholds.
pub(crate) enum EngineOut {
    /// Intermediate stage: IFC + `M`-bit counter, precompiled to ascending
    /// per-neuron thresholds. `thresholds[f · max_level + (c−1)]` is the
    /// smallest accumulator for which neuron `f` counts at least `c`
    /// (`i32::MAX` when unreachable), so the count for accumulator `y` is
    /// the number of thresholds `≤ y`.
    Counts {
        max_level: u32,
        out_scale: f32,
        thresholds: Vec<i32>,
        /// Whether the float path tallies spike telemetry here (it does
        /// only for rectifying counter stages).
        record: bool,
    },
    /// Final stage: evaluate the float pre-activation per neuron and apply
    /// the stage's requant, exactly as the float pipeline does.
    Analog,
}

/// One synaptic stage in integer form.
pub(crate) struct EngineSyn {
    pub(crate) kind: SynKind,
    pub(crate) packed: PackedCodes,
    pub(crate) weight_scale: f32,
    pub(crate) in_scale: f32,
    pub(crate) bias: Vec<f32>,
    pub(crate) rectify: bool,
    pub(crate) out_quant: Option<ActivationQuantizer>,
    pub(crate) out: EngineOut,
}

pub(crate) enum EngineStage {
    // Boxed: a compiled synaptic stage carries several packed panels and
    // would otherwise dwarf the other variants.
    Syn(Box<EngineSyn>),
    MaxPool { window: usize, stride: usize },
    Flatten,
}

/// Signal geometry threaded through the stages: `[1, c, h, w]` while
/// spatial, `[1, c]` (with `h = w = 1`) once flattened.
#[derive(Clone, Copy)]
pub(crate) struct SignalShape {
    pub c: usize,
    pub h: usize,
    pub w: usize,
    pub flat: bool,
}

impl SignalShape {
    fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Output tensor dims matching what the float pipeline returns.
    pub(crate) fn dims(&self) -> Vec<usize> {
        if self.flat {
            vec![1, self.len()]
        } else {
            vec![1, self.c, self.h, self.w]
        }
    }
}

/// The compiled integer engine for one [`crate::SpikingNetwork`].
pub(crate) struct IntEngine {
    pub(crate) stages: Vec<EngineStage>,
    pub(crate) input_quant: ActivationQuantizer,
}

/// Spike count of `stage` output neuron `f` for exact integer accumulator
/// `y`, `None` when the stage has no counter. Evaluates the identical float
/// expressions as `SynapticStage::forward`/`requant`, which is what makes
/// the precompiled thresholds bit-faithful.
fn count_for_accum(stage: &SynapticStage, f: usize, y: f32) -> Option<u32> {
    let z = stage.weight_scale * y / stage.in_quant.scale() + stage.bias[f];
    match (stage.rectify, stage.out_quant) {
        (true, Some(q)) => {
            let ifc = crate::spike::Ifc::new(1.0 / q.scale(), q.max_level());
            Some(ifc.convert(z.max(0.0)))
        }
        (false, Some(q)) => {
            Some((z * q.scale()).round().clamp(0.0, q.max_level() as f32) as u32)
        }
        _ => None,
    }
}

/// Precomputes the per-neuron count thresholds for a counter stage: for
/// every neuron `f` and count `c ∈ 1..=max_level`, the smallest integer
/// accumulator `y ∈ [−bound, bound]` with `count(y) ≥ c`. The count is
/// monotone in `y` (positive weight scale, monotone IFC), so binary search
/// over the exact float expression finds each boundary.
fn build_thresholds(stage: &SynapticStage, bound: i32, max_level: u32, out_dim: usize) -> Option<Vec<i32>> {
    let mut thresholds = Vec::with_capacity(out_dim * max_level as usize);
    for f in 0..out_dim {
        for c in 1..=max_level {
            let (mut lo, mut hi) = (-bound, bound + 1);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if count_for_accum(stage, f, mid as f32)? >= c {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            thresholds.push(if lo > bound { i32::MAX } else { lo });
        }
    }
    Some(thresholds)
}

impl IntEngine {
    /// Compiles `stages` to the integer representation, or `None` when any
    /// stage falls outside the exactly-representable subset.
    pub(crate) fn build(stages: &[Stage], input_quant: ActivationQuantizer) -> Option<IntEngine> {
        let mut compiled = Vec::with_capacity(stages.len());
        for (idx, stage) in stages.iter().enumerate() {
            let last = idx == stages.len() - 1;
            match stage {
                Stage::Synaptic(s) => {
                    let (in_dim, out_dim) = match s.kind {
                        SynKind::Conv { spec, in_c, out_c } => {
                            (spec.kernel * spec.kernel * in_c, out_c)
                        }
                        SynKind::Fc { in_dim, out_dim } => (in_dim, out_dim),
                    };
                    let packed = PackedCodes::try_pack(&s.codes, out_dim, in_dim)?;
                    let in_max = s.in_quant.max_level();
                    let bound = packed.max_abs_accum(in_max);
                    if bound >= EXACT_F32_BOUND {
                        return None;
                    }
                    let out = match (last, s.out_quant) {
                        // Interior stages must produce integer counts.
                        (false, Some(q)) => EngineOut::Counts {
                            max_level: q.max_level(),
                            out_scale: q.scale(),
                            thresholds: build_thresholds(s, bound as i32, q.max_level(), out_dim)?,
                            record: s.rectify,
                        },
                        (false, None) => return None,
                        // The final stage may read out analog.
                        (true, _) => EngineOut::Analog,
                    };
                    compiled.push(EngineStage::Syn(Box::new(EngineSyn {
                        kind: s.kind,
                        packed,
                        weight_scale: s.weight_scale,
                        in_scale: s.in_quant.scale(),
                        bias: s.bias.clone(),
                        rectify: s.rectify,
                        out_quant: s.out_quant,
                        out,
                    })));
                }
                Stage::MaxPool { window, stride } => {
                    compiled.push(EngineStage::MaxPool { window: *window, stride: *stride });
                }
                Stage::Flatten => compiled.push(EngineStage::Flatten),
                // Avg-pool, standalone requant and residual paths leave the
                // integer-count domain; fall back to the float substrate.
                _ => return None,
            }
        }
        Some(IntEngine { stages: compiled, input_quant })
    }

    /// Runs integer inference on `[1, …]` input `x`, writing the float
    /// output signal (channel-major, same layout as the float pipeline's
    /// flattened output tensor) into `out` and returning its shape.
    ///
    /// `out` is cleared and resized; with a warm reused `out` and a warm
    /// scratch arena the call performs zero heap allocations.
    pub(crate) fn infer_into(&self, x: &Tensor, out: &mut Vec<f32>) -> SignalShape {
        self.infer_batch_into(x, out)
    }

    /// Batched variant of [`Self::infer_into`]: `xs` is `[B, …]` and the
    /// per-example output signals are written back-to-back into `out`
    /// (`B · shape.len()` floats). Each example's arithmetic is the exact
    /// integer computation of the single-example path — FC stages run one
    /// `igemm` with `M = B`, conv stages stream examples through shared
    /// scratch buffers — so every example stays bit-identical to
    /// [`crate::SpikingNetwork::infer_reference`]. With a warm reused `out`
    /// and a warm scratch arena, a fixed batch size performs zero heap
    /// allocations.
    pub(crate) fn infer_batch_into(&self, xs: &Tensor, out: &mut Vec<f32>) -> SignalShape {
        let dims = xs.dims();
        let batch = dims[0];
        let tele = qsnc_telemetry::enabled();
        if tele {
            qsnc_telemetry::counter_add("snc.engine.infer", batch as u64);
        }
        let mut shape = if dims.len() == 4 {
            SignalShape { c: dims[1], h: dims[2], w: dims[3], flat: false }
        } else {
            SignalShape { c: dims[1..].iter().product(), h: 1, w: 1, flat: true }
        };

        // Rate-code the input: same integer levels the float path's input
        // quantization produces.
        let mut cur = scratch::take_i32(batch * shape.len());
        for (count, &v) in cur.iter_mut().zip(xs.as_slice()) {
            *count = self.input_quant.spike_count(v) as i32;
        }

        for stage in &self.stages {
            match stage {
                EngineStage::Syn(syn) => {
                    let next = self.run_synaptic(syn, batch, &cur, &mut shape, out, tele);
                    scratch::put_i32(cur);
                    match next {
                        Some(counts) => cur = counts,
                        // Analog readout wrote `out` directly; it is
                        // always the final stage.
                        None => return shape,
                    }
                }
                EngineStage::MaxPool { window, stride } => {
                    let t0 = tele.then(Instant::now);
                    let spec = qsnc_tensor::Conv2dSpec::new(*window, *stride, 0);
                    let (oh, ow) = (spec.output_size(shape.h), spec.output_size(shape.w));
                    let (in_len, out_len) = (shape.len(), shape.c * oh * ow);
                    let mut next = scratch::take_i32(batch * out_len);
                    for b in 0..batch {
                        let image = &cur[b * in_len..(b + 1) * in_len];
                        let pooled = &mut next[b * out_len..(b + 1) * out_len];
                        for ch in 0..shape.c {
                            let src = &image[ch * shape.h * shape.w..(ch + 1) * shape.h * shape.w];
                            let dst = &mut pooled[ch * oh * ow..(ch + 1) * oh * ow];
                            for oy in 0..oh {
                                for ox in 0..ow {
                                    let mut best = i32::MIN;
                                    for ky in 0..*window {
                                        let row = &src[(oy * stride + ky) * shape.w..];
                                        for kx in 0..*window {
                                            best = best.max(row[ox * stride + kx]);
                                        }
                                    }
                                    dst[oy * ow + ox] = best;
                                }
                            }
                        }
                    }
                    scratch::put_i32(cur);
                    cur = next;
                    shape.h = oh;
                    shape.w = ow;
                    stage_us("snc.engine.stage.pool.us", t0);
                }
                EngineStage::Flatten => {
                    shape = SignalShape { c: shape.len(), h: 1, w: 1, flat: true };
                }
            }
        }

        // The network ended on an integer-count signal: decode counts to
        // activations with the last counter's scale, exactly as the float
        // pipeline's running tensor holds them.
        let out_scale = self
            .stages
            .iter()
            .rev()
            .find_map(|s| match s {
                EngineStage::Syn(syn) => match syn.out {
                    EngineOut::Counts { out_scale, .. } => Some(out_scale),
                    _ => None,
                },
                _ => None,
            })
            .unwrap_or_else(|| self.input_quant.scale());
        out.clear();
        out.extend(cur.iter().map(|&c| c as f32 / out_scale));
        scratch::put_i32(cur);
        shape
    }

    /// Runs one synaptic stage over a batch. Returns the output counts for
    /// interior stages, or `None` after writing the analog readout into
    /// `out`. With `tele` set, the synaptic multiply and the IFC/analog
    /// readout record separately into the `snc.engine.stage.*.us` quantile
    /// sketches, which is how `/metrics` attributes infer time per stage.
    fn run_synaptic(
        &self,
        syn: &EngineSyn,
        batch: usize,
        cur: &[i32],
        shape: &mut SignalShape,
        out: &mut Vec<f32>,
        tele: bool,
    ) -> Option<Vec<i32>> {
        let t0 = tele.then(Instant::now);
        // Multiply into per-example channel-major `[out_dim, pix]`
        // accumulators (pix = 1 for FC, where the layouts coincide). Conv
        // runs in the weights-times-columns orientation so the inner loop
        // streams whole pixel rows and the zero-skip fires on sparse
        // clustered weights; FC folds the whole batch into one `igemm`
        // with `M = batch` (its `[batch, out_dim]` row-major output is
        // exactly the concatenated per-example layout).
        let (pix, out_dim, acc) = match syn.kind {
            SynKind::Conv { spec, in_c, out_c } => {
                debug_assert_eq!(shape.c, in_c, "conv input channel mismatch");
                let (oh, ow) = (spec.output_size(shape.h), spec.output_size(shape.w));
                let pix = oh * ow;
                let in_len = shape.len();
                let mut acc = scratch::take_i32(batch * out_c * pix);
                for b in 0..batch {
                    // igemm_conv lowers each example with whichever loop
                    // order is faster for the active kernel and SIMD level
                    // (im2row + dot kernel, or im2col + zero-skipping axpy).
                    igemm_conv(
                        &cur[b * in_len..(b + 1) * in_len],
                        in_c,
                        (shape.h, shape.w),
                        spec,
                        &syn.packed,
                        &mut acc[b * out_c * pix..(b + 1) * out_c * pix],
                    );
                }
                *shape = SignalShape { c: out_c, h: oh, w: ow, flat: shape.flat };
                (pix, out_c, acc)
            }
            SynKind::Fc { in_dim, out_dim } => {
                debug_assert_eq!(cur.len(), batch * in_dim, "fc input length mismatch");
                let mut acc = scratch::take_i32(batch * out_dim);
                igemm(batch, in_dim, out_dim, cur, &syn.packed, &mut acc);
                *shape = SignalShape { c: out_dim, h: 1, w: 1, flat: true };
                (1, out_dim, acc)
            }
        };

        let stride = out_dim * pix;
        let t0 = stage_us(
            match syn.kind {
                SynKind::Conv { .. } => "snc.engine.stage.conv.us",
                SynKind::Fc { .. } => "snc.engine.stage.fc.us",
            },
            t0,
        );
        match &syn.out {
            EngineOut::Counts { max_level, thresholds, record, .. } => {
                let max = *max_level as usize;
                let mut next = scratch::take_i32(batch * stride);
                let mut spikes = 0u64;
                let mut saturated = 0u64;
                let tally = *record && qsnc_telemetry::enabled();
                for b in 0..batch {
                    let abase = &acc[b * stride..(b + 1) * stride];
                    let nbase = &mut next[b * stride..(b + 1) * stride];
                    for f in 0..out_dim {
                        let t = &thresholds[f * max..(f + 1) * max];
                        let arow = &abase[f * pix..(f + 1) * pix];
                        let nrow = &mut nbase[f * pix..(f + 1) * pix];
                        for (nv, &y) in nrow.iter_mut().zip(arow.iter()) {
                            let count = t.partition_point(|&t| t <= y) as i32;
                            *nv = count;
                            if tally {
                                spikes += count as u64;
                                if count as u32 >= *max_level {
                                    saturated += 1;
                                }
                            }
                        }
                    }
                }
                if tally {
                    qsnc_telemetry::counter_add("snc.spikes", spikes);
                    qsnc_telemetry::counter_add("snc.ifc.conversions", (batch * stride) as u64);
                    qsnc_telemetry::counter_add("snc.ifc.saturated", saturated);
                }
                stage_us("snc.engine.stage.ifc.us", t0);
                scratch::put_i32(acc);
                Some(next)
            }
            EngineOut::Analog => {
                // Final readout: identical float expressions to the
                // pipeline's `forward` + `requant`.
                out.clear();
                out.resize(batch * stride, 0.0);
                for b in 0..batch {
                    let abase = &acc[b * stride..(b + 1) * stride];
                    let obase = &mut out[b * stride..(b + 1) * stride];
                    for f in 0..out_dim {
                        let arow = &abase[f * pix..(f + 1) * pix];
                        let orow = &mut obase[f * pix..(f + 1) * pix];
                        for (ov, &y) in orow.iter_mut().zip(arow.iter()) {
                            let z = syn.weight_scale * (y as f32) / syn.in_scale + syn.bias[f];
                            *ov = match (syn.rectify, syn.out_quant) {
                                (true, Some(q)) => {
                                    let ifc =
                                        crate::spike::Ifc::new(1.0 / q.scale(), q.max_level());
                                    ifc.convert(z.max(0.0)) as f32 / q.scale()
                                }
                                (true, None) => z.max(0.0),
                                (false, Some(q)) => q.quantize_value(z),
                                (false, None) => z,
                            };
                        }
                    }
                }
                stage_us("snc.engine.stage.analog.us", t0);
                scratch::put_i32(acc);
                None
            }
        }
    }
}

impl std::fmt::Debug for IntEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntEngine")
            .field("stages", &self.stages.len())
            .finish()
    }
}
