//! Versioned on-disk compiled-model artifacts (`.qsnca`).
//!
//! `qsnc deploy` freezes a compiled [`SpikingNetwork`]'s integer fast path
//! into a self-contained binary artifact; serve workers load it straight
//! back into an engine without touching the training stack (no clustering,
//! no threshold search — the tables ship precomputed). This is the paper's
//! deployment story made literal: quantization decisions are made offline
//! and the SNC runs a frozen integer program.
//!
//! # File layout
//!
//! All integers are little-endian. See `docs/artifact.md` for the full
//! byte-level tables.
//!
//! ```text
//! magic "QSNA" | format version u32 | section count u32 |
//!   section table: per entry id u32, offset u64, len u64 |
//!   section payloads … |
//! trailer: FNV-1a-64 checksum (u64) over every preceding byte
//! ```
//!
//! Sections are looked up by id ([`SECTION_MODEL`], [`SECTION_TILES`],
//! [`SECTION_PROVENANCE`]); unknown ids are skipped by their declared
//! length, so future writers can add sections without breaking old readers.
//!
//! One artifact is one *model version* to the serving layer: `qsnc serve`
//! registers several artifacts under distinct model names behind one
//! port, and a hot swap (`qsnc-serve`'s `Server::swap_artifact` / the
//! admin `POST /models/swap` route) runs this loader's full validation on
//! the incoming file — plus an input-dims equality check against the
//! model being replaced — *before* the engine pointer flips, so a
//! rejected artifact leaves the old version serving untouched. The
//! [`Provenance`] digest is what makes the swap auditable end to end
//! (deploy log → serve log → admin `GET /models` → swap report).
//!
//! # Loading contract
//!
//! - **Single read, zero re-parse copies**: the whole file is read once
//!   ([`load_artifact`] → `std::fs::read`) and sections are referenced by
//!   offset into that arena; bulk payloads (codes, thresholds) are
//!   converted directly from validated slices.
//! - **Strict validation before allocation**: every declared length and
//!   offset is bounds-checked (with `checked_mul`/`checked_add`) against
//!   the actual byte budget *before* any dependent allocation; the trailer
//!   checksum is verified before any section is parsed; sections may not
//!   overlap. A corrupt or hostile file produces a typed [`ArtifactError`],
//!   never a panic or an attacker-sized allocation.
//! - **Bit-identical round trip**: the loaded engine's `infer_into` matches
//!   the in-process-compiled engine exactly — scales travel as raw `f32`
//!   bits or exact `mantissa · 2^shift` pairs, threshold tables are copied
//!   verbatim, and code packing is deterministic. Property tests in
//!   `tests/artifact_roundtrip.rs` enforce this.

use crate::engine::{EngineOut, EngineStage, EngineSyn, IntEngine};
use crate::pipeline::{SpikingNetwork, Stage, SynKind};
use qsnc_quant::{ActivationQuantizer, IntWeights};
use qsnc_tensor::{Conv2dSpec, PackedCodes};
use std::fmt;
use std::io;
use std::path::Path;

/// Leading magic bytes of a `.qsnca` artifact.
pub const MAGIC: [u8; 4] = *b"QSNA";
/// Current artifact format version.
pub const FORMAT_VERSION: u32 = 1;
/// Section id: compiled integer model (quantizers, topology, codes,
/// threshold tables).
pub const SECTION_MODEL: u32 = 1;
/// Section id: crossbar tile mapping and fault-remap assignments.
pub const SECTION_TILES: u32 = 2;
/// Section id: checkpoint provenance (digest, bit widths, model name).
pub const SECTION_PROVENANCE: u32 = 3;

const HEADER_LEN: usize = 12;
const ENTRY_LEN: usize = 20;
const TRAILER_LEN: usize = 8;
/// Caps on structurally-unbounded counts, far above anything a real
/// deployment writes, so hostile headers fail fast.
const MAX_SECTIONS: usize = 64;
const MAX_STAGES: usize = 4096;
const MAX_INPUT_RANK: usize = 8;
const MAX_INPUT_LEN: usize = 1 << 24;

/// Same accumulator-exactness bound the engine compiler enforces
/// (`crate::engine::EXACT_F32_BOUND`); re-checked at load so a corrupt
/// artifact cannot smuggle in a network whose float oracle would not be
/// exact.
const EXACT_F32_BOUND: i64 = 1 << 24;

/// Errors from artifact encoding, decoding, or I/O.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying file I/O failure.
    Io(io::Error),
    /// The file does not start with the `QSNA` magic.
    BadMagic,
    /// The format version is not one this reader understands.
    BadVersion(u32),
    /// The file ended (or a section ran out) before a required field.
    Truncated {
        /// What was being read when the bytes ran out.
        what: &'static str,
    },
    /// A structurally invalid field value.
    Malformed(String),
    /// The trailer checksum does not match the file contents.
    ChecksumMismatch,
    /// Two sections' declared byte ranges overlap.
    SectionOverlap,
    /// A required section id is absent from the section table.
    MissingSection(u32),
    /// The network has no compiled integer fast path to freeze.
    NotCompiled,
    /// The network cannot be exported (e.g. it was itself loaded from an
    /// artifact and carries no substrate metadata).
    NotExportable(&'static str),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact i/o error: {e}"),
            ArtifactError::BadMagic => write!(f, "not a qsnc artifact (bad magic)"),
            ArtifactError::BadVersion(v) => write!(f, "unsupported artifact format version {v}"),
            ArtifactError::Truncated { what } => write!(f, "artifact truncated while reading {what}"),
            ArtifactError::Malformed(m) => write!(f, "malformed artifact: {m}"),
            ArtifactError::ChecksumMismatch => write!(f, "artifact checksum mismatch"),
            ArtifactError::SectionOverlap => write!(f, "artifact sections overlap"),
            ArtifactError::MissingSection(id) => write!(f, "artifact is missing section {id}"),
            ArtifactError::NotCompiled => {
                write!(f, "network has no integer fast path to export")
            }
            ArtifactError::NotExportable(m) => write!(f, "network cannot be exported: {m}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// Provenance record tying an artifact back to the checkpoint and
/// quantization configuration it was compiled from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// FNV-1a-64 digest of the exact checkpoint bytes
    /// ([`qsnc_nn::checkpoint_digest`]) the network was built from, or 0
    /// when no checkpoint was involved (e.g. freshly trained in-process).
    pub checkpoint_digest: u64,
    /// Synaptic weight bit width `N` the network was quantized with.
    pub weight_bits: u32,
    /// Activation/signal bit width `M`.
    pub activation_bits: u32,
    /// Free-form model identifier (e.g. `"lenet"`).
    pub model: String,
}

/// Geometry of one synaptic layer's crossbar tiling, as recorded in the
/// artifact's TILES section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileMap {
    /// Wordlines (rows) of the layer's weight matrix.
    pub in_dim: usize,
    /// Bitlines (columns).
    pub out_dim: usize,
    /// Physical crossbar edge length.
    pub tile: usize,
    /// Tile-grid rows, `⌈in_dim / tile⌉`.
    pub row_blocks: usize,
    /// Tile-grid columns, `⌈out_dim / tile⌉`.
    pub col_blocks: usize,
    /// Per-tile logical-column → physical-bitline assignments in
    /// block-row-major tile order; empty for identity placement (no
    /// fault-remapping at deploy time).
    pub assignments: Vec<Vec<usize>>,
}

/// A decoded artifact: the engine-backed network plus its metadata.
#[derive(Debug)]
pub struct LoadedArtifact {
    /// The network, carrying **only** the integer fast path
    /// ([`SpikingNetwork::is_artifact_only`] is `true`).
    pub network: SpikingNetwork,
    /// Per-example input tensor dims (no leading batch dimension).
    pub input_dims: Vec<usize>,
    /// Provenance record written at deploy time.
    pub provenance: Provenance,
    /// Crossbar tiling of every synaptic layer, in stage order.
    pub tiles: Vec<TileMap>,
}

/// FNV-1a-64 over `bytes` — the same digest provenance uses, reused as the
/// trailer checksum.
fn checksum(bytes: &[u8]) -> u64 {
    qsnc_nn::checkpoint_digest(bytes)
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    put_u32(out, v.to_bits());
}

fn u32_of(v: usize, what: &'static str) -> Result<u32, ArtifactError> {
    u32::try_from(v).map_err(|_| ArtifactError::NotExportable(what))
}

fn encode_quantizer(out: &mut Vec<u8>, q: &ActivationQuantizer) {
    put_u32(out, q.bits());
    put_f32(out, q.scale());
}

fn encode_model(
    engine: &IntEngine,
    input_dims: &[usize],
) -> Result<Vec<u8>, ArtifactError> {
    if input_dims.is_empty() || input_dims.len() > MAX_INPUT_RANK {
        return Err(ArtifactError::NotExportable("input rank out of range"));
    }
    let input_len = input_dims
        .iter()
        .try_fold(1usize, |a, &d| a.checked_mul(d))
        .filter(|&n| (1..=MAX_INPUT_LEN).contains(&n))
        .ok_or(ArtifactError::NotExportable("input element count out of range"))?;
    let _ = input_len;
    let mut out = Vec::new();
    encode_quantizer(&mut out, &engine.input_quant);
    put_u32(&mut out, input_dims.len() as u32);
    for &d in input_dims {
        put_u32(&mut out, u32_of(d, "input dim exceeds u32")?);
    }
    put_u32(&mut out, u32_of(engine.stages.len(), "stage count exceeds u32")?);
    for stage in &engine.stages {
        match stage {
            EngineStage::Syn(syn) => encode_syn(&mut out, syn)?,
            EngineStage::MaxPool { window, stride } => {
                out.push(1);
                put_u32(&mut out, u32_of(*window, "pool window exceeds u32")?);
                put_u32(&mut out, u32_of(*stride, "pool stride exceeds u32")?);
            }
            EngineStage::Flatten => out.push(2),
        }
    }
    Ok(out)
}

fn encode_syn(out: &mut Vec<u8>, syn: &EngineSyn) -> Result<(), ArtifactError> {
    out.push(0);
    match syn.kind {
        SynKind::Conv { spec, in_c, out_c } => {
            out.push(0);
            put_u32(out, u32_of(spec.kernel, "conv kernel exceeds u32")?);
            put_u32(out, u32_of(spec.stride, "conv stride exceeds u32")?);
            put_u32(out, u32_of(spec.padding, "conv padding exceeds u32")?);
            put_u32(out, u32_of(in_c, "conv in channels exceed u32")?);
            put_u32(out, u32_of(out_c, "conv out channels exceed u32")?);
        }
        SynKind::Fc { in_dim, out_dim } => {
            out.push(1);
            put_u32(out, u32_of(in_dim, "fc in dim exceeds u32")?);
            put_u32(out, u32_of(out_dim, "fc out dim exceeds u32")?);
        }
    }
    // Weight codes + pitch travel in the exact integer deployment form
    // (i8 levels, odd-mantissa power-of-two pitch decomposition) so the
    // loader reconstructs `weight_scale` bit-for-bit.
    let codes = syn.packed.unpack_codes();
    let iw = IntWeights::from_codes(&codes, syn.weight_scale)
        .ok_or(ArtifactError::NotExportable("weight scale or codes not in integer form"))?;
    put_i32(out, iw.mantissa);
    put_i32(out, iw.shift);
    put_f32(out, syn.in_scale);
    out.push(syn.rectify as u8);
    match &syn.out_quant {
        Some(q) => {
            out.push(1);
            encode_quantizer(out, q);
        }
        None => out.push(0),
    }
    for &b in &syn.bias {
        put_f32(out, b);
    }
    out.extend(iw.codes.iter().map(|&c| c as u8));
    match &syn.out {
        EngineOut::Analog => out.push(0),
        EngineOut::Counts { max_level, out_scale, thresholds, record } => {
            out.push(1);
            put_u32(out, *max_level);
            put_f32(out, *out_scale);
            out.push(*record as u8);
            for &t in thresholds {
                put_i32(out, t);
            }
        }
    }
    Ok(())
}

fn encode_tiles(snn: &SpikingNetwork) -> Result<Vec<u8>, ArtifactError> {
    let syn: Vec<_> = snn
        .stages()
        .iter()
        .filter_map(|s| match s {
            Stage::Synaptic(s) => Some(s),
            _ => None,
        })
        .collect();
    let mut out = Vec::new();
    put_u32(&mut out, u32_of(syn.len(), "synaptic layer count exceeds u32")?);
    for s in syn {
        let t = &s.tiles;
        put_u32(&mut out, u32_of(t.in_dim(), "tile in dim exceeds u32")?);
        put_u32(&mut out, u32_of(t.out_dim(), "tile out dim exceeds u32")?);
        put_u32(&mut out, u32_of(t.tile(), "tile size exceeds u32")?);
        put_u32(&mut out, u32_of(t.row_blocks(), "tile row blocks exceed u32")?);
        put_u32(&mut out, u32_of(t.col_blocks(), "tile col blocks exceed u32")?);
        match t.remap_assignments() {
            None => out.push(0),
            Some(assignments) => {
                out.push(1);
                put_u32(&mut out, u32_of(assignments.len(), "tile count exceeds u32")?);
                for assign in assignments {
                    put_u32(&mut out, u32_of(assign.len(), "assignment length exceeds u32")?);
                    for &p in assign {
                        put_u32(&mut out, u32_of(p, "bitline index exceeds u32")?);
                    }
                }
            }
        }
    }
    Ok(out)
}

fn encode_provenance(p: &Provenance) -> Result<Vec<u8>, ArtifactError> {
    let mut out = Vec::new();
    put_u64(&mut out, p.checkpoint_digest);
    put_u32(&mut out, p.weight_bits);
    put_u32(&mut out, p.activation_bits);
    put_u32(&mut out, u32_of(p.model.len(), "model name exceeds u32")?);
    out.extend_from_slice(p.model.as_bytes());
    Ok(out)
}

/// Serializes a compiled network into `.qsnca` bytes.
///
/// `input_dims` are the per-example input tensor dims (no leading batch
/// dimension, e.g. `[1, 28, 28]` for LeNet) — the serving layer sizes its
/// request tensors from them.
///
/// # Errors
///
/// [`ArtifactError::NotCompiled`] when the network has no integer fast
/// path ([`SpikingNetwork::has_fast_path`]); [`ArtifactError::NotExportable`]
/// when it was itself loaded from an artifact or a field exceeds the
/// format's ranges.
pub fn encode_artifact(
    snn: &SpikingNetwork,
    input_dims: &[usize],
    provenance: &Provenance,
) -> Result<Vec<u8>, ArtifactError> {
    let engine = snn.engine().ok_or(ArtifactError::NotCompiled)?;
    if snn.is_artifact_only() {
        return Err(ArtifactError::NotExportable(
            "artifact-loaded networks carry no substrate metadata to re-export",
        ));
    }
    let sections = [
        (SECTION_MODEL, encode_model(engine, input_dims)?),
        (SECTION_TILES, encode_tiles(snn)?),
        (SECTION_PROVENANCE, encode_provenance(provenance)?),
    ];
    let table_end = HEADER_LEN + sections.len() * ENTRY_LEN;
    let payload_len: usize = sections.iter().map(|(_, p)| p.len()).sum();
    let mut out = Vec::with_capacity(table_end + payload_len + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, sections.len() as u32);
    let mut offset = table_end as u64;
    for (id, payload) in &sections {
        put_u32(&mut out, *id);
        put_u64(&mut out, offset);
        put_u64(&mut out, payload.len() as u64);
        offset += payload.len() as u64;
    }
    for (_, payload) in &sections {
        out.extend_from_slice(payload);
    }
    let sum = checksum(&out);
    put_u64(&mut out, sum);
    Ok(out)
}

/// Writes a compiled network to `path` as a `.qsnca` artifact.
///
/// # Errors
///
/// Everything [`encode_artifact`] returns, plus [`ArtifactError::Io`] on
/// write failure.
pub fn save_artifact(
    snn: &SpikingNetwork,
    input_dims: &[usize],
    provenance: &Provenance,
    path: impl AsRef<Path>,
) -> Result<(), ArtifactError> {
    let bytes = encode_artifact(snn, input_dims, provenance)?;
    std::fs::write(path, bytes)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over one section's bytes: every read states what
/// it is reading so truncation errors are self-describing, and no read ever
/// allocates from a declared count before the backing bytes are proven
/// present.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ArtifactError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ArtifactError::Truncated { what })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ArtifactError> {
        Ok(self.take(1, what)?[0])
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, ArtifactError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(ArtifactError::Malformed(format!("{what}: invalid flag byte {v}"))),
        }
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ArtifactError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i32(&mut self, what: &'static str) -> Result<i32, ArtifactError> {
        Ok(self.u32(what)? as i32)
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ArtifactError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// A positive `usize` from a u32 field.
    fn dim(&mut self, what: &'static str) -> Result<usize, ArtifactError> {
        let v = self.u32(what)? as usize;
        if v == 0 {
            return Err(ArtifactError::Malformed(format!("{what} must be positive")));
        }
        Ok(v)
    }

    /// A finite, strictly positive f32 from raw bits.
    fn scale(&mut self, what: &'static str) -> Result<f32, ArtifactError> {
        let v = f32::from_bits(self.u32(what)?);
        if !(v.is_finite() && v > 0.0) {
            return Err(ArtifactError::Malformed(format!("{what} must be finite and positive")));
        }
        Ok(v)
    }

    /// `count` little-endian i32s, length-validated before conversion.
    fn i32_slice(&mut self, count: usize, what: &'static str) -> Result<Vec<i32>, ArtifactError> {
        let bytes = count
            .checked_mul(4)
            .ok_or_else(|| ArtifactError::Malformed(format!("{what}: count overflows")))?;
        let raw = self.take(bytes, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|b| i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect())
    }

    /// `count` finite little-endian f32s.
    fn f32_slice(&mut self, count: usize, what: &'static str) -> Result<Vec<f32>, ArtifactError> {
        let bytes = count
            .checked_mul(4)
            .ok_or_else(|| ArtifactError::Malformed(format!("{what}: count overflows")))?;
        let raw = self.take(bytes, what)?;
        let vals: Vec<f32> = raw
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        if vals.iter().any(|v| !v.is_finite()) {
            return Err(ArtifactError::Malformed(format!("{what}: non-finite value")));
        }
        Ok(vals)
    }

    fn finish(&self, what: &'static str) -> Result<(), ArtifactError> {
        if self.pos != self.buf.len() {
            return Err(ArtifactError::Malformed(format!(
                "{what}: {} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn decode_quantizer(c: &mut Cursor<'_>, what: &'static str) -> Result<ActivationQuantizer, ArtifactError> {
    let bits = c.u32(what)?;
    if !(1..=16).contains(&bits) {
        return Err(ArtifactError::Malformed(format!("{what}: bit width {bits} out of 1..=16")));
    }
    let scale = c.scale(what)?;
    Ok(ActivationQuantizer::with_scale(bits, scale))
}

fn decode_model(bytes: &[u8]) -> Result<(ActivationQuantizer, Vec<usize>, Vec<EngineStage>), ArtifactError> {
    let mut c = Cursor::new(bytes);
    let input_quant = decode_quantizer(&mut c, "input quantizer")?;
    let rank = c.u32("input rank")? as usize;
    if !(1..=MAX_INPUT_RANK).contains(&rank) {
        return Err(ArtifactError::Malformed(format!("input rank {rank} out of 1..={MAX_INPUT_RANK}")));
    }
    let mut input_dims = Vec::new();
    for _ in 0..rank {
        input_dims.push(c.dim("input dim")?);
    }
    input_dims
        .iter()
        .try_fold(1usize, |a, &d| a.checked_mul(d))
        .filter(|&n| n <= MAX_INPUT_LEN)
        .ok_or_else(|| ArtifactError::Malformed("input element count out of range".into()))?;
    let stage_count = c.u32("stage count")? as usize;
    if stage_count == 0 || stage_count > MAX_STAGES {
        return Err(ArtifactError::Malformed(format!("stage count {stage_count} out of 1..={MAX_STAGES}")));
    }
    let mut stages = Vec::new();
    // Maximum spike count feeding the next synaptic stage — tracked to
    // re-verify the engine's accumulator-exactness bound on load.
    let mut cur_max = input_quant.max_level();
    for idx in 0..stage_count {
        let last = idx == stage_count - 1;
        match c.u8("stage tag")? {
            0 => stages.push(decode_syn(&mut c, last, &mut cur_max)?),
            1 => {
                let window = c.dim("pool window")?;
                let stride = c.dim("pool stride")?;
                stages.push(EngineStage::MaxPool { window, stride });
            }
            2 => stages.push(EngineStage::Flatten),
            t => return Err(ArtifactError::Malformed(format!("unknown stage tag {t}"))),
        }
    }
    c.finish("model section")?;
    Ok((input_quant, input_dims, stages))
}

fn decode_syn(
    c: &mut Cursor<'_>,
    last: bool,
    cur_max: &mut u32,
) -> Result<EngineStage, ArtifactError> {
    let kind = match c.u8("synapse kind")? {
        0 => {
            let kernel = c.dim("conv kernel")?;
            let stride = c.dim("conv stride")?;
            let padding = c.u32("conv padding")? as usize;
            let in_c = c.dim("conv in channels")?;
            let out_c = c.dim("conv out channels")?;
            SynKind::Conv { spec: Conv2dSpec::new(kernel, stride, padding), in_c, out_c }
        }
        1 => {
            let in_dim = c.dim("fc in dim")?;
            let out_dim = c.dim("fc out dim")?;
            SynKind::Fc { in_dim, out_dim }
        }
        t => return Err(ArtifactError::Malformed(format!("unknown synapse kind {t}"))),
    };
    let (in_dim, out_dim) = match kind {
        SynKind::Conv { spec, in_c, out_c } => (
            spec.kernel
                .checked_mul(spec.kernel)
                .and_then(|k| k.checked_mul(in_c))
                .ok_or_else(|| ArtifactError::Malformed("conv patch size overflows".into()))?,
            out_c,
        ),
        SynKind::Fc { in_dim, out_dim } => (in_dim, out_dim),
    };
    let mantissa = c.i32("weight scale mantissa")?;
    let shift = c.i32("weight scale shift")?;
    let weight_scale = IntWeights { codes: Vec::new(), mantissa, shift }.scale();
    if !(weight_scale.is_finite() && weight_scale > 0.0) {
        return Err(ArtifactError::Malformed(
            "weight scale must reconstruct to a finite positive value".into(),
        ));
    }
    let in_scale = c.scale("input scale")?;
    let rectify = c.bool("rectify flag")?;
    let out_quant = if c.bool("output quantizer flag")? {
        Some(decode_quantizer(c, "output quantizer")?)
    } else {
        None
    };
    let bias = c.f32_slice(out_dim, "bias")?;
    let code_count = in_dim
        .checked_mul(out_dim)
        .ok_or_else(|| ArtifactError::Malformed("code matrix size overflows".into()))?;
    let raw_codes = c.take(code_count, "weight codes")?;
    let codes: Vec<i32> = raw_codes.iter().map(|&b| b as i8 as i32).collect();
    let packed = PackedCodes::try_pack(&codes, out_dim, in_dim)
        .ok_or_else(|| ArtifactError::Malformed("weight codes do not fit i8".into()))?;
    if packed.max_abs_accum(*cur_max) >= EXACT_F32_BOUND {
        return Err(ArtifactError::Malformed(
            "accumulator bound violates the engine's f32-exactness guarantee".into(),
        ));
    }
    let out = match c.u8("output mode tag")? {
        0 => {
            if !last {
                return Err(ArtifactError::Malformed(
                    "analog readout on a non-final stage".into(),
                ));
            }
            EngineOut::Analog
        }
        1 => {
            let max_level = c.u32("counter max level")?;
            let out_scale = c.scale("counter output scale")?;
            let record = c.bool("counter record flag")?;
            let q = out_quant.as_ref().ok_or_else(|| {
                ArtifactError::Malformed("counter stage without an output quantizer".into())
            })?;
            if max_level != q.max_level() || out_scale.to_bits() != q.scale().to_bits() {
                return Err(ArtifactError::Malformed(
                    "counter parameters disagree with the output quantizer".into(),
                ));
            }
            let count = out_dim.checked_mul(max_level as usize).ok_or_else(|| {
                ArtifactError::Malformed("threshold table size overflows".into())
            })?;
            let thresholds = c.i32_slice(count, "threshold table")?;
            for row in thresholds.chunks_exact(max_level as usize) {
                if row.windows(2).any(|w| w[0] > w[1]) {
                    return Err(ArtifactError::Malformed(
                        "threshold table rows must be non-decreasing".into(),
                    ));
                }
            }
            *cur_max = max_level;
            EngineOut::Counts { max_level, out_scale, thresholds, record }
        }
        t => return Err(ArtifactError::Malformed(format!("unknown output mode tag {t}"))),
    };
    if !last && matches!(out, EngineOut::Analog) {
        return Err(ArtifactError::Malformed("analog readout on a non-final stage".into()));
    }
    Ok(EngineStage::Syn(Box::new(EngineSyn {
        kind,
        packed,
        weight_scale,
        in_scale,
        bias,
        rectify,
        out_quant,
        out,
    })))
}

fn decode_tiles(bytes: &[u8]) -> Result<Vec<TileMap>, ArtifactError> {
    let mut c = Cursor::new(bytes);
    let count = c.u32("tile map layer count")? as usize;
    if count > MAX_STAGES {
        return Err(ArtifactError::Malformed(format!("tile map layer count {count} exceeds {MAX_STAGES}")));
    }
    let mut maps = Vec::new();
    for _ in 0..count {
        let in_dim = c.dim("tile map in dim")?;
        let out_dim = c.dim("tile map out dim")?;
        let tile = c.dim("tile map tile size")?;
        let row_blocks = c.dim("tile map row blocks")?;
        let col_blocks = c.dim("tile map col blocks")?;
        if row_blocks != in_dim.div_ceil(tile) || col_blocks != out_dim.div_ceil(tile) {
            return Err(ArtifactError::Malformed(
                "tile block grid disagrees with the layer dimensions".into(),
            ));
        }
        let assignments = if c.bool("remap flag")? {
            let tiles = c.u32("remap tile count")? as usize;
            if tiles != row_blocks * col_blocks {
                return Err(ArtifactError::Malformed(
                    "remap tile count disagrees with the block grid".into(),
                ));
            }
            let mut all = Vec::new();
            for _ in 0..tiles {
                let len = c.u32("assignment length")? as usize;
                let assign = c.i32_slice(len, "assignment")?;
                if assign.iter().any(|&p| p < 0) {
                    return Err(ArtifactError::Malformed("negative bitline index".into()));
                }
                all.push(assign.into_iter().map(|p| p as usize).collect());
            }
            all
        } else {
            Vec::new()
        };
        maps.push(TileMap { in_dim, out_dim, tile, row_blocks, col_blocks, assignments });
    }
    c.finish("tiles section")?;
    Ok(maps)
}

fn decode_provenance(bytes: &[u8]) -> Result<Provenance, ArtifactError> {
    let mut c = Cursor::new(bytes);
    let checkpoint_digest = c.u64("checkpoint digest")?;
    let weight_bits = c.u32("weight bits")?;
    let activation_bits = c.u32("activation bits")?;
    if !(1..=16).contains(&weight_bits) || !(1..=16).contains(&activation_bits) {
        return Err(ArtifactError::Malformed("provenance bit widths out of 1..=16".into()));
    }
    let name_len = c.u32("model name length")? as usize;
    let raw = c.take(name_len, "model name")?;
    let model = std::str::from_utf8(raw)
        .map_err(|_| ArtifactError::Malformed("model name is not utf-8".into()))?
        .to_string();
    c.finish("provenance section")?;
    Ok(Provenance { checkpoint_digest, weight_bits, activation_bits, model })
}

/// Decodes `.qsnca` bytes into an engine-backed network.
///
/// Validation order: magic → version → trailer checksum → section table
/// bounds and overlap → per-section strict parse. Every declared count is
/// checked against the remaining byte budget *before* the dependent
/// allocation, so a hostile file can make this fail, but never allocate
/// beyond a small multiple of its own size.
///
/// # Errors
///
/// A typed [`ArtifactError`] for every way the bytes can be wrong; this
/// function does not panic on any input.
pub fn decode_artifact(bytes: &[u8]) -> Result<LoadedArtifact, ArtifactError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(ArtifactError::Truncated { what: "file header" });
    }
    if bytes[0..4] != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
    if version != FORMAT_VERSION {
        return Err(ArtifactError::BadVersion(version));
    }
    let body_len = bytes.len() - TRAILER_LEN;
    let stored = u64::from_le_bytes(bytes[body_len..].try_into().expect("8-byte trailer"));
    if checksum(&bytes[..body_len]) != stored {
        return Err(ArtifactError::ChecksumMismatch);
    }
    let count = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice")) as usize;
    if count > MAX_SECTIONS {
        return Err(ArtifactError::Malformed(format!("section count {count} exceeds {MAX_SECTIONS}")));
    }
    let table_end = HEADER_LEN + count * ENTRY_LEN;
    if table_end > body_len {
        return Err(ArtifactError::Truncated { what: "section table" });
    }
    // Parse and bounds-check the table before touching any payload.
    let mut entries = Vec::new();
    for i in 0..count {
        let base = HEADER_LEN + i * ENTRY_LEN;
        let id = u32::from_le_bytes(bytes[base..base + 4].try_into().expect("4-byte slice"));
        let offset = u64::from_le_bytes(bytes[base + 4..base + 12].try_into().expect("8-byte slice"));
        let len = u64::from_le_bytes(bytes[base + 12..base + 20].try_into().expect("8-byte slice"));
        let offset = usize::try_from(offset)
            .map_err(|_| ArtifactError::Malformed(format!("section {id} offset out of range")))?;
        let len = usize::try_from(len)
            .map_err(|_| ArtifactError::Malformed(format!("section {id} length out of range")))?;
        let end = offset
            .checked_add(len)
            .filter(|&e| offset >= table_end && e <= body_len)
            .ok_or(ArtifactError::Truncated { what: "section payload" })?;
        let _ = end;
        if entries.iter().any(|&(other, _, _): &(u32, usize, usize)| other == id) {
            return Err(ArtifactError::Malformed(format!("duplicate section id {id}")));
        }
        entries.push((id, offset, len));
    }
    let mut spans: Vec<(usize, usize)> = entries.iter().map(|&(_, o, l)| (o, l)).collect();
    spans.sort_unstable();
    for w in spans.windows(2) {
        if w[0].0 + w[0].1 > w[1].0 {
            return Err(ArtifactError::SectionOverlap);
        }
    }
    let section = |id: u32| -> Result<&[u8], ArtifactError> {
        entries
            .iter()
            .find(|&&(i, _, _)| i == id)
            .map(|&(_, o, l)| &bytes[o..o + l])
            .ok_or(ArtifactError::MissingSection(id))
    };
    let (input_quant, input_dims, stages) = decode_model(section(SECTION_MODEL)?)?;
    let tiles = decode_tiles(section(SECTION_TILES)?)?;
    let provenance = decode_provenance(section(SECTION_PROVENANCE)?)?;
    let syn_stages = stages
        .iter()
        .filter(|s| matches!(s, EngineStage::Syn(_)))
        .count();
    if tiles.len() != syn_stages {
        return Err(ArtifactError::Malformed(format!(
            "tile map covers {} layers but the model has {syn_stages} synaptic stages",
            tiles.len()
        )));
    }
    let network = SpikingNetwork::from_engine(IntEngine { stages, input_quant }, input_quant);
    Ok(LoadedArtifact { network, input_dims, provenance, tiles })
}

/// Loads a `.qsnca` artifact from disk: one `read` into an arena, then
/// [`decode_artifact`]. This is the serve workers' cold-start path — no
/// training stack, no clustering, no threshold search.
///
/// # Errors
///
/// [`ArtifactError::Io`] on read failure, otherwise everything
/// [`decode_artifact`] returns.
pub fn load_artifact(path: impl AsRef<Path>) -> Result<LoadedArtifact, ArtifactError> {
    let bytes = std::fs::read(path)?;
    decode_artifact(&bytes)
}
