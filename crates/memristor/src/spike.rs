//! Rate coding, integrate-and-fire conversion, and spike counters.
//!
//! In the paper's SNC a signal's strength is the number of spikes emitted
//! inside a fixed time window of `2^M` slots. Crossbar bitline current is
//! converted back to spikes by an integrate-and-fire circuit (IFC) and
//! counted by an `M`-bit counter — that digital count is the next layer's
//! input signal.

use qsnc_quant::ActivationQuantizer;

/// A rate-coded spike train: `count` spikes inside a `window`-slot frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct SpikeTrain {
    /// Number of spikes (the coded value).
    pub count: u32,
    /// Window length in slots (`2^M`).
    pub window: u32,
}

impl SpikeTrain {
    /// Creates a train, clamping `count` into the window.
    pub fn new(count: u32, window: u32) -> Self {
        SpikeTrain {
            count: count.min(window),
            window,
        }
    }

    /// Slot occupancy as booleans, spikes spread evenly over the window
    /// (deterministic rate coding).
    pub fn slots(&self) -> Vec<bool> {
        let mut slots = vec![false; self.window as usize];
        if self.count == 0 {
            return slots;
        }
        // Bresenham-style even spacing.
        let mut acc = 0u32;
        for slot in slots.iter_mut() {
            acc += self.count;
            if acc >= self.window {
                acc -= self.window;
                *slot = true;
            }
        }
        slots
    }
}

/// Encodes activations into spike counts for an `M`-bit window.
///
/// Thin wrapper around [`ActivationQuantizer`] fixing the window length to
/// `2^M` slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeEncoder {
    quantizer: ActivationQuantizer,
}

impl SpikeEncoder {
    /// Creates an encoder from a quantizer.
    pub fn new(quantizer: ActivationQuantizer) -> Self {
        SpikeEncoder { quantizer }
    }

    /// The underlying quantizer.
    pub fn quantizer(&self) -> ActivationQuantizer {
        self.quantizer
    }

    /// Window length in slots, `2^M`.
    pub fn window(&self) -> u32 {
        1u32 << self.quantizer.bits()
    }

    /// Encodes a real activation as a spike train.
    pub fn encode(&self, value: f32) -> SpikeTrain {
        SpikeTrain::new(self.quantizer.spike_count(value), self.window())
    }

    /// Decodes a spike count back into an activation value.
    pub fn decode(&self, train: SpikeTrain) -> f32 {
        self.quantizer.from_spike_count(train.count)
    }
}

/// An integrate-and-fire converter with an `M`-bit output counter.
///
/// The membrane integrates incoming charge; each time it crosses
/// `threshold`, one spike fires and the threshold's worth of charge is
/// subtracted (no leak). A half-threshold precharge makes the final count
/// equal to `round(total_charge / threshold)` — matching the software
/// quantizer's rounding, which is why deployment accuracy tracks the
/// software-quantized model exactly in the noise-free case.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Ifc {
    /// Charge per output spike.
    pub threshold: f32,
    /// Initial membrane charge as a fraction of the threshold (0.5 → the
    /// counter rounds; 0.0 → it floors).
    pub precharge: f32,
    /// Counter saturation value (`2^M − 1`).
    pub max_count: u32,
}

impl Ifc {
    /// Creates an IFC with rounding precharge.
    ///
    /// # Panics
    ///
    /// Panics if `threshold <= 0`.
    pub fn new(threshold: f32, max_count: u32) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        Ifc {
            threshold,
            precharge: 0.5,
            max_count,
        }
    }

    /// Closed-form conversion of a total integrated charge to a spike
    /// count. Negative charge never fires (the rectifying behaviour that
    /// implements ReLU for free on this substrate).
    pub fn convert(&self, charge: f32) -> u32 {
        if charge <= 0.0 {
            return 0;
        }
        let fired = ((charge / self.threshold) + self.precharge).floor();
        (fired.max(0.0) as u32).min(self.max_count)
    }

    /// Cycle-level simulation: integrates `charge_per_slot` over the slot
    /// pattern of `train_slots`, firing as thresholds are crossed.
    /// Equivalent to [`convert`](Self::convert) on the summed charge.
    pub fn simulate(&self, charges: &[f32]) -> u32 {
        let mut membrane = self.precharge * self.threshold;
        let mut count = 0u32;
        for &q in charges {
            membrane += q;
            while membrane >= self.threshold && count < self.max_count {
                membrane -= self.threshold;
                count += 1;
            }
        }
        count
    }
}

/// Cycle-accurate evaluation of one crossbar-mapped layer: drives the
/// wordlines slot by slot with rate-coded spike trains and integrates the
/// bitline currents in per-column IFCs.
///
/// This is the slow, physically literal path; the fast closed-form path in
/// [`pipeline`](crate::pipeline) is provably equivalent for linear
/// crossbars (same total charge ⇒ same count), which
/// `cycle_accurate_matches_closed_form` asserts.
///
/// `x_counts` are the input spike counts (one per wordline); returns one
/// spike count per bitline.
///
/// # Panics
///
/// Panics if `x_counts.len()` differs from the matrix input dimension.
pub fn cycle_accurate_layer(
    tiles: &crate::mapping::TiledMatrix,
    x_counts: &[u32],
    window: u32,
    ifc: &Ifc,
) -> Vec<u32> {
    assert_eq!(x_counts.len(), tiles.in_dim(), "input length mismatch");
    let trains: Vec<Vec<bool>> = x_counts
        .iter()
        .map(|&c| SpikeTrain::new(c, window).slots())
        .collect();
    let mut membranes = vec![ifc.precharge * ifc.threshold; tiles.out_dim()];
    let mut counts = vec![0u32; tiles.out_dim()];
    let mut drive = vec![0.0f32; tiles.in_dim()];
    for slot in 0..window as usize {
        for (d, train) in drive.iter_mut().zip(trains.iter()) {
            *d = if train[slot] { 1.0 } else { 0.0 };
        }
        if drive.iter().all(|&v| v == 0.0) {
            continue;
        }
        let currents = tiles.matvec_code_units(&drive, None);
        for ((m, c), i) in membranes.iter_mut().zip(counts.iter_mut()).zip(currents) {
            *m += i;
            while *m >= ifc.threshold && *c < ifc.max_count {
                *m -= ifc.threshold;
                *c += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use crate::mapping::TiledMatrix;
    use qsnc_tensor::TensorRng;

    #[test]
    fn cycle_accurate_matches_closed_form() {
        let mut rng = TensorRng::seed(0);
        let (in_dim, out_dim) = (40usize, 12usize);
        // Non-negative codes so membrane trajectories are monotone — the
        // regime where slot ordering provably cannot change the count.
        let codes: Vec<i32> = (0..in_dim * out_dim).map(|_| rng.index(9) as i32).collect();
        let tiles =
            TiledMatrix::from_codes(&codes, in_dim, out_dim, 32, DeviceConfig::paper(4), None);
        let window = 16u32;
        let ifc = Ifc::new(1.0, 15);
        let x_counts: Vec<u32> = (0..in_dim).map(|_| rng.index(16) as u32).collect();

        let cycle = cycle_accurate_layer(&tiles, &x_counts, window, &ifc);

        // Closed form: total charge = Σ codes·counts, then one conversion.
        let drive: Vec<f32> = x_counts.iter().map(|&c| c as f32).collect();
        let totals = tiles.matvec_code_units(&drive, None);
        for (j, (&fast, total)) in cycle.iter().zip(totals).enumerate() {
            let closed = ifc.convert(total);
            assert!(
                (fast as i64 - closed as i64).abs() <= 1,
                "output {j}: cycle {fast} vs closed {closed}"
            );
        }
    }

    #[test]
    fn cycle_accurate_zero_input_is_silent() {
        let codes = vec![5i32; 8];
        let tiles = TiledMatrix::from_codes(&codes, 4, 2, 32, DeviceConfig::paper(4), None);
        let out = cycle_accurate_layer(&tiles, &[0, 0, 0, 0], 16, &Ifc::new(1.0, 15));
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn train_slots_spread_evenly() {
        let t = SpikeTrain::new(4, 16);
        let slots = t.slots();
        assert_eq!(slots.iter().filter(|&&s| s).count(), 4);
        // No two adjacent spikes for a quarter-rate train of this form.
        for w in slots.windows(2) {
            assert!(!(w[0] && w[1]));
        }
    }

    #[test]
    fn train_count_clamps_to_window() {
        let t = SpikeTrain::new(99, 8);
        assert_eq!(t.count, 8);
        assert!(t.slots().iter().all(|&s| s));
    }

    #[test]
    fn encoder_round_trip_within_half_lsb() {
        let enc = SpikeEncoder::new(ActivationQuantizer::with_scale(4, 2.0));
        for i in 0..=30 {
            let v = i as f32 * 0.25;
            let back = enc.decode(enc.encode(v));
            if v <= enc.quantizer().max_level() as f32 / 2.0 {
                assert!((back - v).abs() <= 0.25 + 1e-6, "v={v} back={back}");
            }
        }
    }

    #[test]
    fn encoder_window_is_power_of_two() {
        let enc = SpikeEncoder::new(ActivationQuantizer::new(5));
        assert_eq!(enc.window(), 32);
    }

    #[test]
    fn ifc_rounds_with_half_precharge() {
        let ifc = Ifc::new(1.0, 255);
        assert_eq!(ifc.convert(2.4), 2);
        assert_eq!(ifc.convert(2.6), 3);
        assert_eq!(ifc.convert(0.0), 0);
    }

    #[test]
    fn ifc_rectifies_negative_charge() {
        let ifc = Ifc::new(1.0, 255);
        assert_eq!(ifc.convert(-5.0), 0);
    }

    #[test]
    fn ifc_saturates_at_counter_width() {
        let ifc = Ifc::new(1.0, 15);
        assert_eq!(ifc.convert(1000.0), 15);
    }

    #[test]
    fn simulation_matches_closed_form() {
        let ifc = Ifc::new(0.7, 63);
        for total in [0.0f32, 0.3, 0.69, 0.71, 3.3, 10.0, 100.0] {
            // Spread the charge over 16 slots.
            let per_slot = total / 16.0;
            let charges = vec![per_slot; 16];
            assert_eq!(
                ifc.simulate(&charges),
                ifc.convert(total),
                "total charge {total}"
            );
        }
    }

    #[test]
    fn simulation_handles_bursty_trains() {
        let ifc = Ifc::new(1.0, 255);
        // All charge in one slot vs spread: same count (no leak).
        let burst = ifc.simulate(&[5.2, 0.0, 0.0]);
        let spread = ifc.simulate(&[1.3, 1.3, 1.3, 1.3]);
        assert_eq!(burst, ifc.convert(5.2));
        assert_eq!(spread, ifc.convert(5.2));
    }
}
