//! # qsnc-memristor
//!
//! The memristor-crossbar spiking neuromorphic substrate the paper deploys
//! its quantized networks on (Liu & Liu, DAC 2018, Sec. 2.2 & 4.5).
//!
//! Layer by layer:
//!
//! - [`device`]: behavioural memristor model (50 kΩ–1 MΩ, `N`-bit linear
//!   conductance levels, write variation, read noise).
//! - [`crossbar`]: signed vector-matrix products on differential device
//!   pairs.
//! - [`mapping`]: the paper's Eq. 1 tiling of conv/FC layers over 32×32
//!   crossbars, and the functional [`TiledMatrix`] used at inference.
//! - [`spike`]: rate coding, integrate-and-fire conversion (with the
//!   half-threshold precharge that makes hardware rounding match the
//!   software quantizer), and saturating counters.
//! - [`pipeline`]: [`SpikingNetwork`] — a trained, quantized network
//!   lowered onto crossbars and executed spike-accurately.
//! - [`fault`]: the reliability layer — persistent per-crossbar
//!   [`FaultMap`]s, the write-verify programming loop (see [`program`]),
//!   fault-aware column remapping (see [`mapping`]), and the
//!   [`DegradationStats`] every faulty deploy reports.
//! - [`hwmodel`]: the calibrated speed/energy/area model that regenerates
//!   Table 5.
//! - [`artifact`]: versioned `.qsnca` deployment artifacts — a compiled
//!   network's integer fast path frozen to disk and reloaded by serve
//!   workers without the training stack.

#![warn(missing_docs)]

pub mod artifact;
pub mod crossbar;
pub mod device;
mod engine;
pub mod fault;
pub mod hwmodel;
pub mod mapping;
pub mod pipeline;
pub mod program;
pub mod spike;

pub use artifact::{
    decode_artifact, encode_artifact, load_artifact, save_artifact, ArtifactError,
    LoadedArtifact, Provenance, TileMap,
};
pub use crossbar::Crossbar;
pub use device::{Device, DeviceConfig};
pub use fault::{
    CellFault, DegradationStats, FaultMap, FaultRates, ProgramPolicy, ReliabilityConfig,
};
pub use hwmodel::{ExecutionMode, HwModel, HwReport, LayerHwReport};
pub use program::{
    codes_programmable, program_device_verified, program_retries, ProgramCost, ProgramModel,
    VerifiedWrite,
};
pub use mapping::{crossbars_for_layer, network_geometry, LayerGeometry, TiledMatrix};
pub use pipeline::{CompileError, DeployConfig, SpikingNetwork};
pub use spike::{cycle_accurate_layer, Ifc, SpikeEncoder, SpikeTrain};
