//! Layer-to-crossbar mapping, including the paper's Eq. 1 tiling count.
//!
//! A convolutional layer with `J` filters of size `s × s × d` becomes a
//! weight matrix with `s²·d` rows (wordlines) and `J` columns (bitlines);
//! a fully connected layer maps directly. Since physical crossbars are
//! bounded at `t × t` (the paper uses 32 × 32), the matrix is tiled:
//!
//! ```text
//! L_i = ⌈J_i / t⌉ · ⌈s_i² · J_{i−1} / t⌉          (Eq. 1)
//! ```

use crate::crossbar::{Crossbar, ReliableProgramming};
use crate::device::DeviceConfig;
use crate::fault::{DegradationStats, FaultMap, ProgramPolicy, ReliabilityConfig};
use crate::program::program_retries;
use qsnc_nn::LayerDesc;
use qsnc_tensor::TensorRng;

/// Integer ceiling division.
fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Wordline (row) count a layer's weight matrix needs.
///
/// # Panics
///
/// Panics for [`LayerDesc::Other`], which has no synapses.
pub fn layer_rows(desc: &LayerDesc) -> usize {
    match *desc {
        LayerDesc::Conv {
            in_channels,
            kernel,
            ..
        } => kernel * kernel * in_channels,
        LayerDesc::Linear { in_features, .. } => in_features,
        LayerDesc::Other => panic!("non-synaptic layer has no crossbar mapping"),
    }
}

/// Bitline (column) count a layer's weight matrix needs.
///
/// # Panics
///
/// Panics for [`LayerDesc::Other`].
pub fn layer_cols(desc: &LayerDesc) -> usize {
    match *desc {
        LayerDesc::Conv { out_channels, .. } => out_channels,
        LayerDesc::Linear { out_features, .. } => out_features,
        LayerDesc::Other => panic!("non-synaptic layer has no crossbar mapping"),
    }
}

/// The paper's Eq. 1: number of `t × t` crossbars for one layer.
///
/// # Panics
///
/// Panics if `t == 0` or the layer is non-synaptic.
pub fn crossbars_for_layer(desc: &LayerDesc, t: usize) -> usize {
    assert!(t > 0, "crossbar size must be positive");
    ceil_div(layer_cols(desc), t) * ceil_div(layer_rows(desc), t)
}

/// Geometry summary for one mapped layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LayerGeometry {
    /// Wordlines used by the layer's weight matrix.
    pub rows: usize,
    /// Bitlines used.
    pub cols: usize,
    /// Crossbars after `t × t` tiling (Eq. 1).
    pub crossbars: usize,
    /// Synaptic weight count.
    pub weights: usize,
}

/// Maps every synaptic layer of a network (described by its descriptors) to
/// crossbar geometry.
pub fn network_geometry(descs: &[LayerDesc], t: usize) -> Vec<LayerGeometry> {
    descs
        .iter()
        .filter(|d| d.is_synaptic())
        .map(|d| LayerGeometry {
            rows: layer_rows(d),
            cols: layer_cols(d),
            crossbars: crossbars_for_layer(d, t),
            weights: d.weight_count(),
        })
        .collect()
}

/// A weight matrix tiled over physical crossbars.
///
/// Stores the tile grid in block-row-major order and performs full-size
/// vector-matrix products by accumulating tile contributions — the digital
/// summation the paper's multi-crossbar composition performs.
#[derive(Debug, Clone)]
pub struct TiledMatrix {
    in_dim: usize,
    out_dim: usize,
    tile: usize,
    row_blocks: usize,
    col_blocks: usize,
    tiles: Vec<Crossbar>,
    /// Present when the matrix was programmed through the reliability
    /// layer: per-tile column assignments and observed fault maps.
    remap: Option<RemapInfo>,
}

/// Reliability bookkeeping for a [`TiledMatrix`] deployed onto faulty
/// hardware.
#[derive(Debug, Clone)]
struct RemapInfo {
    /// Per tile: `assign[j]` is the physical bitline holding logical
    /// column `j` (identity when no remapping happened).
    assignments: Vec<Vec<usize>>,
    /// Per tile: faults observed while programming (write-verify failures
    /// and dead lines) — a deployment can persist these and feed them back
    /// as the ground-truth map of a later deploy.
    observed: Vec<FaultMap>,
}

/// Magnitude of logical column `j` of a `rows × cols` row-major code tile —
/// the remapper's importance ranking.
fn column_magnitude(codes: &[i32], rows: usize, cols: usize, j: usize) -> u64 {
    (0..rows).map(|i| codes[i * cols + j].unsigned_abs() as u64).sum()
}

/// Weight magnitude lost if logical column `j` lands on physical bitline
/// `p`: the whole column on a dead bitline, otherwise the codes sitting on
/// faulty cells (which write-verify will zero-mask).
fn placement_cost(
    codes: &[i32],
    rows: usize,
    cols: usize,
    j: usize,
    p: usize,
    map: &FaultMap,
) -> u64 {
    if map.col_is_dead(p) {
        return column_magnitude(codes, rows, cols, j);
    }
    (0..rows)
        .filter(|&i| map.cell_is_faulty(i, p))
        .map(|i| codes[i * cols + j].unsigned_abs() as u64)
        .sum()
}

/// Cost-ranked spare-column assignment for one tile: logical columns in
/// descending magnitude order each claim the free physical bitline that
/// loses the least weight magnitude to faults (ties prefer the identity
/// position, then the lowest index, keeping fault-free tiles bit-stable).
fn assign_columns(
    codes: &[i32],
    rows: usize,
    cols: usize,
    physical_cols: usize,
    map: &FaultMap,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..cols).collect();
    order.sort_by_key(|&j| (std::cmp::Reverse(column_magnitude(codes, rows, cols, j)), j));
    let mut taken = vec![false; physical_cols];
    let mut assign = vec![usize::MAX; cols];
    for &j in &order {
        let mut best = usize::MAX;
        let mut best_cost = u64::MAX;
        for (p, &used) in taken.iter().enumerate() {
            if used {
                continue;
            }
            let cost = placement_cost(codes, rows, cols, j, p, map);
            if cost < best_cost || (cost == best_cost && p == j) {
                best = p;
                best_cost = cost;
            }
        }
        assign[j] = best;
        taken[best] = true;
    }
    assign
}

impl TiledMatrix {
    /// Tiles a weight-code matrix in `[out, in]` layout (as stored by
    /// `Conv2d`/`Linear`) over `tile × tile` crossbars.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != out_dim·in_dim` or `tile == 0`.
    pub fn from_codes(
        codes: &[i32],
        in_dim: usize,
        out_dim: usize,
        tile: usize,
        config: DeviceConfig,
        mut rng: Option<&mut TensorRng>,
    ) -> Self {
        assert!(tile > 0, "tile size must be positive");
        assert_eq!(codes.len(), out_dim * in_dim, "code matrix shape mismatch");
        let row_blocks = ceil_div(in_dim, tile);
        let col_blocks = ceil_div(out_dim, tile);
        let instrument = qsnc_telemetry::enabled();
        let mut tiles = Vec::with_capacity(row_blocks * col_blocks);
        for rb in 0..row_blocks {
            for cb in 0..col_blocks {
                let rows = (in_dim - rb * tile).min(tile);
                let cols = (out_dim - cb * tile).min(tile);
                if instrument {
                    // Fraction of the physical t×t crossbar this (possibly
                    // partial edge) tile actually occupies.
                    qsnc_telemetry::observe(
                        "snc.map.tile_utilization",
                        (rows * cols) as f64 / (tile * tile) as f64,
                        &[0.25, 0.5, 0.75, 0.9, 1.0],
                    );
                }
                // Crossbar cell (i, j) = weight of output (cb·tile + j)
                // from input (rb·tile + i): transposed from [out, in].
                let mut tile_codes = Vec::with_capacity(rows * cols);
                for i in 0..rows {
                    for j in 0..cols {
                        let out_idx = cb * tile + j;
                        let in_idx = rb * tile + i;
                        tile_codes.push(codes[out_idx * in_dim + in_idx]);
                    }
                }
                tiles.push(Crossbar::from_codes(
                    &tile_codes,
                    rows,
                    cols,
                    config,
                    rng.as_deref_mut(),
                ));
            }
        }
        if instrument {
            qsnc_telemetry::counter_add("snc.map.crossbars", tiles.len() as u64);
            qsnc_telemetry::counter_add(
                "snc.map.devices",
                tiles.iter().map(Crossbar::device_count).sum::<usize>() as u64,
            );
        }
        TiledMatrix {
            in_dim,
            out_dim,
            tile,
            row_blocks,
            col_blocks,
            tiles,
            remap: None,
        }
    }

    /// Tiles and programs a weight-code matrix onto **faulty hardware**
    /// under the given reliability configuration.
    ///
    /// Each `tile × tile` logical tile owns a physical crossbar with
    /// `spare_cols` extra bitlines; its fault population is generated
    /// deterministically from [`ReliabilityConfig::tile_seed`]`(layer,
    /// tile_index)`, so every [`ProgramPolicy`] is evaluated against the
    /// *same* hardware. Per policy:
    ///
    /// - [`ProgramPolicy::Naive`] programs logical columns at their
    ///   identity positions with no verification — stuck cells keep their
    ///   erroneous conductance.
    /// - [`ProgramPolicy::WriteVerify`] adds the program → read-back →
    ///   retry loop and zero-masks unrecoverable cells.
    /// - [`ProgramPolicy::Remap`] first runs the cost-ranked assignment:
    ///   logical columns in descending weight magnitude claim the physical
    ///   bitline (including spares) that loses the least magnitude to
    ///   faults, then programs with write-verify.
    ///
    /// Returns the matrix plus the accumulated [`DegradationStats`].
    /// When `reliability` is inactive this is exactly
    /// [`TiledMatrix::from_codes`] (bit-identical, clean stats).
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != out_dim·in_dim` or `tile == 0`.
    #[allow(clippy::too_many_arguments)] // mirrors from_codes plus the reliability triple
    pub fn from_codes_reliable(
        codes: &[i32],
        in_dim: usize,
        out_dim: usize,
        tile: usize,
        config: DeviceConfig,
        reliability: &ReliabilityConfig,
        layer: usize,
        mut rng: Option<&mut TensorRng>,
    ) -> (Self, DegradationStats) {
        if !reliability.is_active() {
            let tm = TiledMatrix::from_codes(codes, in_dim, out_dim, tile, config, rng);
            return (tm, DegradationStats::default());
        }
        assert!(tile > 0, "tile size must be positive");
        assert_eq!(codes.len(), out_dim * in_dim, "code matrix shape mismatch");
        let row_blocks = ceil_div(in_dim, tile);
        let col_blocks = ceil_div(out_dim, tile);
        let instrument = qsnc_telemetry::enabled();
        let verify = reliability.policy != ProgramPolicy::Naive;
        let max_retries = reliability.max_retries.unwrap_or_else(program_retries);
        let mut stats = DegradationStats::default();
        let mut tiles = Vec::with_capacity(row_blocks * col_blocks);
        let mut assignments = Vec::with_capacity(row_blocks * col_blocks);
        let mut observed_maps = Vec::with_capacity(row_blocks * col_blocks);
        for rb in 0..row_blocks {
            for cb in 0..col_blocks {
                let tile_index = rb * col_blocks + cb;
                let rows = (in_dim - rb * tile).min(tile);
                let cols = (out_dim - cb * tile).min(tile);
                if instrument {
                    qsnc_telemetry::observe(
                        "snc.map.tile_utilization",
                        (rows * cols) as f64 / (tile * tile) as f64,
                        &[0.25, 0.5, 0.75, 0.9, 1.0],
                    );
                }
                let mut tile_codes = Vec::with_capacity(rows * cols);
                for i in 0..rows {
                    for j in 0..cols {
                        let out_idx = cb * tile + j;
                        let in_idx = rb * tile + i;
                        tile_codes.push(codes[out_idx * in_dim + in_idx]);
                    }
                }
                // The physical array: logical columns plus the spares.
                let phys_cols = cols + reliability.spare_cols;
                let map = FaultMap::seeded(
                    rows,
                    phys_cols,
                    reliability.rates,
                    reliability.tile_seed(layer, tile_index),
                );
                let assign = if reliability.policy == ProgramPolicy::Remap {
                    let a = assign_columns(&tile_codes, rows, cols, phys_cols, &map);
                    stats.remapped += a.iter().enumerate().filter(|&(j, &p)| p != j).count() as u64;
                    a
                } else {
                    (0..cols).collect()
                };
                // Place logical columns at their assigned bitlines; unused
                // spares hold code 0 (and are never sensed).
                let mut phys_codes = vec![0i32; rows * phys_cols];
                for i in 0..rows {
                    for (j, &p) in assign.iter().enumerate() {
                        phys_codes[i * phys_cols + p] = tile_codes[i * cols + j];
                    }
                }
                let mut observed = FaultMap::new(rows, phys_cols);
                tiles.push(Crossbar::from_codes_faulty(
                    &phys_codes,
                    rows,
                    phys_cols,
                    config,
                    ReliableProgramming {
                        map: &map,
                        verify,
                        max_retries,
                        stats: &mut stats,
                        observed: &mut observed,
                    },
                    rng.as_deref_mut(),
                ));
                assignments.push(assign);
                observed_maps.push(observed);
            }
        }
        if instrument {
            qsnc_telemetry::counter_add("snc.map.crossbars", tiles.len() as u64);
            qsnc_telemetry::counter_add(
                "snc.map.devices",
                tiles.iter().map(Crossbar::device_count).sum::<usize>() as u64,
            );
        }
        let tm = TiledMatrix {
            in_dim,
            out_dim,
            tile,
            row_blocks,
            col_blocks,
            tiles,
            remap: Some(RemapInfo { assignments, observed: observed_maps }),
        };
        (tm, stats)
    }

    /// Per-tile fault maps observed while programming (write-verify
    /// failures and dead lines), in block-row-major tile order. `None` for
    /// matrices deployed without the reliability layer.
    pub fn observed_faults(&self) -> Option<&[FaultMap]> {
        self.remap.as_ref().map(|r| r.observed.as_slice())
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Physical crossbar edge length used for tiling.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Tile-grid rows, `⌈in_dim / tile⌉`.
    pub fn row_blocks(&self) -> usize {
        self.row_blocks
    }

    /// Tile-grid columns, `⌈out_dim / tile⌉`.
    pub fn col_blocks(&self) -> usize {
        self.col_blocks
    }

    /// Per-tile logical-column → physical-bitline assignments, in
    /// block-row-major tile order; `None` for matrices deployed without the
    /// reliability layer (identity placement everywhere).
    pub fn remap_assignments(&self) -> Option<&[Vec<usize>]> {
        self.remap.as_ref().map(|r| r.assignments.as_slice())
    }

    /// Number of physical crossbars (matches Eq. 1).
    pub fn crossbar_count(&self) -> usize {
        self.tiles.len()
    }

    /// Total devices across all tiles.
    pub fn device_count(&self) -> usize {
        self.tiles.iter().map(Crossbar::device_count).sum()
    }

    /// Full `y[out] = Σ codes[out][in] · x[in]` in code units, accumulated
    /// over tiles. Read noise applies when `rng` is given.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim()`.
    pub fn matvec_code_units(&self, x: &[f32], mut rng: Option<&mut TensorRng>) -> Vec<f32> {
        assert_eq!(x.len(), self.in_dim, "input length mismatch");
        let mut y = vec![0.0f32; self.out_dim];
        for rb in 0..self.row_blocks {
            let row_start = rb * self.tile;
            let rows = (self.in_dim - row_start).min(self.tile);
            let xin = &x[row_start..row_start + rows];
            // Skip silent row blocks entirely (event-driven behaviour).
            if xin.iter().all(|&v| v == 0.0) {
                continue;
            }
            for cb in 0..self.col_blocks {
                let tile_index = rb * self.col_blocks + cb;
                let tile = &self.tiles[tile_index];
                let part = tile.matvec_code_units(xin, rng.as_deref_mut());
                let col_start = cb * self.tile;
                match &self.remap {
                    // Gather each logical column from its assigned physical
                    // bitline; unassigned spares are never sensed.
                    Some(info) => {
                        for (j, &p) in info.assignments[tile_index].iter().enumerate() {
                            y[col_start + j] += part[p];
                        }
                    }
                    None => {
                        for (j, p) in part.into_iter().enumerate() {
                            y[col_start + j] += p;
                        }
                    }
                }
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_lenet_conv2_example() {
        // Paper Sec. 2.2: layer with J filters, size s×s, depth J_prev.
        // LeNet conv2: J=16, s=5, J_prev=6 → rows 150 → ⌈16/32⌉·⌈150/32⌉ = 5.
        let d = LayerDesc::Conv {
            in_channels: 6,
            out_channels: 16,
            kernel: 5,
            stride: 1,
            padding: 0,
        };
        assert_eq!(crossbars_for_layer(&d, 32), 5);
    }

    #[test]
    fn eq1_exact_fit_uses_one_crossbar() {
        let d = LayerDesc::Linear {
            in_features: 32,
            out_features: 32,
        };
        assert_eq!(crossbars_for_layer(&d, 32), 1);
        let d33 = LayerDesc::Linear {
            in_features: 33,
            out_features: 32,
        };
        assert_eq!(crossbars_for_layer(&d33, 32), 2);
    }

    #[test]
    fn eq1_monotone_in_layer_size() {
        let mk = |j: usize, jp: usize| LayerDesc::Conv {
            in_channels: jp,
            out_channels: j,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let mut prev = 0;
        for width in [4, 8, 16, 32, 64, 128] {
            let n = crossbars_for_layer(&mk(width, width), 32);
            assert!(n >= prev);
            prev = n;
        }
    }

    #[test]
    fn tiled_matrix_count_matches_eq1() {
        let mut rng = TensorRng::seed(0);
        for &(in_dim, out_dim, t) in
            &[(150, 16, 32), (400, 84, 32), (33, 65, 32), (10, 10, 32)]
        {
            let codes: Vec<i32> = (0..in_dim * out_dim)
                .map(|_| rng.index(17) as i32 - 8)
                .collect();
            let tm = TiledMatrix::from_codes(
                &codes,
                in_dim,
                out_dim,
                t,
                DeviceConfig::paper(4),
                None,
            );
            let desc = LayerDesc::Linear {
                in_features: in_dim,
                out_features: out_dim,
            };
            assert_eq!(tm.crossbar_count(), crossbars_for_layer(&desc, t));
        }
    }

    #[test]
    fn tiled_matvec_matches_dense_reference() {
        let mut rng = TensorRng::seed(1);
        let (in_dim, out_dim, t) = (70, 45, 32);
        let codes: Vec<i32> = (0..in_dim * out_dim)
            .map(|_| rng.index(17) as i32 - 8)
            .collect();
        let tm =
            TiledMatrix::from_codes(&codes, in_dim, out_dim, t, DeviceConfig::paper(4), None);
        let x: Vec<f32> = (0..in_dim).map(|_| rng.index(16) as f32).collect();
        let y = tm.matvec_code_units(&x, None);
        for j in 0..out_dim {
            let expected: f32 = (0..in_dim).map(|i| codes[j * in_dim + i] as f32 * x[i]).sum();
            assert!(
                (y[j] - expected).abs() < 1e-2 * (1.0 + expected.abs()),
                "out {j}: {} vs {expected}",
                y[j]
            );
        }
    }

    #[test]
    fn inactive_reliability_is_bit_identical_to_from_codes() {
        let mut rng = TensorRng::seed(4);
        let (in_dim, out_dim, t) = (70, 45, 32);
        let codes: Vec<i32> = (0..in_dim * out_dim)
            .map(|_| rng.index(17) as i32 - 8)
            .collect();
        let cfg = DeviceConfig::paper(4);
        let plain = TiledMatrix::from_codes(&codes, in_dim, out_dim, t, cfg, None);
        let (reliable, stats) = TiledMatrix::from_codes_reliable(
            &codes,
            in_dim,
            out_dim,
            t,
            cfg,
            &ReliabilityConfig::ideal(),
            0,
            None,
        );
        assert!(stats.is_clean());
        assert!(reliable.observed_faults().is_none());
        let x: Vec<f32> = (0..in_dim).map(|i| (i % 7) as f32).collect();
        assert_eq!(
            plain.matvec_code_units(&x, None),
            reliable.matvec_code_units(&x, None)
        );
    }

    #[test]
    fn zero_rate_but_active_path_matches_dense_reference() {
        // Force the reliable code path with a tiny rate and a seed whose
        // maps happen to matter little; verify against the dense product.
        let mut rng = TensorRng::seed(5);
        let (in_dim, out_dim, t) = (40, 37, 32);
        let codes: Vec<i32> = (0..in_dim * out_dim)
            .map(|_| rng.index(17) as i32 - 8)
            .collect();
        let rel = ReliabilityConfig::faulty(
            crate::fault::FaultRates::stuck(0.0001),
            3,
            ProgramPolicy::Remap,
        );
        let (tm, _) = TiledMatrix::from_codes_reliable(
            &codes,
            in_dim,
            out_dim,
            t,
            DeviceConfig::paper(4),
            &rel,
            0,
            None,
        );
        let x: Vec<f32> = (0..in_dim).map(|_| rng.index(16) as f32).collect();
        let y = tm.matvec_code_units(&x, None);
        // With write-verify + remap at a near-zero fault rate, almost every
        // output matches the dense reference; allow the rare masked cell.
        let mut mismatches = 0;
        for j in 0..out_dim {
            let expected: f32 =
                (0..in_dim).map(|i| codes[j * in_dim + i] as f32 * x[i]).sum();
            if (y[j] - expected).abs() > 1e-2 * (1.0 + expected.abs()) {
                mismatches += 1;
            }
        }
        assert!(mismatches <= 1, "{mismatches} columns off at 0.01% faults");
    }

    #[test]
    fn remap_beats_naive_on_the_same_seeded_hardware() {
        let mut rng = TensorRng::seed(6);
        let (in_dim, out_dim, t) = (64, 48, 32);
        let codes: Vec<i32> = (0..in_dim * out_dim)
            .map(|_| rng.index(17) as i32 - 8)
            .collect();
        let x: Vec<f32> = (0..in_dim).map(|_| rng.index(8) as f32).collect();
        let dense: Vec<f32> = (0..out_dim)
            .map(|j| (0..in_dim).map(|i| codes[j * in_dim + i] as f32 * x[i]).sum())
            .collect();
        let rates = crate::fault::FaultRates::stuck(0.03);
        let err = |policy: ProgramPolicy| {
            let rel = ReliabilityConfig::faulty(rates, 11, policy);
            let (tm, stats) = TiledMatrix::from_codes_reliable(
                &codes,
                in_dim,
                out_dim,
                t,
                DeviceConfig::paper(4),
                &rel,
                2,
                None,
            );
            let y = tm.matvec_code_units(&x, None);
            let e: f32 = y
                .iter()
                .zip(dense.iter())
                .map(|(a, b)| (a - b).abs())
                .sum();
            (e, stats)
        };
        let (naive_err, naive_stats) = err(ProgramPolicy::Naive);
        let (verify_err, verify_stats) = err(ProgramPolicy::WriteVerify);
        let (remap_err, remap_stats) = err(ProgramPolicy::Remap);
        // Same seeded hardware in all three runs.
        assert_eq!(naive_stats.cells, verify_stats.cells);
        assert_eq!(verify_stats.cells, remap_stats.cells);
        assert!(naive_stats.cells > 0, "3% rate produced no faults?");
        // Masking bounds the error; remapping then recovers masked weight.
        assert!(verify_err < naive_err, "verify {verify_err} vs naive {naive_err}");
        assert!(remap_err < verify_err, "remap {remap_err} vs verify {verify_err}");
        assert!(remap_stats.remapped > 0, "remapper never moved a column");
        assert!(
            remap_stats.magnitude_lost < verify_stats.magnitude_lost,
            "remap lost {} ≥ verify {}",
            remap_stats.magnitude_lost,
            verify_stats.magnitude_lost
        );
        // Write-verify discovered the faults it masked.
        let observed: usize = remap_stats.masked as usize;
        assert_eq!(
            observed,
            err(ProgramPolicy::Remap)
                .1
                .masked as usize,
            "deterministic masking"
        );
    }

    #[test]
    fn dead_column_is_evacuated_by_remap() {
        // One tile, one dead bitline: remap must move that logical column
        // onto a spare and recover the exact product.
        let (in_dim, out_dim, t) = (8, 4, 32);
        let codes: Vec<i32> = (0..in_dim * out_dim).map(|k| (k % 15) as i32 - 7).collect();
        let x: Vec<f32> = (0..in_dim).map(|i| 1.0 + (i % 3) as f32).collect();
        let dense: Vec<f32> = (0..out_dim)
            .map(|j| (0..in_dim).map(|i| codes[j * in_dim + i] as f32 * x[i]).sum())
            .collect();
        // Find a seed whose map kills at least one in-use bitline and
        // nothing else (dead_line only; rates make cells impossible).
        let rates =
            crate::fault::FaultRates { stuck_on: 0.0, stuck_off: 0.0, dead_line: 0.08 };
        let mut found = false;
        for seed in 0..200u64 {
            let rel = ReliabilityConfig::faulty(rates, seed, ProgramPolicy::Remap);
            let map = FaultMap::seeded(
                in_dim,
                out_dim + rel.spare_cols,
                rates,
                rel.tile_seed(0, 0),
            );
            let dead_in_use = (0..out_dim).any(|c| map.col_is_dead(c));
            let dead_rows = (0..in_dim).any(|r| map.row_is_dead(r));
            let all_dead = (0..out_dim + rel.spare_cols).all(|c| map.col_is_dead(c));
            if dead_in_use && !dead_rows && !all_dead {
                let (tm, stats) = TiledMatrix::from_codes_reliable(
                    &codes,
                    in_dim,
                    out_dim,
                    t,
                    DeviceConfig::paper(4),
                    &rel,
                    0,
                    None,
                );
                assert!(stats.remapped > 0, "seed {seed}: no column moved");
                let y = tm.matvec_code_units(&x, None);
                // Enough spares: every column lands on a live bitline.
                if (out_dim + rel.spare_cols)
                    - (0..out_dim + rel.spare_cols)
                        .filter(|&c| map.col_is_dead(c))
                        .count()
                    >= out_dim
                {
                    for j in 0..out_dim {
                        assert!(
                            (y[j] - dense[j]).abs() < 1e-2 * (1.0 + dense[j].abs()),
                            "seed {seed} col {j}: {} vs {}",
                            y[j],
                            dense[j]
                        );
                    }
                }
                found = true;
                break;
            }
        }
        assert!(found, "no seed produced a usable dead-column scenario");
    }

    #[test]
    fn geometry_covers_only_synaptic_layers() {
        let descs = vec![
            LayerDesc::Conv {
                in_channels: 1,
                out_channels: 6,
                kernel: 5,
                stride: 1,
                padding: 2,
            },
            LayerDesc::Other,
            LayerDesc::Linear {
                in_features: 400,
                out_features: 84,
            },
        ];
        let geo = network_geometry(&descs, 32);
        assert_eq!(geo.len(), 2);
        assert_eq!(geo[0].rows, 25);
        assert_eq!(geo[0].cols, 6);
        assert_eq!(geo[0].crossbars, 1);
        assert_eq!(geo[1].crossbars, 3 * 13);
        assert_eq!(geo[1].weights, 400 * 84);
    }
}
