//! Layer-to-crossbar mapping, including the paper's Eq. 1 tiling count.
//!
//! A convolutional layer with `J` filters of size `s × s × d` becomes a
//! weight matrix with `s²·d` rows (wordlines) and `J` columns (bitlines);
//! a fully connected layer maps directly. Since physical crossbars are
//! bounded at `t × t` (the paper uses 32 × 32), the matrix is tiled:
//!
//! ```text
//! L_i = ⌈J_i / t⌉ · ⌈s_i² · J_{i−1} / t⌉          (Eq. 1)
//! ```

use crate::crossbar::Crossbar;
use crate::device::DeviceConfig;
use qsnc_nn::LayerDesc;
use qsnc_tensor::TensorRng;

/// Integer ceiling division.
fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Wordline (row) count a layer's weight matrix needs.
///
/// # Panics
///
/// Panics for [`LayerDesc::Other`], which has no synapses.
pub fn layer_rows(desc: &LayerDesc) -> usize {
    match *desc {
        LayerDesc::Conv {
            in_channels,
            kernel,
            ..
        } => kernel * kernel * in_channels,
        LayerDesc::Linear { in_features, .. } => in_features,
        LayerDesc::Other => panic!("non-synaptic layer has no crossbar mapping"),
    }
}

/// Bitline (column) count a layer's weight matrix needs.
///
/// # Panics
///
/// Panics for [`LayerDesc::Other`].
pub fn layer_cols(desc: &LayerDesc) -> usize {
    match *desc {
        LayerDesc::Conv { out_channels, .. } => out_channels,
        LayerDesc::Linear { out_features, .. } => out_features,
        LayerDesc::Other => panic!("non-synaptic layer has no crossbar mapping"),
    }
}

/// The paper's Eq. 1: number of `t × t` crossbars for one layer.
///
/// # Panics
///
/// Panics if `t == 0` or the layer is non-synaptic.
pub fn crossbars_for_layer(desc: &LayerDesc, t: usize) -> usize {
    assert!(t > 0, "crossbar size must be positive");
    ceil_div(layer_cols(desc), t) * ceil_div(layer_rows(desc), t)
}

/// Geometry summary for one mapped layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LayerGeometry {
    /// Wordlines used by the layer's weight matrix.
    pub rows: usize,
    /// Bitlines used.
    pub cols: usize,
    /// Crossbars after `t × t` tiling (Eq. 1).
    pub crossbars: usize,
    /// Synaptic weight count.
    pub weights: usize,
}

/// Maps every synaptic layer of a network (described by its descriptors) to
/// crossbar geometry.
pub fn network_geometry(descs: &[LayerDesc], t: usize) -> Vec<LayerGeometry> {
    descs
        .iter()
        .filter(|d| d.is_synaptic())
        .map(|d| LayerGeometry {
            rows: layer_rows(d),
            cols: layer_cols(d),
            crossbars: crossbars_for_layer(d, t),
            weights: d.weight_count(),
        })
        .collect()
}

/// A weight matrix tiled over physical crossbars.
///
/// Stores the tile grid in block-row-major order and performs full-size
/// vector-matrix products by accumulating tile contributions — the digital
/// summation the paper's multi-crossbar composition performs.
#[derive(Debug, Clone)]
pub struct TiledMatrix {
    in_dim: usize,
    out_dim: usize,
    tile: usize,
    row_blocks: usize,
    col_blocks: usize,
    tiles: Vec<Crossbar>,
}

impl TiledMatrix {
    /// Tiles a weight-code matrix in `[out, in]` layout (as stored by
    /// `Conv2d`/`Linear`) over `tile × tile` crossbars.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != out_dim·in_dim` or `tile == 0`.
    pub fn from_codes(
        codes: &[i32],
        in_dim: usize,
        out_dim: usize,
        tile: usize,
        config: DeviceConfig,
        mut rng: Option<&mut TensorRng>,
    ) -> Self {
        assert!(tile > 0, "tile size must be positive");
        assert_eq!(codes.len(), out_dim * in_dim, "code matrix shape mismatch");
        let row_blocks = ceil_div(in_dim, tile);
        let col_blocks = ceil_div(out_dim, tile);
        let instrument = qsnc_telemetry::enabled();
        let mut tiles = Vec::with_capacity(row_blocks * col_blocks);
        for rb in 0..row_blocks {
            for cb in 0..col_blocks {
                let rows = (in_dim - rb * tile).min(tile);
                let cols = (out_dim - cb * tile).min(tile);
                if instrument {
                    // Fraction of the physical t×t crossbar this (possibly
                    // partial edge) tile actually occupies.
                    qsnc_telemetry::observe(
                        "snc.map.tile_utilization",
                        (rows * cols) as f64 / (tile * tile) as f64,
                        &[0.25, 0.5, 0.75, 0.9, 1.0],
                    );
                }
                // Crossbar cell (i, j) = weight of output (cb·tile + j)
                // from input (rb·tile + i): transposed from [out, in].
                let mut tile_codes = Vec::with_capacity(rows * cols);
                for i in 0..rows {
                    for j in 0..cols {
                        let out_idx = cb * tile + j;
                        let in_idx = rb * tile + i;
                        tile_codes.push(codes[out_idx * in_dim + in_idx]);
                    }
                }
                tiles.push(Crossbar::from_codes(
                    &tile_codes,
                    rows,
                    cols,
                    config,
                    rng.as_deref_mut(),
                ));
            }
        }
        if instrument {
            qsnc_telemetry::counter_add("snc.map.crossbars", tiles.len() as u64);
            qsnc_telemetry::counter_add(
                "snc.map.devices",
                tiles.iter().map(Crossbar::device_count).sum::<usize>() as u64,
            );
        }
        TiledMatrix {
            in_dim,
            out_dim,
            tile,
            row_blocks,
            col_blocks,
            tiles,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Number of physical crossbars (matches Eq. 1).
    pub fn crossbar_count(&self) -> usize {
        self.tiles.len()
    }

    /// Total devices across all tiles.
    pub fn device_count(&self) -> usize {
        self.tiles.iter().map(Crossbar::device_count).sum()
    }

    /// Full `y[out] = Σ codes[out][in] · x[in]` in code units, accumulated
    /// over tiles. Read noise applies when `rng` is given.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim()`.
    pub fn matvec_code_units(&self, x: &[f32], mut rng: Option<&mut TensorRng>) -> Vec<f32> {
        assert_eq!(x.len(), self.in_dim, "input length mismatch");
        let mut y = vec![0.0f32; self.out_dim];
        for rb in 0..self.row_blocks {
            let row_start = rb * self.tile;
            let rows = (self.in_dim - row_start).min(self.tile);
            let xin = &x[row_start..row_start + rows];
            // Skip silent row blocks entirely (event-driven behaviour).
            if xin.iter().all(|&v| v == 0.0) {
                continue;
            }
            for cb in 0..self.col_blocks {
                let tile = &self.tiles[rb * self.col_blocks + cb];
                let part = tile.matvec_code_units(xin, rng.as_deref_mut());
                let col_start = cb * self.tile;
                for (j, p) in part.into_iter().enumerate() {
                    y[col_start + j] += p;
                }
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_lenet_conv2_example() {
        // Paper Sec. 2.2: layer with J filters, size s×s, depth J_prev.
        // LeNet conv2: J=16, s=5, J_prev=6 → rows 150 → ⌈16/32⌉·⌈150/32⌉ = 5.
        let d = LayerDesc::Conv {
            in_channels: 6,
            out_channels: 16,
            kernel: 5,
            stride: 1,
            padding: 0,
        };
        assert_eq!(crossbars_for_layer(&d, 32), 5);
    }

    #[test]
    fn eq1_exact_fit_uses_one_crossbar() {
        let d = LayerDesc::Linear {
            in_features: 32,
            out_features: 32,
        };
        assert_eq!(crossbars_for_layer(&d, 32), 1);
        let d33 = LayerDesc::Linear {
            in_features: 33,
            out_features: 32,
        };
        assert_eq!(crossbars_for_layer(&d33, 32), 2);
    }

    #[test]
    fn eq1_monotone_in_layer_size() {
        let mk = |j: usize, jp: usize| LayerDesc::Conv {
            in_channels: jp,
            out_channels: j,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let mut prev = 0;
        for width in [4, 8, 16, 32, 64, 128] {
            let n = crossbars_for_layer(&mk(width, width), 32);
            assert!(n >= prev);
            prev = n;
        }
    }

    #[test]
    fn tiled_matrix_count_matches_eq1() {
        let mut rng = TensorRng::seed(0);
        for &(in_dim, out_dim, t) in
            &[(150, 16, 32), (400, 84, 32), (33, 65, 32), (10, 10, 32)]
        {
            let codes: Vec<i32> = (0..in_dim * out_dim)
                .map(|_| rng.index(17) as i32 - 8)
                .collect();
            let tm = TiledMatrix::from_codes(
                &codes,
                in_dim,
                out_dim,
                t,
                DeviceConfig::paper(4),
                None,
            );
            let desc = LayerDesc::Linear {
                in_features: in_dim,
                out_features: out_dim,
            };
            assert_eq!(tm.crossbar_count(), crossbars_for_layer(&desc, t));
        }
    }

    #[test]
    fn tiled_matvec_matches_dense_reference() {
        let mut rng = TensorRng::seed(1);
        let (in_dim, out_dim, t) = (70, 45, 32);
        let codes: Vec<i32> = (0..in_dim * out_dim)
            .map(|_| rng.index(17) as i32 - 8)
            .collect();
        let tm =
            TiledMatrix::from_codes(&codes, in_dim, out_dim, t, DeviceConfig::paper(4), None);
        let x: Vec<f32> = (0..in_dim).map(|_| rng.index(16) as f32).collect();
        let y = tm.matvec_code_units(&x, None);
        for j in 0..out_dim {
            let expected: f32 = (0..in_dim).map(|i| codes[j * in_dim + i] as f32 * x[i]).sum();
            assert!(
                (y[j] - expected).abs() < 1e-2 * (1.0 + expected.abs()),
                "out {j}: {} vs {expected}",
                y[j]
            );
        }
    }

    #[test]
    fn geometry_covers_only_synaptic_layers() {
        let descs = vec![
            LayerDesc::Conv {
                in_channels: 1,
                out_channels: 6,
                kernel: 5,
                stride: 1,
                padding: 2,
            },
            LayerDesc::Other,
            LayerDesc::Linear {
                in_features: 400,
                out_features: 84,
            },
        ];
        let geo = network_geometry(&descs, 32);
        assert_eq!(geo.len(), 2);
        assert_eq!(geo[0].rows, 25);
        assert_eq!(geo[0].cols, 6);
        assert_eq!(geo[0].crossbars, 1);
        assert_eq!(geo[1].crossbars, 3 * 13);
        assert_eq!(geo[1].weights, 400 * 84);
    }
}
