//! End-to-end spiking inference on the memristor substrate.
//!
//! [`SpikingNetwork::compile`] lowers a trained, quantized `Sequential`
//! onto the hardware model: synaptic layers become tiled crossbars, batch
//! norm folds into the preceding convolution, ReLU + signal quantization
//! become the IFC/counter stage (the IFC is naturally rectifying, so ReLU
//! is free), and pooling/flatten stay digital. In the noise-free setting
//! the spiking network's outputs match the software-quantized network's
//! exactly — the crossbar computes the same fixed-point arithmetic — which
//! the integration tests assert; device noise can then be layered on.

use crate::device::DeviceConfig;
use crate::fault::{DegradationStats, ReliabilityConfig};
use crate::mapping::TiledMatrix;
use crate::spike::Ifc;
use qsnc_nn::layers::{AvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, Relu, Residual};
use qsnc_nn::{Batch, Layer, Sequential};
use qsnc_quant::{cluster_weights, ActivationQuantizer, SignalStage};
use qsnc_tensor::{im2col, parallel, Conv2dSpec, Tensor, TensorRng};
use std::fmt;

/// Deployment parameters.
#[derive(Debug, Clone, Copy)]
pub struct DeployConfig {
    /// Synaptic weight bit width `N`.
    pub weight_bits: u32,
    /// Physical crossbar edge (the paper uses 32).
    pub crossbar_size: usize,
    /// Device model (resistance range, noise).
    pub device: DeviceConfig,
    /// Quantizer used to rate-code the input image.
    pub input_quantizer: ActivationQuantizer,
    /// Reliability layer: fault population and countermeasure policy.
    /// Defaults to [`ReliabilityConfig::ideal`] (inactive, bit-identical to
    /// fault-free deployment).
    pub reliability: ReliabilityConfig,
}

impl DeployConfig {
    /// The paper's configuration: `N`-bit weights, 32×32 crossbars,
    /// 50 kΩ–1 MΩ devices, `M`-bit input coding, ideal (fault-free)
    /// hardware.
    pub fn paper(weight_bits: u32, activation_bits: u32) -> Self {
        DeployConfig {
            weight_bits,
            crossbar_size: 32,
            device: DeviceConfig::paper(weight_bits),
            input_quantizer: ActivationQuantizer::with_scale(
                activation_bits,
                ((1u32 << activation_bits) - 1) as f32,
            ),
            reliability: ReliabilityConfig::ideal(),
        }
    }
}

/// Errors from lowering a network onto the substrate.
#[derive(Debug)]
pub enum CompileError {
    /// A layer type the substrate cannot realize.
    UnsupportedLayer(String),
    /// Batch norm appeared without a preceding convolution to fold into.
    DanglingBatchNorm,
    /// The input to a synaptic layer is not a quantized (spike-coded)
    /// signal.
    UnquantizedInput(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnsupportedLayer(n) => write!(f, "unsupported layer for SNC: {n}"),
            CompileError::DanglingBatchNorm => {
                write!(f, "batch norm without preceding convolution")
            }
            CompileError::UnquantizedInput(n) => {
                write!(f, "synaptic layer {n} driven by unquantized signal")
            }
        }
    }
}

impl std::error::Error for CompileError {}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SynKind {
    Conv { spec: Conv2dSpec, in_c: usize, out_c: usize },
    Fc { in_dim: usize, out_dim: usize },
}

/// One crossbar-mapped synaptic layer plus its IFC/counter stage.
#[derive(Debug)]
pub(crate) struct SynapticStage {
    pub(crate) kind: SynKind,
    pub(crate) tiles: TiledMatrix,
    pub(crate) weight_scale: f32,
    pub(crate) bias: Vec<f32>,
    pub(crate) in_quant: ActivationQuantizer,
    pub(crate) rectify: bool,
    pub(crate) out_quant: Option<ActivationQuantizer>,
    /// The clustered integer codes behind `tiles`, kept for the integer
    /// fast-path engine and the exact-arithmetic float oracle.
    pub(crate) codes: Vec<i32>,
}

#[derive(Debug)]
pub(crate) enum Stage {
    Synaptic(SynapticStage),
    MaxPool { window: usize, stride: usize },
    AvgPool { window: usize, stride: usize },
    Flatten,
    /// Standalone rectify + requantize (IFC on an analog sum, e.g. after a
    /// residual add).
    Requant { quant: Option<ActivationQuantizer> },
    Residual { body: Vec<Stage>, shortcut: Vec<Stage> },
}

/// A network lowered onto memristor crossbars, ready for spiking inference.
#[derive(Debug)]
pub struct SpikingNetwork {
    stages: Vec<Stage>,
    input_quant: ActivationQuantizer,
    /// Integer fast path, present when the network is exactly expressible
    /// in integer form and was programmed without write noise or an active
    /// reliability layer.
    engine: Option<crate::engine::IntEngine>,
    /// Per-synaptic-layer degradation report, in compile order (all-clean
    /// when the reliability config was inactive).
    degradation: Vec<DegradationStats>,
}

// Batch-parallel evaluation shares `&SpikingNetwork` across worker threads;
// keep the network free of interior mutability.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<SpikingNetwork>()
};

struct Compiler<'a> {
    config: &'a DeployConfig,
    rng: Option<&'a mut TensorRng>,
    /// Synaptic layers finalized so far — the layer index fed into
    /// [`ReliabilityConfig::tile_seed`].
    layer: usize,
    /// Per-synaptic-layer degradation, in compile order.
    degradation: Vec<DegradationStats>,
}

/// Builder state while walking one layer stack.
struct PendingSynapse {
    kind: SynKind,
    weight: Tensor,
    bias: Vec<f32>,
    rectify: bool,
    out_quant: Option<ActivationQuantizer>,
}

impl<'a> Compiler<'a> {
    fn compile_stack(
        &mut self,
        layers: &[Box<dyn Layer>],
        current_quant: &mut Option<ActivationQuantizer>,
    ) -> Result<Vec<Stage>, CompileError> {
        let mut stages = Vec::new();
        let mut pending: Option<PendingSynapse> = None;

        // Finalize a pending synaptic layer into a crossbar stage.
        macro_rules! flush {
            () => {
                if let Some(p) = pending.take() {
                    stages.push(Stage::Synaptic(self.finalize(p, current_quant)?));
                }
            };
        }

        for layer in layers {
            let any = layer.as_any();
            if let Some(conv) = any.downcast_ref::<Conv2d>() {
                flush!();
                let in_quant = current_quant
                    .ok_or_else(|| CompileError::UnquantizedInput("conv2d".into()))?;
                let _ = in_quant;
                pending = Some(PendingSynapse {
                    kind: SynKind::Conv {
                        spec: conv.spec(),
                        in_c: conv.weight().dims()[1],
                        out_c: conv.weight().dims()[0],
                    },
                    weight: conv.weight().clone(),
                    bias: conv.bias().as_slice().to_vec(),
                    rectify: false,
                    out_quant: None,
                });
            } else if let Some(fc) = any.downcast_ref::<Linear>() {
                flush!();
                pending = Some(PendingSynapse {
                    kind: SynKind::Fc {
                        in_dim: fc.weight().dims()[1],
                        out_dim: fc.weight().dims()[0],
                    },
                    weight: fc.weight().clone(),
                    bias: fc.bias().as_slice().to_vec(),
                    rectify: false,
                    out_quant: None,
                });
            } else if let Some(bn) = any.downcast_ref::<BatchNorm2d>() {
                let p = pending.as_mut().ok_or(CompileError::DanglingBatchNorm)?;
                let (a, b) = bn.eval_affine();
                fold_batchnorm(p, &a, &b)?;
            } else if any.downcast_ref::<Relu>().is_some() {
                match pending.as_mut() {
                    Some(p) => p.rectify = true,
                    None => stages.push(Stage::Requant { quant: None }),
                }
            } else if let Some(stage) = any.downcast_ref::<SignalStage>() {
                let q = stage.quantizer();
                match pending.as_mut() {
                    Some(p) if p.out_quant.is_none() => {
                        p.out_quant = Some(q);
                        flush!();
                    }
                    _ => {
                        // Quantizer on an analog path (e.g. after residual
                        // add): attach to the last Requant stage if present.
                        match stages.last_mut() {
                            Some(Stage::Requant { quant }) if quant.is_none() => {
                                *quant = Some(q);
                            }
                            _ => stages.push(Stage::Requant { quant: Some(q) }),
                        }
                    }
                }
                *current_quant = Some(q);
            } else if let Some(pool) = any.downcast_ref::<MaxPool2d>() {
                flush!();
                stages.push(Stage::MaxPool {
                    window: pool.window(),
                    stride: pool.stride(),
                });
            } else if let Some(pool) = any.downcast_ref::<AvgPool2d>() {
                flush!();
                stages.push(Stage::AvgPool {
                    window: pool.window(),
                    stride: pool.stride(),
                });
            } else if any.downcast_ref::<Flatten>().is_some() {
                flush!();
                stages.push(Stage::Flatten);
            } else if let Some(res) = any.downcast_ref::<Residual>() {
                flush!();
                let mut q_body = *current_quant;
                let body = self.compile_stack(res.body(), &mut q_body)?;
                let mut q_skip = *current_quant;
                let shortcut = self.compile_stack(res.shortcut_layers(), &mut q_skip)?;
                // After an add, the signal is analog until the next requant.
                *current_quant = None;
                stages.push(Stage::Residual { body, shortcut });
            } else if layer.name() == "identity" || layer.name() == "dropout" {
                // No-ops at inference time.
            } else {
                return Err(CompileError::UnsupportedLayer(layer.name().to_string()));
            }
        }
        flush!();
        Ok(stages)
    }

    fn finalize(
        &mut self,
        p: PendingSynapse,
        current_quant: &mut Option<ActivationQuantizer>,
    ) -> Result<SynapticStage, CompileError> {
        let in_quant = current_quant.ok_or_else(|| {
            CompileError::UnquantizedInput(format!("{:?}", p.kind))
        })?;
        let (in_dim, out_dim) = match p.kind {
            SynKind::Conv { spec, in_c, out_c } => (spec.kernel * spec.kernel * in_c, out_c),
            SynKind::Fc { in_dim, out_dim } => (in_dim, out_dim),
        };
        // Recover the fixed-point codes (idempotent for already-clustered
        // weights) and program the crossbar tiles. With an inactive
        // reliability config this is exactly `TiledMatrix::from_codes`.
        let q = cluster_weights(&p.weight, self.config.weight_bits);
        let layer = self.layer;
        self.layer += 1;
        let (tiles, stats) = TiledMatrix::from_codes_reliable(
            &q.codes,
            in_dim,
            out_dim,
            self.config.crossbar_size,
            self.config.device,
            &self.config.reliability,
            layer,
            self.rng.as_deref_mut(),
        );
        self.degradation.push(stats);
        // The signal leaving this stage is quantized (or analog when no
        // counter follows, e.g. the final logits or a pre-add conv).
        *current_quant = p.out_quant;
        Ok(SynapticStage {
            kind: p.kind,
            tiles,
            weight_scale: q.scale,
            bias: p.bias,
            in_quant,
            rectify: p.rectify,
            out_quant: p.out_quant,
            codes: q.codes,
        })
    }
}

fn fold_batchnorm(p: &mut PendingSynapse, a: &[f32], b: &[f32]) -> Result<(), CompileError> {
    let out = match p.kind {
        SynKind::Conv { out_c, .. } => out_c,
        // BN after FC does not occur in the model zoo.
        SynKind::Fc { .. } => return Err(CompileError::DanglingBatchNorm),
    };
    assert_eq!(a.len(), out, "batchnorm width mismatch");
    let per_filter = p.weight.len() / out;
    let ws = p.weight.as_mut_slice();
    for f in 0..out {
        for w in &mut ws[f * per_filter..(f + 1) * per_filter] {
            *w *= a[f];
        }
        p.bias[f] = a[f] * p.bias[f] + b[f];
    }
    Ok(())
}

impl SynapticStage {
    /// Runs the stage on a true-unit activation tensor `[1, …]`, returning
    /// the true-unit output.
    fn forward(&self, x: &Tensor, rng: &mut Option<&mut TensorRng>) -> Tensor {
        match self.kind {
            SynKind::Conv { spec, in_c, out_c } => {
                assert_eq!(x.dims()[1], in_c, "conv input channel mismatch");
                let (h, w) = (x.dims()[2], x.dims()[3]);
                let oh = spec.output_size(h);
                let ow = spec.output_size(w);
                let cols = im2col(x, spec);
                let (rows, ncols) = (cols.dims()[0], cols.dims()[1]);
                let cs = cols.as_slice();
                let mut out = Tensor::zeros([1, out_c, oh, ow]);
                let os = out.as_mut_slice();
                let mut counts = vec![0.0f32; rows];
                for j in 0..ncols {
                    for (i, c) in counts.iter_mut().enumerate() {
                        *c = (cs[i * ncols + j] * self.in_quant.scale()).round();
                    }
                    let y = self.tiles.matvec_code_units(&counts, rng.as_deref_mut());
                    for (f, yf) in y.into_iter().enumerate() {
                        let z = self.weight_scale * yf / self.in_quant.scale() + self.bias[f];
                        os[f * oh * ow + j] = self.requant(z);
                    }
                }
                self.record_output_telemetry(out.as_slice());
                out
            }
            SynKind::Fc { in_dim, out_dim } => {
                assert_eq!(x.len(), in_dim, "fc input length mismatch");
                let counts: Vec<f32> = x
                    .iter()
                    .map(|&v| (v * self.in_quant.scale()).round())
                    .collect();
                let y = self.tiles.matvec_code_units(&counts, rng.as_deref_mut());
                let data: Vec<f32> = y
                    .into_iter()
                    .enumerate()
                    .map(|(f, yf)| {
                        let z = self.weight_scale * yf / self.in_quant.scale() + self.bias[f];
                        self.requant(z)
                    })
                    .collect();
                self.record_output_telemetry(&data);
                Tensor::from_vec(data, [1, out_dim])
            }
        }
    }

    /// Exact-arithmetic variant of [`Self::forward`]: identical float
    /// expressions, with the crossbar's analog conductance read replaced by
    /// the exact integer dot product `Σ code · count`. Every partial sum is
    /// an integer below `2^24` on deployable networks, so the `f32` sums
    /// are exact — this is the oracle the integer fast-path engine is
    /// bit-identical to.
    fn forward_reference(&self, x: &Tensor) -> Tensor {
        let in_scale = self.in_quant.scale();
        match self.kind {
            SynKind::Conv { spec, in_c, out_c } => {
                assert_eq!(x.dims()[1], in_c, "conv input channel mismatch");
                let (h, w) = (x.dims()[2], x.dims()[3]);
                let oh = spec.output_size(h);
                let ow = spec.output_size(w);
                let cols = im2col(x, spec);
                let (rows, ncols) = (cols.dims()[0], cols.dims()[1]);
                let cs = cols.as_slice();
                let mut out = Tensor::zeros([1, out_c, oh, ow]);
                let os = out.as_mut_slice();
                let mut counts = vec![0.0f32; rows];
                for j in 0..ncols {
                    for (i, c) in counts.iter_mut().enumerate() {
                        *c = (cs[i * ncols + j] * in_scale).round();
                    }
                    for f in 0..out_c {
                        let row = &self.codes[f * rows..(f + 1) * rows];
                        let yf: f32 = row.iter().zip(&counts).map(|(&c, &x)| c as f32 * x).sum();
                        let z = self.weight_scale * yf / in_scale + self.bias[f];
                        os[f * oh * ow + j] = self.requant(z);
                    }
                }
                out
            }
            SynKind::Fc { in_dim, out_dim } => {
                assert_eq!(x.len(), in_dim, "fc input length mismatch");
                let counts: Vec<f32> = x.iter().map(|&v| (v * in_scale).round()).collect();
                let data: Vec<f32> = (0..out_dim)
                    .map(|f| {
                        let row = &self.codes[f * in_dim..(f + 1) * in_dim];
                        let yf: f32 = row.iter().zip(&counts).map(|(&c, &x)| c as f32 * x).sum();
                        let z = self.weight_scale * yf / in_scale + self.bias[f];
                        self.requant(z)
                    })
                    .collect();
                Tensor::from_vec(data, [1, out_dim])
            }
        }
    }

    /// Tallies output spike counts and counter saturation for telemetry.
    ///
    /// The IFC emits one spike per output LSB, so the spike count of each
    /// neuron is its quantized output times the output scale; the counter
    /// saturated when it reached `2^M − 1`. Tallied locally per stage call
    /// and flushed as three counter adds, never per element.
    fn record_output_telemetry(&self, out: &[f32]) {
        if !qsnc_telemetry::enabled() {
            return;
        }
        if let (true, Some(q)) = (self.rectify, self.out_quant) {
            let max = q.max_level() as f32;
            let mut spikes = 0u64;
            let mut saturated = 0u64;
            for &v in out {
                let count = (v * q.scale()).round();
                spikes += count as u64;
                if count >= max {
                    saturated += 1;
                }
            }
            qsnc_telemetry::counter_add("snc.spikes", spikes);
            qsnc_telemetry::counter_add("snc.ifc.conversions", out.len() as u64);
            qsnc_telemetry::counter_add("snc.ifc.saturated", saturated);
        }
    }

    /// IFC + counter on one analog pre-activation.
    fn requant(&self, z: f32) -> f32 {
        match (self.rectify, self.out_quant) {
            (true, Some(q)) => {
                // IFC threshold = one output LSB; counter saturates at 2^M−1.
                let ifc = Ifc::new(1.0 / q.scale(), q.max_level());
                ifc.convert(z.max(0.0)) as f32 / q.scale()
            }
            (true, None) => z.max(0.0),
            (false, Some(q)) => q.quantize_value(z),
            (false, None) => z,
        }
    }
}

/// Same tie-breaking as [`Tensor::argmax`] (lowest index wins), for the
/// buffer-based fast path that never materializes a logits tensor.
fn argmax_slice(v: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &x) in v.iter().enumerate() {
        if x > best_v {
            best_v = x;
            best = i;
        }
    }
    best
}

fn run_stages(stages: &[Stage], x: &Tensor, rng: &mut Option<&mut TensorRng>) -> Tensor {
    run_stages_impl(stages, x, rng, false)
}

/// [`run_stages`] with exact-arithmetic synapses (no conductance
/// simulation, no noise): the bit-exactness oracle for the integer engine.
fn run_stages_reference(stages: &[Stage], x: &Tensor) -> Tensor {
    run_stages_impl(stages, x, &mut None, true)
}

fn run_stages_impl(
    stages: &[Stage],
    x: &Tensor,
    rng: &mut Option<&mut TensorRng>,
    exact: bool,
) -> Tensor {
    let mut h = x.clone();
    for stage in stages {
        h = match stage {
            Stage::Synaptic(s) if exact => s.forward_reference(&h),
            Stage::Synaptic(s) => s.forward(&h, rng),
            Stage::MaxPool { window, stride } => {
                let mut pool = MaxPool2d::new(*window, *stride);
                pool.forward(&h, qsnc_nn::Mode::Eval)
            }
            Stage::AvgPool { window, stride } => {
                let mut pool = AvgPool2d::new(*window, *stride);
                pool.forward(&h, qsnc_nn::Mode::Eval)
            }
            Stage::Flatten => {
                let n = h.dims()[0];
                let rest: usize = h.dims()[1..].iter().product();
                h.reshape([n, rest])
            }
            Stage::Requant { quant } => {
                let relu = h.relu();
                match quant {
                    Some(q) => q.quantize(&relu),
                    None => relu,
                }
            }
            Stage::Residual { body, shortcut } => {
                let main = run_stages_impl(body, &h, rng, exact);
                let skip = if shortcut.is_empty() {
                    h.clone()
                } else {
                    run_stages_impl(shortcut, &h, rng, exact)
                };
                &main + &skip
            }
        };
    }
    h
}

impl SpikingNetwork {
    /// Lowers a trained, quantized network onto the substrate.
    ///
    /// Pass `rng` to apply device write variation while programming the
    /// crossbars; `None` programs ideal conductances.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the network contains layers the
    /// substrate cannot realize or signals that were never quantized.
    pub fn compile(
        net: &Sequential,
        config: &DeployConfig,
        rng: Option<&mut TensorRng>,
    ) -> Result<Self, CompileError> {
        let _span = qsnc_telemetry::span!("snc.compile");
        // Write noise perturbs the programmed conductances away from the
        // integer codes, so the integer fast path would silently "denoise"
        // the network — only build it for ideal programming. An active
        // reliability layer disqualifies it for the same reason: masked and
        // stuck cells make the conductances diverge from the logical codes.
        let noisy_write = rng.is_some() && config.device.write_sigma > 0.0;
        let mut compiler = Compiler { config, rng, layer: 0, degradation: Vec::new() };
        let mut current = Some(config.input_quantizer);
        let stages = compiler.compile_stack(net.layers(), &mut current)?;
        let degradation = compiler.degradation;
        let engine = if noisy_write || config.reliability.is_active() {
            None
        } else {
            crate::engine::IntEngine::build(&stages, config.input_quantizer)
        };
        if qsnc_telemetry::enabled() {
            let name = if engine.is_some() { "snc.engine.compiled" } else { "snc.engine.fallback" };
            qsnc_telemetry::counter_add(name, 1);
            let mut total = DegradationStats::default();
            for s in &degradation {
                total.merge(s);
            }
            total.publish();
        }
        Ok(SpikingNetwork {
            stages,
            input_quant: config.input_quantizer,
            engine,
            degradation,
        })
    }

    /// Runs spiking inference on a single example `[1, …]`, returning the
    /// analog logits read from the final layer's bitlines.
    ///
    /// Pass `rng` to enable read noise on every crossbar access. Noise-free
    /// inference automatically takes the integer fast path when the network
    /// compiled one (see [`Self::has_fast_path`]); its outputs are
    /// bit-identical to [`Self::infer_reference`].
    ///
    /// # Examples
    ///
    /// ```
    /// use qsnc_memristor::{DeployConfig, SpikingNetwork};
    /// use qsnc_quant::{
    ///     insert_signal_stages, quantize_network_weights, ActivationQuantizer,
    ///     ActivationRegularizer, WeightQuantMethod,
    /// };
    /// use qsnc_tensor::TensorRng;
    ///
    /// // A 4-bit quantized LeNet, ready for the substrate.
    /// let mut rng = TensorRng::seed(0);
    /// let mut net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
    /// let (switch, _) = insert_signal_stages(
    ///     &mut net,
    ///     ActivationRegularizer::neuron_convergence(4),
    ///     0.0,
    ///     ActivationQuantizer::new(4),
    /// );
    /// switch.set_enabled(true);
    /// quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
    ///
    /// // Lower onto 32×32 crossbars and run one image through it.
    /// let snn = SpikingNetwork::compile(&net, &DeployConfig::paper(4, 4), None)?;
    /// let x = qsnc_tensor::init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng);
    /// let logits = snn.infer(&x, None);
    /// assert_eq!(logits.dims(), &[1, 10]);
    /// assert_eq!(logits, snn.infer_reference(&x)); // noise-free ⇒ bit-exact
    /// # Ok::<(), qsnc_memristor::CompileError>(())
    /// ```
    pub fn infer(&self, x: &Tensor, rng: Option<&mut TensorRng>) -> Tensor {
        let _span = qsnc_telemetry::span!("snc.infer");
        if rng.is_none() {
            if let Some(engine) = &self.engine {
                let mut out = Vec::new();
                let shape = engine.infer_into(x, &mut out);
                return Tensor::from_vec(out, shape.dims());
            }
        }
        assert!(
            !self.is_artifact_only(),
            "artifact-loaded network has no float substrate: noisy inference \
             requires a network compiled in-process from the training stack"
        );
        let coded = self.input_quant.quantize(x);
        let mut rng = rng;
        run_stages(&self.stages, &coded, &mut rng)
    }

    /// Noise-free inference into a caller-owned buffer (flattened in the
    /// same layout as [`Self::infer`]'s output tensor). On the integer fast
    /// path this performs **zero heap allocations** once `out` and the
    /// thread's scratch arena are warm; without a fast path it falls back
    /// to [`Self::infer`] and copies. Returns `true` when the fast path ran.
    pub fn infer_into(&self, x: &Tensor, out: &mut Vec<f32>) -> bool {
        match &self.engine {
            Some(engine) => {
                let _span = qsnc_telemetry::span!("snc.infer");
                engine.infer_into(x, out);
                true
            }
            None => {
                let logits = self.infer(x, None);
                out.clear();
                out.extend_from_slice(logits.as_slice());
                false
            }
        }
    }

    /// Noise-free **batched** inference into a caller-owned buffer: `xs` is
    /// a `[B, …]` tensor of `B` examples and the per-example output signals
    /// are written back-to-back into `out` (`out.len() / B` floats each, in
    /// the same layout as [`Self::infer`]'s flattened output tensor).
    ///
    /// On the integer fast path every example is bit-identical to
    /// [`Self::infer_reference`] — FC stages fold the batch into a single
    /// integer GEMM, conv stages stream examples through shared scratch
    /// buffers — and a warm fixed-batch-size call performs **zero heap
    /// allocations**. Without a fast path the examples fall back to
    /// [`Self::infer`] one at a time. Returns `true` when the fast path
    /// ran. This is the entry point the `qsnc-serve` micro-batcher drives.
    pub fn infer_batch_into(&self, xs: &Tensor, out: &mut Vec<f32>) -> bool {
        let batch = xs.dims()[0];
        if batch == 0 {
            out.clear();
            return self.engine.is_some();
        }
        match &self.engine {
            Some(engine) => {
                let _span = qsnc_telemetry::span!("snc.infer");
                engine.infer_batch_into(xs, out);
                true
            }
            None => {
                let stride: usize = xs.dims()[1..].iter().product();
                let mut ex_dims = vec![1usize];
                ex_dims.extend_from_slice(&xs.dims()[1..]);
                let mut example = Tensor::from_vec(vec![0.0; stride], ex_dims);
                out.clear();
                for b in 0..batch {
                    example
                        .as_mut_slice()
                        .copy_from_slice(&xs.as_slice()[b * stride..(b + 1) * stride]);
                    let logits = self.infer(&example, None);
                    out.extend_from_slice(logits.as_slice());
                }
                false
            }
        }
    }

    /// Whether the integer fast-path engine was compiled for this network.
    pub fn has_fast_path(&self) -> bool {
        self.engine.is_some()
    }

    /// Builds a network around an already-compiled integer engine with no
    /// float substrate behind it — the form [`crate::artifact`] loading
    /// produces. Only the noise-free engine entry points work on such a
    /// network; the float paths panic (see [`Self::is_artifact_only`]).
    pub(crate) fn from_engine(
        engine: crate::engine::IntEngine,
        input_quant: ActivationQuantizer,
    ) -> SpikingNetwork {
        SpikingNetwork {
            stages: Vec::new(),
            input_quant,
            engine: Some(engine),
            degradation: Vec::new(),
        }
    }

    /// The compiled stage list (empty for artifact-loaded networks).
    pub(crate) fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The compiled integer engine, when one exists.
    pub(crate) fn engine(&self) -> Option<&crate::engine::IntEngine> {
        self.engine.as_ref()
    }

    /// `true` when this network was loaded from a deployment artifact and
    /// therefore has **only** the integer fast path: [`Self::infer`] without
    /// noise, [`Self::infer_into`], [`Self::infer_batch_into`], and
    /// [`Self::evaluate`] without noise all work; noisy inference and
    /// [`Self::infer_reference`] panic because the float substrate was never
    /// shipped.
    pub fn is_artifact_only(&self) -> bool {
        self.stages.is_empty() && self.engine.is_some()
    }

    /// The whole-network degradation report: what deploying onto the
    /// configured (possibly faulty) hardware cost, merged over all synaptic
    /// layers. All-zero for ideal hardware.
    pub fn degradation(&self) -> DegradationStats {
        let mut total = DegradationStats::default();
        for s in &self.degradation {
            total.merge(s);
        }
        total
    }

    /// Per-synaptic-layer degradation reports, in compile order.
    pub fn layer_degradation(&self) -> &[DegradationStats] {
        &self.degradation
    }

    /// Exact-arithmetic float oracle: the same float pipeline as
    /// [`Self::infer`] with ideal synapses computed as exact integer dot
    /// products instead of simulated conductance reads. The integer fast
    /// path is bit-identical to this on every network it compiles for;
    /// the conductance simulation differs from it only by the analog read
    /// approximation.
    ///
    /// # Panics
    ///
    /// Panics on an artifact-loaded network ([`Self::is_artifact_only`]):
    /// the float substrate is not part of the deployment artifact.
    pub fn infer_reference(&self, x: &Tensor) -> Tensor {
        assert!(
            !self.is_artifact_only(),
            "artifact-loaded network has no float substrate: infer_reference \
             requires a network compiled in-process from the training stack"
        );
        let coded = self.input_quant.quantize(x);
        run_stages_reference(&self.stages, &coded)
    }

    /// Classification accuracy over batches (examples run one at a time, as
    /// the physical pipeline would).
    ///
    /// Without a noise `rng` the examples are independent, so they are
    /// sharded across the [`qsnc_tensor::parallel`] worker threads, each
    /// running `infer` against the shared (immutable) network; exact integer
    /// correct counts are summed, so the accuracy is identical at any thread
    /// count. With `rng` the single noise stream is inherently sequential and
    /// the examples run serially in order, preserving reproducibility of
    /// seeded noisy evaluations.
    pub fn evaluate(&self, batches: &[Batch], mut rng: Option<&mut TensorRng>) -> f32 {
        // Flat (batch, example) index — cheap to shard, and no per-example
        // tensor slicing up front.
        let index: Vec<(usize, usize)> = batches
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| (0..b.labels.len()).map(move |ei| (bi, ei)))
            .collect();
        if index.is_empty() {
            return 0.0;
        }
        let total = index.len();
        // One example tensor and one logits buffer per run, rebuilt only
        // when the batch shape changes: the loop body itself stays
        // allocation-free whenever the fast path is compiled.
        let eval_run = |shard: &[(usize, usize)], rng: &mut Option<&mut TensorRng>| -> usize {
            let mut example: Option<Tensor> = None;
            let mut logits: Vec<f32> = Vec::new();
            let mut correct = 0usize;
            for &(bi, ei) in shard {
                let batch = &batches[bi];
                let dims = batch.images.dims();
                let stride: usize = dims[1..].iter().product();
                if example.as_ref().is_none_or(|t| t.dims()[1..] != dims[1..]) {
                    let mut ex_dims = vec![1usize];
                    ex_dims.extend_from_slice(&dims[1..]);
                    example = Some(Tensor::from_vec(vec![0.0; stride], ex_dims));
                }
                let ex = example.as_mut().expect("example tensor just ensured");
                ex.as_mut_slice().copy_from_slice(
                    &batch.images.as_slice()[ei * stride..(ei + 1) * stride],
                );
                let pred = if rng.is_none() && self.engine.is_some() {
                    self.infer_into(ex, &mut logits);
                    argmax_slice(&logits)
                } else {
                    self.infer(ex, rng.as_deref_mut()).argmax()
                };
                if pred == batch.labels[ei] {
                    correct += 1;
                }
            }
            correct
        };
        let correct: usize = if rng.is_some() || parallel::num_threads() == 1 {
            // A noise rng is one sequential stream: stay serial and in order
            // so seeded noisy evaluations reproduce exactly.
            eval_run(&index, &mut rng)
        } else {
            parallel::par_map_shards(&index, |_, shard| eval_run(shard, &mut None))
                .into_iter()
                .sum()
        };
        correct as f32 / total as f32
    }

    /// Total crossbars programmed (matches Eq. 1 summed over layers).
    pub fn crossbar_count(&self) -> usize {
        fn count(stages: &[Stage]) -> usize {
            stages
                .iter()
                .map(|s| match s {
                    Stage::Synaptic(s) => s.tiles.crossbar_count(),
                    Stage::Residual { body, shortcut } => count(body) + count(shortcut),
                    _ => 0,
                })
                .sum()
        }
        count(&self.stages)
    }

    /// Total memristor devices programmed.
    pub fn device_count(&self) -> usize {
        fn count(stages: &[Stage]) -> usize {
            stages
                .iter()
                .map(|s| match s {
                    Stage::Synaptic(s) => s.tiles.device_count(),
                    Stage::Residual { body, shortcut } => count(body) + count(shortcut),
                    _ => 0,
                })
                .sum()
        }
        count(&self.stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsnc_nn::Mode;
    use qsnc_quant::{
        insert_signal_stages, quantize_network_weights, ActivationRegularizer, WeightQuantMethod,
    };

    /// Builds a small quantized LeNet ready for deployment.
    fn deployable_lenet(
        bits: u32,
        rng: &mut TensorRng,
    ) -> (Sequential, qsnc_quant::QuantSwitch) {
        let mut net = qsnc_nn::models::lenet(0.25, 10, rng);
        let (switch, _) = insert_signal_stages(
            &mut net,
            ActivationRegularizer::neuron_convergence(bits),
            0.0,
            ActivationQuantizer::new(bits),
        );
        switch.set_enabled(true);
        quantize_network_weights(&mut net, bits, WeightQuantMethod::Clustered);
        (net, switch)
    }

    #[test]
    fn compile_lenet_succeeds() {
        let mut rng = TensorRng::seed(0);
        let (net, _switch) = deployable_lenet(4, &mut rng);
        let config = DeployConfig::paper(4, 4);
        let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");
        assert!(snn.crossbar_count() > 0);
        assert!(snn.device_count() > 0);
    }

    #[test]
    fn spiking_matches_software_quantized_exactly_when_ideal() {
        let mut rng = TensorRng::seed(1);
        let (mut net, _switch) = deployable_lenet(4, &mut rng);
        let config = DeployConfig::paper(4, 4);
        let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");

        for seed in 0..5u64 {
            let mut drng = TensorRng::seed(seed + 100);
            let x = qsnc_tensor::init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut drng);
            // Software path: input quantized the same way.
            let coded = config.input_quantizer.quantize(&x);
            let sw = net.forward(&coded, Mode::Eval);
            let hw = snn.infer(&x, None);
            assert_eq!(sw.dims(), hw.dims());
            for (a, b) in sw.iter().zip(hw.iter()) {
                assert!(
                    (a - b).abs() < 2e-2 * (1.0 + a.abs()),
                    "software {a} vs hardware {b}"
                );
            }
        }
    }

    #[test]
    fn compile_resnet_succeeds_and_runs() {
        let mut rng = TensorRng::seed(2);
        let mut net = qsnc_nn::models::resnet(0.25, 10, &mut rng);
        // Exercise batch norm with a couple of training steps first.
        let x = qsnc_tensor::init::uniform([2, 3, 32, 32], 0.0, 1.0, &mut rng);
        net.forward(&x, Mode::Train);
        let (switch, _) = insert_signal_stages(
            &mut net,
            ActivationRegularizer::neuron_convergence(4),
            0.0,
            ActivationQuantizer::new(4),
        );
        switch.set_enabled(true);
        quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
        let config = DeployConfig::paper(4, 4);
        let snn = SpikingNetwork::compile(&net, &config, None).expect("compile resnet");
        let x1 = qsnc_tensor::init::uniform([1, 3, 32, 32], 0.0, 1.0, &mut rng);
        let logits = snn.infer(&x1, None);
        assert_eq!(logits.dims(), &[1, 10]);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn unquantized_network_fails_to_compile() {
        let mut rng = TensorRng::seed(3);
        let net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
        // No signal stages: conv2 is driven by an unquantized ReLU output.
        let config = DeployConfig::paper(4, 4);
        let err = SpikingNetwork::compile(&net, &config, None).unwrap_err();
        assert!(matches!(err, CompileError::UnquantizedInput(_)), "{err}");
    }

    #[test]
    fn write_noise_changes_outputs() {
        let mut rng = TensorRng::seed(4);
        let (net, _switch) = deployable_lenet(4, &mut rng);
        let mut config = DeployConfig::paper(4, 4);
        config.device = config.device.with_noise(0.1, 0.0);
        let mut noise_rng = TensorRng::seed(5);
        let snn_noisy =
            SpikingNetwork::compile(&net, &config, Some(&mut noise_rng)).expect("compile");
        let snn_ideal =
            SpikingNetwork::compile(&net, &DeployConfig::paper(4, 4), None).expect("compile");
        let x = qsnc_tensor::init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng);
        let a = snn_noisy.infer(&x, None);
        let b = snn_ideal.infer(&x, None);
        assert_ne!(a, b, "write noise should perturb logits");
    }

    #[test]
    fn faulty_deploy_disables_fast_path_and_reports_degradation() {
        use crate::fault::{FaultRates, ProgramPolicy};
        let mut rng = TensorRng::seed(7);
        let (net, _switch) = deployable_lenet(4, &mut rng);
        let ideal = DeployConfig::paper(4, 4);
        let snn_ideal = SpikingNetwork::compile(&net, &ideal, None).expect("compile");
        assert!(snn_ideal.has_fast_path());
        assert!(snn_ideal.degradation().is_clean());

        let mut faulty = DeployConfig::paper(4, 4);
        faulty.reliability =
            ReliabilityConfig::faulty(FaultRates::stuck(0.02), 9, ProgramPolicy::Remap);
        let snn_faulty = SpikingNetwork::compile(&net, &faulty, None).expect("compile");
        assert!(
            !snn_faulty.has_fast_path(),
            "integer engine must not compile against faulty conductances"
        );
        let d = snn_faulty.degradation();
        assert!(d.cells > 0, "2% stuck rate produced no faults");
        assert_eq!(
            snn_faulty.layer_degradation().len(),
            net.synaptic_descriptors().len()
        );
        // Stats are the merge of the per-layer reports.
        let mut merged = DegradationStats::default();
        for s in snn_faulty.layer_degradation() {
            merged.merge(s);
        }
        assert_eq!(d, merged);
        let x = qsnc_tensor::init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng);
        let logits = snn_faulty.infer(&x, None);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn faulty_deploys_are_deterministic_for_a_seed() {
        use crate::fault::{FaultRates, ProgramPolicy};
        let mut rng = TensorRng::seed(8);
        let (net, _switch) = deployable_lenet(4, &mut rng);
        let mut config = DeployConfig::paper(4, 4);
        config.reliability =
            ReliabilityConfig::faulty(FaultRates::stuck(0.03), 21, ProgramPolicy::Remap);
        let a = SpikingNetwork::compile(&net, &config, None).expect("compile");
        let b = SpikingNetwork::compile(&net, &config, None).expect("compile");
        assert_eq!(a.degradation(), b.degradation());
        let x = qsnc_tensor::init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng);
        assert_eq!(a.infer(&x, None), b.infer(&x, None));
    }

    #[test]
    fn crossbar_count_matches_eq1_sum() {
        use crate::mapping::{crossbars_for_layer, network_geometry};
        let mut rng = TensorRng::seed(6);
        let (net, _switch) = deployable_lenet(4, &mut rng);
        let config = DeployConfig::paper(4, 4);
        let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");
        let descs = net.synaptic_descriptors();
        let expected: usize = descs.iter().map(|d| crossbars_for_layer(d, 32)).sum();
        assert_eq!(snn.crossbar_count(), expected);
        let geo = network_geometry(&descs, 32);
        assert_eq!(geo.iter().map(|g| g.crossbars).sum::<usize>(), expected);
    }
}
