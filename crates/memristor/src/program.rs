//! Crossbar programming: the write cost model and the write-verify loop.
//!
//! The paper motivates few-bit weights partly through *programming* cost:
//! "although the memristor devices can afford … 6-bit (64 levels) …, the
//! heavy programming cost in speed and circuit design are not acceptable"
//! (Sec. 1). [`ProgramModel`] quantifies that trade-off: programming a
//! device to one of `2^N` levels takes a number of program-verify
//! iterations that grows with the precision demanded, and the whole array
//! writes row-by-row.
//!
//! [`program_device_verified`] is the *functional* counterpart: the actual
//! program → read-back → retry loop a reliability-aware deployment runs per
//! device. Each failed attempt backs the aim level off toward an adjacent
//! conductance level to compensate the observed signed error; devices that
//! never verify within [`program_retries`] attempts (override with the
//! `QSNC_PROGRAM_RETRIES` environment variable) are reported unrecoverable
//! so the caller can zero-mask them and record the cell in its observed
//! [`crate::FaultMap`].

use crate::device::{Device, DeviceConfig};
use crate::mapping::LayerGeometry;
use qsnc_tensor::TensorRng;

/// Cost constants for the write path.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProgramModel {
    /// Duration of one program-verify iteration, µs (memristor set/reset
    /// pulses plus a read-back).
    pub t_iteration_us: f32,
    /// Energy of one iteration, nJ.
    pub e_iteration_nj: f32,
    /// Base iterations needed for a 1-bit (binary) device.
    pub base_iterations: f32,
    /// Additional iterations per extra bit of target precision: hitting a
    /// narrower conductance window needs proportionally more verify steps.
    pub iterations_per_bit: f32,
    /// Rows programmed in parallel per write step (1 = strictly
    /// row-serial).
    pub parallel_rows: usize,
}

impl ProgramModel {
    /// Defaults representative of published memristor program-verify
    /// schemes (a few µs per pulse, iterations growing with precision).
    pub fn typical() -> Self {
        ProgramModel {
            t_iteration_us: 2.0,
            e_iteration_nj: 0.5,
            base_iterations: 2.0,
            iterations_per_bit: 3.0,
            parallel_rows: 1,
        }
    }

    /// Expected program-verify iterations per device for an `bits`-bit
    /// target.
    pub fn iterations(&self, bits: u32) -> f32 {
        self.base_iterations + self.iterations_per_bit * bits.saturating_sub(1) as f32
    }

    /// Programming cost of one `rows × cols` crossbar at `bits`-bit
    /// precision (differential pairs double the device count).
    pub fn crossbar_cost(&self, rows: usize, cols: usize, bits: u32) -> ProgramCost {
        let devices = 2 * rows * cols;
        let iters = self.iterations(bits);
        // Time: row-serial (cells within a row in parallel per polarity).
        let row_steps = rows.div_ceil(self.parallel_rows) as f32;
        let time_us = row_steps * 2.0 * iters * self.t_iteration_us;
        let energy_uj = devices as f32 * iters * self.e_iteration_nj * 1e-3;
        ProgramCost {
            devices,
            time_us,
            energy_uj,
        }
    }

    /// Total programming cost over a network geometry at `bits`-bit weight
    /// precision (crossbars of one layer program in parallel across
    /// arrays; layers program sequentially — conservative).
    pub fn network_cost(&self, geometry: &[LayerGeometry], t: usize, bits: u32) -> ProgramCost {
        let mut total = ProgramCost::default();
        for g in geometry {
            // Representative full tile for timing; device count exact.
            let full = self.crossbar_cost(t.min(g.rows), t.min(g.cols), bits);
            total.devices += 2 * g.rows * g.cols;
            total.time_us += full.time_us;
            total.energy_uj +=
                2.0 * (g.rows * g.cols) as f32 * self.iterations(bits) * self.e_iteration_nj
                    * 1e-3;
            let _ = full;
        }
        total
    }

    /// How the paper's HP-Labs remark plays out: the time ratio between
    /// programming a 6-bit device array and an `bits`-bit one of the same
    /// size.
    pub fn precision_penalty(&self, bits: u32, reference_bits: u32) -> f32 {
        self.iterations(reference_bits) / self.iterations(bits)
    }
}

impl Default for ProgramModel {
    fn default() -> Self {
        ProgramModel::typical()
    }
}

/// Programming cost summary.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ProgramCost {
    /// Physical devices written.
    pub devices: usize,
    /// Wall-clock programming time, µs.
    pub time_us: f32,
    /// Total write energy, µJ.
    pub energy_uj: f32,
}

/// Checks whether a device configuration can represent the given weight
/// codes at all (|code| within the level range) — the feasibility condition
/// `N ≥ log₂(max|D| / max|W|)` of Eq. 6 translated to devices.
pub fn codes_programmable(codes: &[i32], config: &DeviceConfig) -> bool {
    let max_level = config.levels() - 1;
    codes.iter().all(|c| c.unsigned_abs() <= max_level)
}

/// Default maximum write-verify retries per device (beyond the first
/// attempt), read once from the `QSNC_PROGRAM_RETRIES` environment variable
/// (default `3`). [`crate::ReliabilityConfig::max_retries`] overrides it
/// per deployment.
pub fn program_retries() -> u32 {
    std::env::var("QSNC_PROGRAM_RETRIES")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .unwrap_or(3)
}

/// Outcome of one device's write-verify loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifiedWrite {
    /// The conductance the device ended at, siemens.
    pub conductance: f32,
    /// Program-verify attempts spent (1 = verified first try).
    pub attempts: u32,
    /// Whether the final read-back matched the target level.
    pub verified: bool,
}

/// Programs one device to `target` with a program → read-back → retry loop.
///
/// Each attempt programs the device (subject to write variation when `rng`
/// is supplied) and reads the realized conductance back through
/// [`DeviceConfig::nearest_level`]. On a mismatch the next attempt *backs
/// off toward an adjacent level*: the aim level shifts one step against the
/// observed signed error, so a device that persistently programs high is
/// re-aimed low, recentring the realized conductance on the target window.
/// After `1 + max_retries` failed attempts the write is reported
/// unverified.
///
/// `pinned` models a stuck device: the realized conductance is forced to
/// the pinned value on every attempt, so the loop verifies only when the
/// target level happens to *be* the stuck level (e.g. a stuck-at-G_on
/// device faithfully stores the maximum code) and otherwise reports the
/// cell unrecoverable — exactly how write-verify discovers fault maps on
/// real arrays.
///
/// Ideal devices (no noise, no pin) verify on the first attempt with the
/// exact level conductance, which keeps fault-free deployments bit-identical
/// to unverified programming.
///
/// # Panics
///
/// Panics if `target` is out of range for `config`.
pub fn program_device_verified(
    config: &DeviceConfig,
    target: u32,
    pinned: Option<f32>,
    mut rng: Option<&mut TensorRng>,
    max_retries: u32,
) -> VerifiedWrite {
    let max_level = config.levels() - 1;
    assert!(target <= max_level, "level {target} out of range");
    let mut aim = target;
    let mut conductance = 0.0f32;
    for attempt in 1..=(1 + max_retries) {
        conductance = match pinned {
            Some(g) => g,
            None => Device::program(config, aim, rng.as_deref_mut()).conductance,
        };
        let read_back = config.nearest_level(conductance);
        if read_back == target {
            return VerifiedWrite { conductance, attempts: attempt, verified: true };
        }
        // Back off one level against the observed error for the next try.
        if read_back > target {
            aim = aim.saturating_sub(1);
        } else {
            aim = (aim + 1).min(max_level);
        }
    }
    VerifiedWrite { conductance, attempts: 1 + max_retries, verified: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsnc_nn::LayerDesc;

    #[test]
    fn iterations_grow_with_precision() {
        let m = ProgramModel::typical();
        assert!(m.iterations(6) > m.iterations(4));
        assert!(m.iterations(4) > m.iterations(1));
    }

    #[test]
    fn crossbar_cost_scales_with_size_and_bits() {
        let m = ProgramModel::typical();
        let small = m.crossbar_cost(16, 16, 4);
        let big = m.crossbar_cost(32, 32, 4);
        assert_eq!(small.devices, 2 * 256);
        assert_eq!(big.devices, 2 * 1024);
        assert!(big.time_us > small.time_us);
        assert!(big.energy_uj > small.energy_uj);

        let precise = m.crossbar_cost(32, 32, 6);
        assert!(precise.time_us > big.time_us, "6-bit writes must cost more");
    }

    #[test]
    fn six_bit_penalty_matches_paper_motivation() {
        // The paper rejects 6-bit devices on programming cost: the model
        // should show a clear penalty vs 3/4-bit.
        let m = ProgramModel::typical();
        let penalty = m.precision_penalty(4, 6);
        assert!(penalty > 1.3, "6-bit vs 4-bit penalty only {penalty}");
    }

    #[test]
    fn network_cost_accumulates_layers() {
        let m = ProgramModel::typical();
        let descs = [
            LayerDesc::Conv {
                in_channels: 1,
                out_channels: 6,
                kernel: 5,
                stride: 1,
                padding: 2,
            },
            LayerDesc::Linear {
                in_features: 400,
                out_features: 84,
            },
        ];
        let geo = crate::mapping::network_geometry(&descs, 32);
        let cost = m.network_cost(&geo, 32, 4);
        assert_eq!(cost.devices, 2 * (25 * 6 + 400 * 84));
        assert!(cost.time_us > 0.0);
        assert!(cost.energy_uj > 0.0);
    }

    #[test]
    fn programmability_check() {
        let cfg = DeviceConfig::paper(4);
        assert!(codes_programmable(&[0, 8, -8, 15, -15], &cfg));
        assert!(!codes_programmable(&[16], &cfg));
        assert!(!codes_programmable(&[-100], &cfg));
    }

    #[test]
    fn ideal_device_verifies_first_try_exactly() {
        let cfg = DeviceConfig::paper(4);
        for level in 0..cfg.levels() {
            let w = program_device_verified(&cfg, level, None, None, 3);
            assert!(w.verified);
            assert_eq!(w.attempts, 1);
            assert_eq!(w.conductance, cfg.level_conductance(level));
        }
    }

    #[test]
    fn noisy_device_retries_and_usually_recovers() {
        // Heavy write variation: some first attempts land on the wrong
        // level, and retries with backoff recover most of them.
        let cfg = DeviceConfig::paper(4).with_noise(0.25, 0.0);
        let mut rng = TensorRng::seed(3);
        let mut retried = 0u32;
        let mut verified = 0u32;
        let mut first_try = 0u32;
        let n = 500;
        for i in 0..n {
            let w = program_device_verified(&cfg, 1 + (i % 14), None, Some(&mut rng), 8);
            if w.attempts > 1 {
                retried += 1;
            } else {
                first_try += 1;
            }
            if w.verified {
                verified += 1;
                assert_eq!(cfg.nearest_level(w.conductance), 1 + (i % 14));
            }
        }
        assert!(retried > 0, "no retries at σ = 0.25?");
        // Retrying must recover devices beyond the first-try successes.
        assert!(
            verified > first_try,
            "retries recovered nothing: {verified} verified, {first_try} first-try"
        );
        assert!(
            verified > n * 3 / 4,
            "write-verify recovered only {verified}/{n}"
        );
    }

    #[test]
    fn stuck_device_never_verifies_except_at_its_level() {
        let cfg = DeviceConfig::paper(4);
        // Stuck at G_on (the top level): only the max code verifies.
        let pinned = cfg.g_max();
        let top = cfg.levels() - 1;
        let at_top = program_device_verified(&cfg, top, Some(pinned), None, 3);
        assert!(at_top.verified);
        let below = program_device_verified(&cfg, 3, Some(pinned), None, 3);
        assert!(!below.verified);
        assert_eq!(below.attempts, 4, "expected 1 + max_retries attempts");
        assert_eq!(below.conductance, pinned);
    }

    #[test]
    fn retry_budget_reads_env_default() {
        // Can't mutate the environment safely under parallel tests; just
        // check the default is sane.
        assert!(program_retries() >= 1);
    }
}
