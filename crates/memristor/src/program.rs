//! Crossbar programming (write) cost model.
//!
//! The paper motivates few-bit weights partly through *programming* cost:
//! "although the memristor devices can afford … 6-bit (64 levels) …, the
//! heavy programming cost in speed and circuit design are not acceptable"
//! (Sec. 1). This module quantifies that trade-off: programming a device to
//! one of `2^N` levels takes a number of program-verify iterations that
//! grows with the precision demanded, and the whole array writes
//! row-by-row.

use crate::device::DeviceConfig;
use crate::mapping::LayerGeometry;

/// Cost constants for the write path.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProgramModel {
    /// Duration of one program-verify iteration, µs (memristor set/reset
    /// pulses plus a read-back).
    pub t_iteration_us: f32,
    /// Energy of one iteration, nJ.
    pub e_iteration_nj: f32,
    /// Base iterations needed for a 1-bit (binary) device.
    pub base_iterations: f32,
    /// Additional iterations per extra bit of target precision: hitting a
    /// narrower conductance window needs proportionally more verify steps.
    pub iterations_per_bit: f32,
    /// Rows programmed in parallel per write step (1 = strictly
    /// row-serial).
    pub parallel_rows: usize,
}

impl ProgramModel {
    /// Defaults representative of published memristor program-verify
    /// schemes (a few µs per pulse, iterations growing with precision).
    pub fn typical() -> Self {
        ProgramModel {
            t_iteration_us: 2.0,
            e_iteration_nj: 0.5,
            base_iterations: 2.0,
            iterations_per_bit: 3.0,
            parallel_rows: 1,
        }
    }

    /// Expected program-verify iterations per device for an `bits`-bit
    /// target.
    pub fn iterations(&self, bits: u32) -> f32 {
        self.base_iterations + self.iterations_per_bit * bits.saturating_sub(1) as f32
    }

    /// Programming cost of one `rows × cols` crossbar at `bits`-bit
    /// precision (differential pairs double the device count).
    pub fn crossbar_cost(&self, rows: usize, cols: usize, bits: u32) -> ProgramCost {
        let devices = 2 * rows * cols;
        let iters = self.iterations(bits);
        // Time: row-serial (cells within a row in parallel per polarity).
        let row_steps = rows.div_ceil(self.parallel_rows) as f32;
        let time_us = row_steps * 2.0 * iters * self.t_iteration_us;
        let energy_uj = devices as f32 * iters * self.e_iteration_nj * 1e-3;
        ProgramCost {
            devices,
            time_us,
            energy_uj,
        }
    }

    /// Total programming cost over a network geometry at `bits`-bit weight
    /// precision (crossbars of one layer program in parallel across
    /// arrays; layers program sequentially — conservative).
    pub fn network_cost(&self, geometry: &[LayerGeometry], t: usize, bits: u32) -> ProgramCost {
        let mut total = ProgramCost::default();
        for g in geometry {
            // Representative full tile for timing; device count exact.
            let full = self.crossbar_cost(t.min(g.rows), t.min(g.cols), bits);
            total.devices += 2 * g.rows * g.cols;
            total.time_us += full.time_us;
            total.energy_uj +=
                2.0 * (g.rows * g.cols) as f32 * self.iterations(bits) * self.e_iteration_nj
                    * 1e-3;
            let _ = full;
        }
        total
    }

    /// How the paper's HP-Labs remark plays out: the time ratio between
    /// programming a 6-bit device array and an `bits`-bit one of the same
    /// size.
    pub fn precision_penalty(&self, bits: u32, reference_bits: u32) -> f32 {
        self.iterations(reference_bits) / self.iterations(bits)
    }
}

impl Default for ProgramModel {
    fn default() -> Self {
        ProgramModel::typical()
    }
}

/// Programming cost summary.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ProgramCost {
    /// Physical devices written.
    pub devices: usize,
    /// Wall-clock programming time, µs.
    pub time_us: f32,
    /// Total write energy, µJ.
    pub energy_uj: f32,
}

/// Checks whether a device configuration can represent the given weight
/// codes at all (|code| within the level range) — the feasibility condition
/// `N ≥ log₂(max|D| / max|W|)` of Eq. 6 translated to devices.
pub fn codes_programmable(codes: &[i32], config: &DeviceConfig) -> bool {
    let max_level = config.levels() - 1;
    codes.iter().all(|c| c.unsigned_abs() <= max_level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsnc_nn::LayerDesc;

    #[test]
    fn iterations_grow_with_precision() {
        let m = ProgramModel::typical();
        assert!(m.iterations(6) > m.iterations(4));
        assert!(m.iterations(4) > m.iterations(1));
    }

    #[test]
    fn crossbar_cost_scales_with_size_and_bits() {
        let m = ProgramModel::typical();
        let small = m.crossbar_cost(16, 16, 4);
        let big = m.crossbar_cost(32, 32, 4);
        assert_eq!(small.devices, 2 * 256);
        assert_eq!(big.devices, 2 * 1024);
        assert!(big.time_us > small.time_us);
        assert!(big.energy_uj > small.energy_uj);

        let precise = m.crossbar_cost(32, 32, 6);
        assert!(precise.time_us > big.time_us, "6-bit writes must cost more");
    }

    #[test]
    fn six_bit_penalty_matches_paper_motivation() {
        // The paper rejects 6-bit devices on programming cost: the model
        // should show a clear penalty vs 3/4-bit.
        let m = ProgramModel::typical();
        let penalty = m.precision_penalty(4, 6);
        assert!(penalty > 1.3, "6-bit vs 4-bit penalty only {penalty}");
    }

    #[test]
    fn network_cost_accumulates_layers() {
        let m = ProgramModel::typical();
        let descs = [
            LayerDesc::Conv {
                in_channels: 1,
                out_channels: 6,
                kernel: 5,
                stride: 1,
                padding: 2,
            },
            LayerDesc::Linear {
                in_features: 400,
                out_features: 84,
            },
        ];
        let geo = crate::mapping::network_geometry(&descs, 32);
        let cost = m.network_cost(&geo, 32, 4);
        assert_eq!(cost.devices, 2 * (25 * 6 + 400 * 84));
        assert!(cost.time_us > 0.0);
        assert!(cost.energy_uj > 0.0);
    }

    #[test]
    fn programmability_check() {
        let cfg = DeviceConfig::paper(4);
        assert!(codes_programmable(&[0, 8, -8, 15, -15], &cfg));
        assert!(!codes_programmable(&[16], &cfg));
        assert!(!codes_programmable(&[-100], &cfg));
    }
}
