//! `.qsnca` artifact round trips and hostile-input hardening.
//!
//! Two guarantees:
//!
//! 1. **Bit identity** — a compiled network written to an artifact and
//!    loaded back produces `infer_into` outputs bit-identical to the
//!    in-process engine, across the paper's whole `M`/`N` sweep
//!    (property-tested).
//! 2. **No panic, no over-allocation** — every structured corruption of a
//!    valid artifact (truncation at each section boundary, version flip,
//!    payload swap, checksum corruption, overlapping sections, hostile
//!    declared counts) yields a typed [`ArtifactError`], never a panic.

use proptest::prelude::*;
use qsnc_memristor::{
    artifact, decode_artifact, encode_artifact, ArtifactError, DeployConfig, Provenance,
    SpikingNetwork,
};
use qsnc_nn::Sequential;
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    WeightQuantMethod,
};
use qsnc_tensor::{Tensor, TensorRng};

/// Small random LeNet quantized to `M`-bit signals / `N`-bit weights,
/// paired with the matching deployment config.
fn deployable_lenet(m: u32, n: u32, rng: &mut TensorRng) -> (Sequential, DeployConfig) {
    let mut net = qsnc_nn::models::lenet(0.25, 10, rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(m),
        0.0,
        ActivationQuantizer::new(m),
    );
    switch.set_enabled(true);
    quantize_network_weights(&mut net, n, WeightQuantMethod::Clustered);
    (net, DeployConfig::paper(n, m))
}

fn provenance() -> Provenance {
    Provenance {
        checkpoint_digest: 0x1234_5678_9abc_def0,
        weight_bits: 4,
        activation_bits: 4,
        model: "lenet".to_string(),
    }
}

fn compiled_artifact(m: u32, n: u32, seed: u64) -> (SpikingNetwork, Vec<u8>) {
    let mut rng = TensorRng::seed(seed);
    let (net, config) = deployable_lenet(m, n, &mut rng);
    let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");
    assert!(snn.has_fast_path());
    let bytes = encode_artifact(&snn, &[1, 28, 28], &provenance()).expect("encode");
    (snn, bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Write → load → infer must match the in-process engine to the bit.
    #[test]
    fn loaded_artifact_is_bit_identical(
        m in 2u32..=8, n in 2u32..=7, seed in 0u64..10_000,
    ) {
        let (snn, bytes) = compiled_artifact(m, n, seed);
        let loaded = decode_artifact(&bytes).expect("decode");
        prop_assert!(loaded.network.is_artifact_only());
        prop_assert!(loaded.network.has_fast_path());
        prop_assert_eq!(&loaded.input_dims, &vec![1, 28, 28]);
        prop_assert_eq!(&loaded.provenance, &provenance());
        for input_seed in 0..3u64 {
            let mut drng = TensorRng::seed(seed.wrapping_mul(31).wrapping_add(input_seed));
            let x = qsnc_tensor::init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut drng);
            let mut direct = Vec::new();
            let mut via_artifact = Vec::new();
            prop_assert!(snn.infer_into(&x, &mut direct));
            prop_assert!(loaded.network.infer_into(&x, &mut via_artifact));
            prop_assert_eq!(direct.len(), via_artifact.len());
            for (i, (&a, &b)) in direct.iter().zip(via_artifact.iter()).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "logit {}: direct {} vs artifact {}", i, a, b
                );
            }
        }
    }

    /// Saturation extremes survive the round trip too.
    #[test]
    fn loaded_artifact_bit_identical_at_extremes(
        m in 2u32..=6, n in 2u32..=6, seed in 0u64..1_000,
    ) {
        let (snn, bytes) = compiled_artifact(m, n, seed);
        let loaded = decode_artifact(&bytes).expect("decode");
        for x in [
            Tensor::from_vec(vec![1.0f32; 28 * 28], [1, 1, 28, 28]),
            Tensor::from_vec(vec![0.0f32; 28 * 28], [1, 1, 28, 28]),
        ] {
            let mut direct = Vec::new();
            let mut via_artifact = Vec::new();
            prop_assert!(snn.infer_into(&x, &mut direct));
            prop_assert!(loaded.network.infer_into(&x, &mut via_artifact));
            for (&a, &b) in direct.iter().zip(via_artifact.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

/// Second-generation export is refused: an artifact-loaded network has no
/// substrate metadata left to freeze.
#[test]
fn artifact_only_network_cannot_be_re_exported() {
    let (_, bytes) = compiled_artifact(4, 4, 7);
    let loaded = decode_artifact(&bytes).expect("decode");
    match encode_artifact(&loaded.network, &[1, 28, 28], &provenance()) {
        Err(ArtifactError::NotExportable(_)) => {}
        other => panic!("expected NotExportable, got {other:?}"),
    }
}

/// A network compiled without a fast path cannot be exported at all.
#[test]
fn uncompiled_network_is_not_exportable() {
    let mut rng = TensorRng::seed(3);
    let (net, mut config) = deployable_lenet(4, 4, &mut rng);
    config.device = config.device.with_noise(0.1, 0.0);
    let snn = SpikingNetwork::compile(&net, &config, Some(&mut rng)).expect("compile");
    assert!(!snn.has_fast_path());
    match encode_artifact(&snn, &[1, 28, 28], &provenance()) {
        Err(ArtifactError::NotCompiled) => {}
        other => panic!("expected NotCompiled, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Corruption suite
// ---------------------------------------------------------------------------

/// Rewrites the trailer so structural mutations are exercised *past* the
/// checksum gate.
fn fix_checksum(bytes: &mut [u8]) {
    let body = bytes.len() - 8;
    let sum = qsnc_nn::checkpoint_digest(&bytes[..body]);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
}

/// Section table geometry: (id, offset, len) triples plus the table end.
fn section_table(bytes: &[u8]) -> (Vec<(u32, usize, usize)>, usize) {
    let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let mut entries = Vec::new();
    for i in 0..count {
        let base = 12 + i * 20;
        let id = u32::from_le_bytes(bytes[base..base + 4].try_into().unwrap());
        let off = u64::from_le_bytes(bytes[base + 4..base + 12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[base + 12..base + 20].try_into().unwrap()) as usize;
        entries.push((id, off, len));
    }
    (entries, 12 + count * 20)
}

/// Every corruption must return `Err` — reaching this function at all
/// already proves no panic; the match documents which errors are typed.
fn expect_error(case: &str, bytes: &[u8]) {
    match decode_artifact(bytes) {
        Ok(_) => panic!("{case}: corrupt artifact decoded successfully"),
        Err(
            ArtifactError::BadMagic
            | ArtifactError::BadVersion(_)
            | ArtifactError::Truncated { .. }
            | ArtifactError::Malformed(_)
            | ArtifactError::ChecksumMismatch
            | ArtifactError::SectionOverlap
            | ArtifactError::MissingSection(_),
        ) => {}
        Err(other) => panic!("{case}: unexpected error kind {other:?}"),
    }
}

#[test]
fn truncation_at_every_section_boundary_is_typed() {
    let (_, bytes) = compiled_artifact(3, 3, 11);
    let (entries, table_end) = section_table(&bytes);
    // Boundaries: mid-header, end of header, end of table, each section's
    // start/end, and just before the trailer.
    let mut cuts = vec![0, 3, 4, 11, 12, table_end, bytes.len() - 8, bytes.len() - 1];
    for &(_, off, len) in &entries {
        cuts.push(off);
        cuts.push(off + len);
    }
    for cut in cuts {
        expect_error(&format!("truncate at {cut}"), &bytes[..cut]);
    }
}

#[test]
fn version_flip_is_typed() {
    let (_, mut bytes) = compiled_artifact(3, 3, 11);
    bytes[4] = 99;
    expect_error("version byte flipped (stale checksum)", &bytes);
    fix_checksum(&mut bytes);
    match decode_artifact(&bytes) {
        Err(ArtifactError::BadVersion(99)) => {}
        other => panic!("expected BadVersion(99), got {other:?}"),
    }
}

#[test]
fn checksum_corruption_is_typed() {
    let (_, mut bytes) = compiled_artifact(3, 3, 11);
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    match decode_artifact(&bytes) {
        Err(ArtifactError::ChecksumMismatch) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    // Flipping a payload byte without fixing the trailer is also caught by
    // the checksum — it is verified before any section parse.
    let (_, mut bytes) = compiled_artifact(3, 3, 11);
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    match decode_artifact(&bytes) {
        Err(ArtifactError::ChecksumMismatch) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn swapped_section_payloads_are_typed() {
    let (_, mut bytes) = compiled_artifact(3, 3, 11);
    let (entries, _) = section_table(&bytes);
    // Swap the MODEL and TILES ids in the table so each id now points at
    // the other section's payload; the payload parses must reject it.
    let (a, b) = (0, 1);
    let id_a = 12 + a * 20;
    let id_b = 12 + b * 20;
    let tmp: [u8; 4] = bytes[id_a..id_a + 4].try_into().unwrap();
    let (src, _, _) = entries[b];
    bytes[id_a..id_a + 4].copy_from_slice(&src.to_le_bytes());
    bytes[id_b..id_b + 4].copy_from_slice(&tmp);
    fix_checksum(&mut bytes);
    expect_error("section ids swapped", &bytes);
}

#[test]
fn overlapping_sections_are_typed() {
    let (_, mut bytes) = compiled_artifact(3, 3, 11);
    let (entries, _) = section_table(&bytes);
    // Point section 1's offset into section 0's range.
    let (_, off0, len0) = entries[0];
    assert!(len0 > 4);
    let off_field = 12 + 20 + 4;
    bytes[off_field..off_field + 8].copy_from_slice(&((off0 + 2) as u64).to_le_bytes());
    fix_checksum(&mut bytes);
    match decode_artifact(&bytes) {
        Err(ArtifactError::SectionOverlap | ArtifactError::Truncated { .. }) => {}
        other => panic!("expected SectionOverlap, got {other:?}"),
    }
}

#[test]
fn missing_section_is_typed() {
    let (_, mut bytes) = compiled_artifact(3, 3, 11);
    // Relabel the PROVENANCE entry as an unknown id: the loader must skip
    // it (forward compat) and then report the required section missing.
    let id_field = 12 + 2 * 20;
    bytes[id_field..id_field + 4].copy_from_slice(&0xdead_beefu32.to_le_bytes());
    fix_checksum(&mut bytes);
    match decode_artifact(&bytes) {
        Err(ArtifactError::MissingSection(id)) => assert_eq!(id, artifact::SECTION_PROVENANCE),
        other => panic!("expected MissingSection, got {other:?}"),
    }
}

#[test]
fn hostile_declared_counts_never_allocate() {
    let (_, bytes) = compiled_artifact(3, 3, 11);
    let (entries, _) = section_table(&bytes);
    let (_, model_off, _) = entries[0];
    // The MODEL section's stage count lives after the input quantizer
    // (8 bytes) and the input dims (4 + 3·4 bytes). Declare u32::MAX
    // stages: the loader must fail on missing bytes, not try to allocate.
    let mut evil = bytes.clone();
    let stage_count_off = model_off + 8 + 4 + 3 * 4;
    evil[stage_count_off..stage_count_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    fix_checksum(&mut evil);
    expect_error("u32::MAX stage count", &evil);
    // Declare an absurd input rank.
    let mut evil = bytes.clone();
    let rank_off = model_off + 8;
    evil[rank_off..rank_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    fix_checksum(&mut evil);
    expect_error("u32::MAX input rank", &evil);
    // Section count itself hostile (table would dwarf the file).
    let mut evil = bytes.clone();
    evil[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    fix_checksum(&mut evil);
    expect_error("u32::MAX section count", &evil);
}

/// Randomized fuzz: single byte flips anywhere in the file (checksum
/// repaired so the mutation is actually parsed) must never panic.
#[test]
fn single_byte_flips_never_panic() {
    let (_, bytes) = compiled_artifact(2, 2, 5);
    let body = bytes.len() - 8;
    // Deterministic stride keeps runtime bounded while still visiting the
    // header, table, and every section.
    for pos in (0..body).step_by(7) {
        for bit in [0x01u8, 0x80u8] {
            let mut evil = bytes.clone();
            evil[pos] ^= bit;
            fix_checksum(&mut evil);
            let _ = decode_artifact(&evil);
        }
    }
}
