//! End-to-end SIMD × thread-count matrix for the integer fast path.
//!
//! A deployed LeNet's logits must be bit-identical no matter which SIMD
//! level the integer engine's kernels dispatch to and no matter how many
//! pool threads participate: forcing `Scalar`, `Sse2`, or `Avx2` (clamped
//! to what the machine supports) and sweeping 1 vs 4 threads must all
//! reproduce the scalar single-threaded logits exactly — the whole-network
//! analogue of the per-kernel proptests in `qsnc-tensor`.

use qsnc_memristor::{DeployConfig, SpikingNetwork};
use qsnc_nn::Sequential;
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    WeightQuantMethod,
};
use qsnc_tensor::{parallel, simd, SimdLevel, TensorRng};

/// Small random LeNet quantized to `M`-bit signals / `N`-bit weights.
fn deployable_lenet(m: u32, n: u32, rng: &mut TensorRng) -> (Sequential, DeployConfig) {
    let mut net = qsnc_nn::models::lenet(0.25, 10, rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(m),
        0.0,
        ActivationQuantizer::new(m),
    );
    switch.set_enabled(true);
    quantize_network_weights(&mut net, n, WeightQuantMethod::Clustered);
    (net, DeployConfig::paper(n, m))
}

/// Every SIMD level this machine can execute, scalar included.
fn all_levels() -> Vec<SimdLevel> {
    let top = simd::detected_simd();
    [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
        .into_iter()
        .filter(|&l| l <= top)
        .collect()
}

#[test]
fn lenet_inference_bit_identical_across_simd_levels_and_threads() {
    let mut rng = TensorRng::seed(42);
    let (net, config) = deployable_lenet(4, 4, &mut rng);
    let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");
    assert!(snn.has_fast_path(), "4-bit LeNet must take the integer engine");

    for input_seed in 0..4u64 {
        let mut drng = TensorRng::seed(900 + input_seed);
        let x = qsnc_tensor::init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut drng);

        let oracle = simd::with_simd_level(SimdLevel::Scalar, || {
            parallel::with_num_threads(1, || snn.infer(&x, None))
        });

        for level in all_levels() {
            for threads in [1usize, 4] {
                let got = simd::with_simd_level(level, || {
                    parallel::with_num_threads(threads, || snn.infer(&x, None))
                });
                assert_eq!(got.dims(), oracle.dims());
                for (i, (&r, &f)) in oracle.iter().zip(got.iter()).enumerate() {
                    assert_eq!(
                        r.to_bits(),
                        f.to_bits(),
                        "logit {i} diverged at {level:?} x {threads} threads: {r} vs {f}"
                    );
                }
            }
        }
    }
}

#[test]
fn batched_inference_bit_identical_across_simd_levels_and_threads() {
    let mut rng = TensorRng::seed(11);
    let (net, config) = deployable_lenet(4, 4, &mut rng);
    let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");
    assert!(snn.has_fast_path());

    // A batch drives the engine's M = B igemm path (the one the serving
    // layer uses), which takes the SIMD dot kernels on its own route.
    let mut drng = TensorRng::seed(5005);
    let batch = qsnc_tensor::init::uniform([6, 1, 28, 28], 0.0, 1.0, &mut drng);

    let mut oracle = Vec::new();
    let ran = simd::with_simd_level(SimdLevel::Scalar, || {
        parallel::with_num_threads(1, || snn.infer_batch_into(&batch, &mut oracle))
    });
    assert!(ran, "fast path must run the batch");

    for level in all_levels() {
        for threads in [1usize, 4] {
            let mut got = Vec::new();
            let ran = simd::with_simd_level(level, || {
                parallel::with_num_threads(threads, || snn.infer_batch_into(&batch, &mut got))
            });
            assert!(ran);
            assert_eq!(got.len(), oracle.len());
            for (i, (&r, &f)) in oracle.iter().zip(got.iter()).enumerate() {
                assert_eq!(
                    r.to_bits(),
                    f.to_bits(),
                    "batched logit {i} diverged at {level:?} x {threads} threads"
                );
            }
        }
    }
}

#[test]
fn infer_into_bit_identical_across_simd_levels() {
    let mut rng = TensorRng::seed(23);
    let (net, config) = deployable_lenet(3, 5, &mut rng);
    let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");
    assert!(snn.has_fast_path());

    let mut drng = TensorRng::seed(77);
    let x = qsnc_tensor::init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut drng);

    let mut oracle = Vec::new();
    let ran = simd::with_simd_level(SimdLevel::Scalar, || {
        parallel::with_num_threads(1, || snn.infer_into(&x, &mut oracle))
    });
    assert!(ran);

    for level in all_levels() {
        let mut buf = Vec::new();
        let ran = simd::with_simd_level(level, || snn.infer_into(&x, &mut buf));
        assert!(ran);
        assert_eq!(buf.len(), oracle.len());
        for (&r, &f) in oracle.iter().zip(buf.iter()) {
            assert_eq!(r.to_bits(), f.to_bits(), "infer_into diverged at {level:?}");
        }
    }
}
