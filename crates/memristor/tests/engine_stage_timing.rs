//! Per-stage timing attribution inside the integer engine.
//!
//! With telemetry recording, one batched fast-path inference must populate
//! the `snc.engine.stage.{conv,fc,pool,ifc,analog}.us` quantile sketches
//! with per-stage wall-clock, one observation per stage execution — this
//! is what lets a live `/metrics` scrape attribute serve-side infer time
//! to conv/FC/IFC work. With telemetry off, none of them may appear.

use qsnc_memristor::{DeployConfig, SpikingNetwork};
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    WeightQuantMethod,
};
use qsnc_tensor::TensorRng;

fn compiled_lenet() -> SpikingNetwork {
    let mut rng = TensorRng::seed(7);
    let mut net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(4),
        0.0,
        ActivationQuantizer::new(4),
    );
    switch.set_enabled(true);
    quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
    let snn = SpikingNetwork::compile(&net, &DeployConfig::paper(4, 4), None).expect("compile");
    assert!(snn.has_fast_path(), "4-bit LeNet must take the integer engine");
    snn
}

#[test]
fn fast_path_records_per_stage_sketches() {
    let snn = compiled_lenet();
    let mut rng = TensorRng::seed(11);
    let xs = qsnc_tensor::init::uniform([3, 1, 28, 28], 0.0, 1.0, &mut rng);

    let _guard = qsnc_telemetry::testing::lock();
    qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Record);
    qsnc_telemetry::reset();
    let mut out = Vec::new();
    const RUNS: u64 = 4;
    for _ in 0..RUNS {
        snn.infer_batch_into(&xs, &mut out);
    }
    let snap = qsnc_telemetry::snapshot();
    qsnc_telemetry::reset();
    qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Off);

    // LeNet on the fast path: 2 conv stages, 2 pools, 2 FC stages (the
    // final one reads out analog), 3 IFC counter conversions per pass.
    for (name, per_run) in [
        ("snc.engine.stage.conv.us", 2),
        ("snc.engine.stage.pool.us", 2),
        ("snc.engine.stage.fc.us", 2),
        ("snc.engine.stage.ifc.us", 3),
        ("snc.engine.stage.analog.us", 1),
    ] {
        let sketch = snap
            .quantile_sketch(name)
            .unwrap_or_else(|| panic!("missing sketch {name}"));
        assert_eq!(sketch.count, RUNS * per_run, "{name} observation count");
        assert!(sketch.min >= 0.0 && sketch.max >= sketch.min, "{name} range");
        assert!(sketch.quantile(0.5) <= sketch.quantile(0.99), "{name} quantiles");
    }
}

#[test]
fn disabled_telemetry_records_no_stage_sketches() {
    let snn = compiled_lenet();
    let mut rng = TensorRng::seed(13);
    let xs = qsnc_tensor::init::uniform([2, 1, 28, 28], 0.0, 1.0, &mut rng);

    let _guard = qsnc_telemetry::testing::lock();
    qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Off);
    qsnc_telemetry::reset();
    let mut out = Vec::new();
    snn.infer_batch_into(&xs, &mut out);
    let snap = qsnc_telemetry::snapshot();
    assert!(snap.quantiles.is_empty(), "{:?}", snap.quantiles);
}
