//! Bit-identity of the integer fast-path engine.
//!
//! The float pipeline is the correctness oracle: for every network the
//! engine compiles, noise-free [`SpikingNetwork::infer`] (which routes
//! through the integer engine) must produce logits **bit-identical** to
//! [`SpikingNetwork::infer_reference`] — the exact-arithmetic float path
//! with ideal synapses. The properties sweep activation bits `M` and
//! weight bits `N` over the paper's whole 2..=8 range, and include inputs
//! pinned to the coding extremes so the IFC counters hit their saturation
//! boundary (`max_count = 2^M − 1`, accumulators near `±2^(M−1)` levels).

use proptest::prelude::*;
use qsnc_memristor::{DeployConfig, SpikingNetwork};
use qsnc_nn::Sequential;
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    WeightQuantMethod,
};
use qsnc_tensor::{Tensor, TensorRng};

/// Small random LeNet quantized to `M`-bit signals / `N`-bit weights,
/// paired with the matching deployment config.
fn deployable_lenet(m: u32, n: u32, rng: &mut TensorRng) -> (Sequential, DeployConfig) {
    let mut net = qsnc_nn::models::lenet(0.25, 10, rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(m),
        0.0,
        ActivationQuantizer::new(m),
    );
    switch.set_enabled(true);
    quantize_network_weights(&mut net, n, WeightQuantMethod::Clustered);
    (net, DeployConfig::paper(n, m))
}

/// Asserts the fast path and the exact float oracle agree to the bit on
/// `x`, through all three public entry points.
fn assert_bit_identical(snn: &SpikingNetwork, x: &Tensor) -> Result<(), TestCaseError> {
    let reference = snn.infer_reference(x);
    let fast = snn.infer(x, None);
    prop_assert_eq!(reference.dims(), fast.dims());
    for (i, (&r, &f)) in reference.iter().zip(fast.iter()).enumerate() {
        prop_assert_eq!(
            r.to_bits(),
            f.to_bits(),
            "logit {}: reference {} vs fast {}",
            i,
            r,
            f
        );
    }
    let mut buf = Vec::new();
    let ran_fast = snn.infer_into(x, &mut buf);
    prop_assert_eq!(ran_fast, snn.has_fast_path());
    prop_assert_eq!(buf.len(), reference.as_slice().len());
    for (&r, &f) in reference.iter().zip(buf.iter()) {
        prop_assert_eq!(r.to_bits(), f.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn engine_bit_identical_on_random_nets(
        m in 2u32..=8, n in 2u32..=8, seed in 0u64..10_000,
    ) {
        let mut rng = TensorRng::seed(seed);
        let (net, config) = deployable_lenet(m, n, &mut rng);
        let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");
        // Weight clustering at N = 8 may emit the inclusive bound code
        // ±2^7 = ±128, which does not fit the packed i8 layout; the engine
        // then legitimately declines and `infer` stays on the float path.
        if n <= 7 {
            prop_assert!(snn.has_fast_path(), "engine must compile for N = {} <= 7", n);
        }
        for input_seed in 0..3u64 {
            let mut drng = TensorRng::seed(seed.wrapping_mul(31).wrapping_add(input_seed));
            let x = qsnc_tensor::init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut drng);
            if snn.has_fast_path() {
                assert_bit_identical(&snn, &x)?;
            } else {
                // Declined nets fall back to the conductance simulation;
                // `infer_into` must report that and agree with `infer`.
                let mut buf = Vec::new();
                prop_assert!(!snn.infer_into(&x, &mut buf));
                let slow = snn.infer(&x, None);
                prop_assert_eq!(buf.as_slice(), slow.as_slice());
            }
        }
    }

    #[test]
    fn engine_bit_identical_at_ifc_saturation_boundaries(
        m in 2u32..=8, n in 2u32..=7, seed in 0u64..10_000,
    ) {
        let mut rng = TensorRng::seed(seed);
        let (net, config) = deployable_lenet(m, n, &mut rng);
        let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");
        prop_assert!(snn.has_fast_path());
        // Every pixel at the top of the coding range: each input neuron
        // emits the full 2^M − 1 spikes, driving accumulators far past the
        // counters' saturation boundary in both directions (the clustered
        // weights are signed), so every saturating clamp must agree.
        let full = Tensor::from_vec(vec![1.0f32; 28 * 28], [1, 1, 28, 28]);
        assert_bit_identical(&snn, &full)?;
        // All-zero input: no spikes at all, only biases propagate.
        let zero = Tensor::from_vec(vec![0.0f32; 28 * 28], [1, 1, 28, 28]);
        assert_bit_identical(&snn, &zero)?;
        // Half-LSB input: sits exactly on the quantizer's rounding edge.
        let edge = 0.5 / config.input_quantizer.scale();
        let half = Tensor::from_vec(vec![edge; 28 * 28], [1, 1, 28, 28]);
        assert_bit_identical(&snn, &half)?;
    }
}

/// The conductance-simulation float path is only approximately equal to
/// the oracle, but its rounded spike counts coincide on these nets — so
/// the user-facing guarantee holds end to end: enabling the fast path
/// never changes a classification.
#[test]
fn fast_path_never_changes_predictions() {
    let mut rng = TensorRng::seed(77);
    let (net, config) = deployable_lenet(4, 4, &mut rng);
    let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");
    assert!(snn.has_fast_path());
    for seed in 0..20u64 {
        let mut drng = TensorRng::seed(1000 + seed);
        let x = qsnc_tensor::init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut drng);
        let fast = snn.infer(&x, None);
        let reference = snn.infer_reference(&x);
        assert_eq!(fast.argmax(), reference.argmax());
    }
}
