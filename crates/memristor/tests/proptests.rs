//! Property-based tests for the memristor substrate.

use proptest::prelude::*;
use qsnc_memristor::{
    crossbars_for_layer, Crossbar, DeviceConfig, Ifc, SpikeEncoder, SpikeTrain, TiledMatrix,
};
use qsnc_nn::LayerDesc;
use qsnc_quant::ActivationQuantizer;
use qsnc_tensor::TensorRng;

/// Brute-force tiling count: enumerate tiles explicitly.
fn brute_force_tiles(rows: usize, cols: usize, t: usize) -> usize {
    let mut count = 0;
    let mut r = 0;
    while r < rows {
        let mut c = 0;
        while c < cols {
            count += 1;
            c += t;
        }
        r += t;
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn eq1_matches_brute_force_tiling(
        j in 1usize..200, j_prev in 1usize..64, s in 1usize..8, t in 1usize..64,
    ) {
        let desc = LayerDesc::Conv {
            in_channels: j_prev,
            out_channels: j,
            kernel: s,
            stride: 1,
            padding: 0,
        };
        let rows = s * s * j_prev;
        prop_assert_eq!(crossbars_for_layer(&desc, t), brute_force_tiles(rows, j, t));
    }

    #[test]
    fn eq1_monotone_in_crossbar_size(
        in_f in 1usize..500, out_f in 1usize..500, t in 2usize..128,
    ) {
        let desc = LayerDesc::Linear { in_features: in_f, out_features: out_f };
        // A larger crossbar never needs more arrays.
        prop_assert!(crossbars_for_layer(&desc, t) >= crossbars_for_layer(&desc, t + 1));
    }

    #[test]
    fn ideal_crossbar_exact(
        rows in 1usize..20, cols in 1usize..20, seed in 0u64..500,
    ) {
        let mut rng = TensorRng::seed(seed);
        let codes: Vec<i32> = (0..rows * cols).map(|_| rng.index(17) as i32 - 8).collect();
        let xb = Crossbar::from_codes(&codes, rows, cols, DeviceConfig::paper(4), None);
        let x: Vec<f32> = (0..rows).map(|_| rng.index(16) as f32).collect();
        let y = xb.matvec_code_units(&x, None);
        for j in 0..cols {
            let expected: f32 = (0..rows).map(|i| codes[i * cols + j] as f32 * x[i]).sum();
            prop_assert!((y[j] - expected).abs() < 1e-2 * (1.0 + expected.abs()),
                "col {}: {} vs {}", j, y[j], expected);
        }
    }

    #[test]
    fn tiled_equals_untiled(
        in_dim in 1usize..80, out_dim in 1usize..40, t in 1usize..48, seed in 0u64..200,
    ) {
        let mut rng = TensorRng::seed(seed);
        let codes: Vec<i32> = (0..in_dim * out_dim).map(|_| rng.index(17) as i32 - 8).collect();
        let cfg = DeviceConfig::paper(4);
        let tiled = TiledMatrix::from_codes(&codes, in_dim, out_dim, t, cfg, None);
        let whole = TiledMatrix::from_codes(&codes, in_dim, out_dim, in_dim.max(out_dim), cfg, None);
        let x: Vec<f32> = (0..in_dim).map(|_| rng.index(16) as f32).collect();
        let a = tiled.matvec_code_units(&x, None);
        let b = whole.matvec_code_units(&x, None);
        for (va, vb) in a.iter().zip(b.iter()) {
            prop_assert!((va - vb).abs() < 1e-2 * (1.0 + va.abs()));
        }
    }

    #[test]
    fn ifc_simulation_equals_closed_form(
        threshold in 0.1f32..5.0,
        total in 0.0f32..500.0,
        slots in 1usize..64,
        max_count in 1u32..512,
    ) {
        let ifc = Ifc::new(threshold, max_count);
        let per_slot = total / slots as f32;
        let charges = vec![per_slot; slots];
        // Allow one spike of slack at exact threshold boundaries where
        // float accumulation order matters.
        let sim = ifc.simulate(&charges) as i64;
        let closed = ifc.convert(total) as i64;
        prop_assert!((sim - closed).abs() <= 1, "sim {} vs closed {}", sim, closed);
    }

    #[test]
    fn ifc_never_exceeds_counter(charge in -100.0f32..10_000.0, max_count in 1u32..256) {
        let ifc = Ifc::new(1.0, max_count);
        prop_assert!(ifc.convert(charge) <= max_count);
    }

    #[test]
    fn spike_round_trip_within_half_lsb(
        bits in 1u32..9, scale in 0.5f32..10.0, value in 0.0f32..20.0,
    ) {
        let enc = SpikeEncoder::new(ActivationQuantizer::with_scale(bits, scale));
        let upper = enc.quantizer().max_level() as f32 / scale;
        prop_assume!(value <= upper);
        let back = enc.decode(enc.encode(value));
        prop_assert!((back - value).abs() <= 0.5 / scale + 1e-5);
    }

    #[test]
    fn spike_train_slot_count_matches(count in 0u32..64, window_log in 1u32..8) {
        let window = 1u32 << window_log;
        let train = SpikeTrain::new(count, window);
        let slots = train.slots();
        prop_assert_eq!(slots.len(), window as usize);
        prop_assert_eq!(
            slots.iter().filter(|&&s| s).count(),
            count.min(window) as usize
        );
    }

    #[test]
    fn device_levels_linear(bits in 1u32..8, l1 in 0u32..64, l2 in 0u32..64) {
        let cfg = DeviceConfig::paper(bits.clamp(1, 8));
        let max = cfg.levels() - 1;
        prop_assume!(l1 < max && l2 < max);
        let d1 = cfg.level_conductance(l1 + 1) - cfg.level_conductance(l1);
        let d2 = cfg.level_conductance(l2 + 1) - cfg.level_conductance(l2);
        prop_assert!((d1 - d2).abs() < 1e-10);
    }
}
