//! End-to-end experiment flows: training, quantization-aware training,
//! direct post-training quantization, and evaluation.

use crate::config::{QuantConfig, TrainSettings};
use qsnc_data::Dataset;
use qsnc_nn::optim::Sgd;
use qsnc_nn::train::{evaluate, Batch};
use qsnc_nn::{
    EpochStats, Layer, Mode, ModelKind, Sequential, StderrObserver, TelemetryObserver,
    TrainConfig, TrainObserver, Trainer,
};
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    DynamicFixedPoint, QuantSwitch, SignalStage, WeightQuantMethod,
};
use qsnc_tensor::{Tensor, TensorRng};

/// A trained network plus its quantization handles.
pub struct QuantizedModel {
    /// The network, with signal stages spliced in.
    pub net: Sequential,
    /// Switch toggling signal quantization across all stages.
    pub switch: QuantSwitch,
    /// Test accuracy with quantization off (fp32 signals).
    pub float_accuracy: f32,
    /// Test accuracy with quantization on (after any weight quantization
    /// requested by the config).
    pub quantized_accuracy: f32,
}

impl std::fmt::Debug for QuantizedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantizedModel")
            .field("float_accuracy", &self.float_accuracy)
            .field("quantized_accuracy", &self.quantized_accuracy)
            .finish()
    }
}

/// Trains a plain fp32 model of the given kind; returns the network and
/// its test accuracy (the "Ideal Acc." of Table 1).
pub fn train_float(
    kind: ModelKind,
    width: f32,
    settings: &TrainSettings,
    train_data: &Dataset,
    test_data: &Dataset,
    seed: u64,
) -> (Sequential, f32) {
    let mut rng = TensorRng::seed(seed);
    let mut net = qsnc_nn::models::build_model(kind, width, train_data.classes(), &mut rng);
    fit(&mut net, settings, train_data, test_data, &mut rng);
    let acc = evaluate(&mut net, &test_data.batches(settings.batch_size, None));
    (net, acc)
}

/// The flow-level observer: forwards to [`StderrObserver`] when verbose,
/// and when telemetry is recording also captures the training series plus
/// the per-epoch activation-saturation rate of the QAT signal stages
/// (`quant.qat.saturation_rate` — the quantity Eq. 3 drives down).
struct FlowObserver {
    stderr: Option<StderrObserver>,
}

impl TrainObserver for FlowObserver {
    fn wants_test_accuracy(&self) -> bool {
        self.stderr.is_some()
    }

    fn on_epoch(&mut self, net: &mut Sequential, stats: &EpochStats, lr: f32, test_acc: Option<f32>) {
        if let Some(stderr) = self.stderr.as_mut() {
            stderr.on_epoch(net, stats, lr, test_acc);
        }
        if qsnc_telemetry::enabled() {
            TelemetryObserver.on_epoch(net, stats, lr, test_acc);
            if let Some(rate) = qsnc_quant::network_saturation_rate(net) {
                qsnc_telemetry::record_series(
                    "quant.qat.saturation_rate",
                    stats.epoch as u64,
                    rate as f64,
                );
            }
        }
        // Saturation stats are per-epoch: clear them whether or not they
        // were recorded, so a later epoch never aggregates an earlier one.
        qsnc_quant::reset_network_saturation(net);
    }
}

fn fit(
    net: &mut Sequential,
    settings: &TrainSettings,
    train_data: &Dataset,
    test_data: &Dataset,
    rng: &mut TensorRng,
) {
    let mut opt = Sgd::with_momentum(settings.lr, settings.momentum, settings.weight_decay);
    let trainer = Trainer::new(TrainConfig {
        epochs: settings.epochs,
        lr_decay: settings.lr_decay,
        lr_decay_every: settings.lr_decay_every,
        verbose: settings.verbose,
    });
    let train_batches = train_data.batches(settings.batch_size, Some(rng));
    let test_batches = test_data.batches(settings.batch_size, None);
    let mut obs = FlowObserver {
        stderr: settings.verbose.then_some(StderrObserver),
    };
    let observer: Option<&mut dyn TrainObserver> =
        if settings.verbose || qsnc_telemetry::enabled() {
            Some(&mut obs)
        } else {
            None
        };
    trainer.fit_with_observer(net, &mut opt, &train_batches, &test_batches, observer);
}

/// Applies `f` to every [`SignalStage`] of the network, in forward order
/// (recursing through residual blocks).
pub fn visit_signal_stages(net: &mut Sequential, mut f: impl FnMut(&mut SignalStage)) {
    fn walk(stack: &mut [Box<dyn Layer>], f: &mut impl FnMut(&mut SignalStage)) {
        for layer in stack {
            if let Some(stage) = layer.as_any_mut().downcast_mut::<SignalStage>() {
                f(stage);
            } else {
                for inner in layer.inner_stacks_mut() {
                    walk(inner, f);
                }
            }
        }
    }
    walk(net.layers_mut(), &mut f);
}

/// Largest signal observed at each stage over a calibration batch, in
/// forward order. Run with the quantization switch off.
pub fn calibrate_stage_maxima(net: &mut Sequential, calibration: &Batch) -> Vec<f32> {
    net.forward(&calibration.images, Mode::Eval);
    let mut maxima = Vec::new();
    visit_signal_stages(net, |stage| {
        let max = stage.output_tap().map_or(0.0, |t| t.max()).max(0.0);
        maxima.push(max);
    });
    maxima
}

/// Trains a quantization-aware model per the paper's proposed flow:
/// signal stages with the configured regularizer are spliced in, the model
/// trains with quantization **off** (Eq. 2's regularized loss), weights are
/// quantized per the config, and an optional straight-through fine-tune
/// runs with quantization **on**.
pub fn train_quant_aware(
    kind: ModelKind,
    width: f32,
    settings: &TrainSettings,
    quant: &QuantConfig,
    train_data: &Dataset,
    test_data: &Dataset,
    seed: u64,
) -> QuantizedModel {
    let mut rng = TensorRng::seed(seed);
    let mut net = qsnc_nn::models::build_model(kind, width, train_data.classes(), &mut rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::new(quant.regularizer, quant.activation_bits, quant.alpha),
        quant.lambda,
        ActivationQuantizer::new(quant.activation_bits),
        );
    // Phase 1: regularized training, quantization off.
    fit(&mut net, settings, train_data, test_data, &mut rng);
    let test_batches = test_data.batches(settings.batch_size, None);
    let float_accuracy = evaluate(&mut net, &test_batches);

    // Phase 2: optional straight-through fine-tune with quantization on.
    switch.set_enabled(true);
    if quant.finetune_epochs > 0 {
        let ft = TrainSettings {
            epochs: quant.finetune_epochs,
            lr: settings.lr * 0.1,
            ..*settings
        };
        fit(&mut net, &ft, train_data, test_data, &mut rng);
    }

    // Phase 3: weight quantization (after fine-tuning, so deployed weights
    // are exactly what is evaluated). `weight_bits >= 32` means "leave
    // weights in floating point" — used by the signals-only experiments.
    if quant.weight_bits < 32 {
        quantize_network_weights(&mut net, quant.weight_bits, quant.weight_method);
    }
    let quantized_accuracy = evaluate(&mut net, &test_batches);
    QuantizedModel {
        net,
        switch,
        float_accuracy,
        quantized_accuracy,
    }
}

/// Post-training quantization of a float-trained network ("w/o" baselines).
///
/// Splices unregularized signal stages, calibrates **one uniform scale**
/// from the largest signal anywhere in the network (the paper's uniform-
/// range constraint), quantizes signals and weights directly, and returns
/// the quantized accuracy.
pub fn direct_quantize(
    net: &mut Sequential,
    quant: &QuantConfig,
    calibration: &Batch,
    test_batches: &[Batch],
) -> (QuantSwitch, f32) {
    let (switch, _) = insert_signal_stages(
        net,
        ActivationRegularizer::new(qsnc_quant::RegKind::None, quant.activation_bits, 0.0),
        0.0,
        ActivationQuantizer::new(quant.activation_bits),
    );
    // Uniform calibration across all layers.
    let maxima = calibrate_stage_maxima(net, calibration);
    let global_max = maxima.iter().copied().fold(0.0f32, f32::max);
    let levels = ((1u32 << quant.activation_bits) - 1) as f32;
    let scale = if global_max > 0.0 { levels / global_max } else { 1.0 };
    let q = ActivationQuantizer::with_scale(quant.activation_bits, scale);
    visit_signal_stages(net, |stage| stage.set_quantizer(q));

    quantize_network_weights(net, quant.weight_bits, quant.weight_method);
    switch.set_enabled(true);
    let acc = evaluate(net, test_batches);
    (switch, acc)
}

/// Quantizes only the inter-layer signals of a float-trained network
/// (Table 2's "w/o" rows): uniform calibrated scale, weights untouched.
pub fn direct_quantize_signals_only(
    net: &mut Sequential,
    activation_bits: u32,
    calibration: &Batch,
    test_batches: &[Batch],
) -> f32 {
    let (switch, _) = insert_signal_stages(
        net,
        ActivationRegularizer::new(qsnc_quant::RegKind::None, activation_bits, 0.0),
        0.0,
        ActivationQuantizer::new(activation_bits),
    );
    let maxima = calibrate_stage_maxima(net, calibration);
    let global_max = maxima.iter().copied().fold(0.0f32, f32::max);
    let levels = ((1u32 << activation_bits) - 1) as f32;
    let scale = if global_max > 0.0 { levels / global_max } else { 1.0 };
    let q = ActivationQuantizer::with_scale(activation_bits, scale);
    visit_signal_stages(net, |stage| stage.set_quantizer(q));
    switch.set_enabled(true);
    evaluate(net, test_batches)
}

/// Quantizes a float-trained network to 8-bit **dynamic fixed point**
/// (Gysel et al., the paper's ref. \[23\] baseline): per-layer fractional
/// lengths for both signals and weights.
pub fn dynamic_fixed_baseline(
    net: &mut Sequential,
    bits: u32,
    calibration: &Batch,
    test_batches: &[Batch],
) -> f32 {
    let (switch, _) = insert_signal_stages(
        net,
        ActivationRegularizer::new(qsnc_quant::RegKind::None, bits.min(16), 0.0),
        0.0,
        ActivationQuantizer::new(bits.min(16)),
    );
    // Per-layer calibration: each stage gets its own power-of-two scale.
    let maxima = calibrate_stage_maxima(net, calibration);
    let mut idx = 0;
    visit_signal_stages(net, |stage| {
        let sample = Tensor::from_slice(&[maxima[idx].max(1e-6)]);
        let fmt = DynamicFixedPoint::fit(bits, &sample);
        // Unsigned signal grid with the same LSB.
        let scale = 1.0 / fmt.lsb();
        stage.set_quantizer(ActivationQuantizer::with_scale(bits.min(16), scale));
        idx += 1;
    });
    // Per-tensor dynamic fixed-point weights.
    for p in net.params() {
        if p.is_weight {
            let (q, _) = qsnc_quant::dynamic_fixed_quantize(p.value, bits);
            *p.value = q;
        }
    }
    switch.set_enabled(true);
    evaluate(net, test_batches)
}

/// Weight-only quantization of a float-trained network (Table 3): signals
/// stay fp32.
pub fn quantize_weights_only(
    net: &mut Sequential,
    weight_bits: u32,
    method: WeightQuantMethod,
    test_batches: &[Batch],
) -> f32 {
    quantize_network_weights(net, weight_bits, method);
    evaluate(net, test_batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsnc_data::synth_digits;

    fn quick_settings() -> TrainSettings {
        TrainSettings {
            epochs: 3,
            batch_size: 32,
            ..TrainSettings::default()
        }
    }

    fn small_data(seed: u64) -> (Dataset, Dataset) {
        let mut rng = TensorRng::seed(seed);
        synth_digits(1500, &mut rng).split(0.8)
    }

    #[test]
    fn float_training_reaches_high_accuracy() {
        let (train, test) = small_data(0);
        let (_net, acc) =
            train_float(ModelKind::Lenet, 0.5, &quick_settings(), &train, &test, 1);
        assert!(acc > 0.8, "float accuracy {acc}");
    }

    #[test]
    fn qat_flow_produces_quantized_model() {
        let (train, test) = small_data(1);
        let quant = QuantConfig {
            finetune_epochs: 1,
            ..QuantConfig::paper(4, 4)
        };
        let model = train_quant_aware(
            ModelKind::Lenet,
            0.5,
            &quick_settings(),
            &quant,
            &train,
            &test,
            2,
        );
        assert!(model.float_accuracy > 0.7, "float {}", model.float_accuracy);
        assert!(
            model.quantized_accuracy > 0.7,
            "quantized {}",
            model.quantized_accuracy
        );
        // Weights ended up on a fixed-point grid.
        let mut net = model.net;
        for p in net.params() {
            if p.is_weight {
                let q = qsnc_quant::cluster_weights(p.value, 4);
                assert!(q.mse < 1e-10, "{} off-grid (mse {})", p.name, q.mse);
            }
        }
    }

    #[test]
    fn direct_quantization_degrades_at_low_bits() {
        let (train, test) = small_data(2);
        let settings = quick_settings();
        let (mut net, float_acc) =
            train_float(ModelKind::Lenet, 0.25, &settings, &train, &test, 3);
        let calibration = &train.batches(64, None)[0];
        let test_batches = test.batches(32, None);
        let (_switch, acc2) =
            direct_quantize(&mut net, &QuantConfig::direct(2, 2), calibration, &test_batches);
        // 2-bit direct quantization must hurt a well-trained model.
        assert!(
            acc2 < float_acc - 0.05,
            "2-bit direct acc {acc2} vs float {float_acc}"
        );
    }

    #[test]
    fn visit_signal_stages_sees_all() {
        let mut rng = TensorRng::seed(4);
        let mut net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
        let (_, n) = insert_signal_stages(
            &mut net,
            ActivationRegularizer::neuron_convergence(4),
            0.0,
            ActivationQuantizer::new(4),
        );
        let mut seen = 0;
        visit_signal_stages(&mut net, |_| seen += 1);
        assert_eq!(seen, n);
    }

    #[test]
    fn calibration_maxima_match_stage_count() {
        let mut rng = TensorRng::seed(5);
        let mut net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
        let (_, n) = insert_signal_stages(
            &mut net,
            ActivationRegularizer::neuron_convergence(4),
            0.0,
            ActivationQuantizer::new(4),
        );
        let data = synth_digits(32, &mut rng);
        let batch = &data.batches(32, None)[0];
        let maxima = calibrate_stage_maxima(&mut net, batch);
        assert_eq!(maxima.len(), n);
        assert!(maxima.iter().all(|&m| m >= 0.0));
        assert!(maxima.iter().any(|&m| m > 0.0));
    }
}
