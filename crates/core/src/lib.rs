//! # qsnc-core
//!
//! End-to-end pipeline for the qsnc reproduction of *"Towards Accurate and
//! High-Speed Spiking Neuromorphic Systems with Data Quantization-Aware
//! Deep Networks"* (Liu & Liu, DAC 2018).
//!
//! Tying the substrates together:
//!
//! 1. [`train_float`] — the fp32 baselines of Table 1.
//! 2. [`train_quant_aware`] — the paper's proposed flow: Neuron
//!    Convergence training, straight-through fine-tune, Weight Clustering.
//! 3. [`direct_quantize`] / [`dynamic_fixed_baseline`] — the "w/o" and
//!    8-bit dynamic fixed-point comparison points of Tables 2–4.
//! 4. [`deploy_to_snc`] — lowering onto the memristor crossbar substrate,
//!    and [`hardware_report`] for the Table 5 speed/energy/area model.
//!
//! # Examples
//!
//! ```no_run
//! use qsnc_core::{train_quant_aware, deploy_to_snc, QuantConfig, TrainSettings};
//! use qsnc_data::synth_digits;
//! use qsnc_nn::ModelKind;
//! use qsnc_tensor::TensorRng;
//!
//! let mut rng = TensorRng::seed(0);
//! let (train, test) = synth_digits(2000, &mut rng).split(0.8);
//! let quant = QuantConfig::paper(4, 4);
//! let model = train_quant_aware(
//!     ModelKind::Lenet, 0.5, &TrainSettings::default(), &quant, &train, &test, 0);
//! println!("quantized accuracy: {:.2}%", model.quantized_accuracy * 100.0);
//! let snn = deploy_to_snc(&model.net, &quant, None)?;
//! # Ok::<(), qsnc_memristor::CompileError>(())
//! ```

#![warn(missing_docs)]

mod config;
mod deploy;
mod flow;
pub mod report;

pub use config::{QuantConfig, TrainSettings};
pub use report::{telemetry_summary_tables, Report, Table};
pub use deploy::{
    degradation_table, deploy_to_snc, deploy_to_snc_reliable, export_artifact, hardware_report,
    snc_accuracy,
};
pub use flow::{
    calibrate_stage_maxima, direct_quantize, direct_quantize_signals_only,
    dynamic_fixed_baseline, quantize_weights_only, train_float, train_quant_aware,
    visit_signal_stages, QuantizedModel,
};
