//! Deployment of quantized networks onto the memristor SNC, plus the
//! hardware report used by Table 5.

use crate::config::QuantConfig;
use crate::report::Table;
use qsnc_memristor::{DeployConfig, HwModel, HwReport, ReliabilityConfig, SpikingNetwork};
use qsnc_nn::train::Batch;
use qsnc_nn::Sequential;
use qsnc_tensor::TensorRng;

/// Lowers a quantized network onto the memristor substrate using the
/// paper's platform parameters (32×32 crossbars, 50 kΩ–1 MΩ devices).
///
/// # Errors
///
/// Returns [`qsnc_memristor::CompileError`] if the network contains layers
/// the substrate cannot realize or unquantized signals.
pub fn deploy_to_snc(
    net: &Sequential,
    quant: &QuantConfig,
    rng: Option<&mut TensorRng>,
) -> Result<SpikingNetwork, qsnc_memristor::CompileError> {
    deploy_to_snc_reliable(net, quant, ReliabilityConfig::ideal(), rng)
}

/// Like [`deploy_to_snc`] but onto hardware with the given reliability
/// configuration — fault population, countermeasure policy, spare columns.
///
/// # Errors
///
/// Returns [`qsnc_memristor::CompileError`] if the network contains layers
/// the substrate cannot realize or unquantized signals.
pub fn deploy_to_snc_reliable(
    net: &Sequential,
    quant: &QuantConfig,
    reliability: ReliabilityConfig,
    rng: Option<&mut TensorRng>,
) -> Result<SpikingNetwork, qsnc_memristor::CompileError> {
    let mut config = DeployConfig::paper(quant.weight_bits, quant.activation_bits);
    config.reliability = reliability;
    SpikingNetwork::compile(net, &config, rng)
}

/// Freezes a deployed network into a versioned `.qsnca` artifact —
/// the deploy-side half of the serving cold-start story. The artifact
/// carries the compiled integer fast path (packed codes, scales,
/// precomputed IFC threshold tables), the crossbar tile map, and a
/// provenance record tying it back to the checkpoint digest and
/// quantization config it was built from. Serve workers reload it with
/// [`qsnc_memristor::load_artifact`] (or
/// `qsnc_serve::Server::spawn_from_artifact`) without touching the
/// training stack.
///
/// `checkpoint_digest` should be [`qsnc_nn::checkpoint_digest`] over the
/// exact checkpoint bytes the network was restored from (0 when the
/// network was trained in-process).
///
/// # Errors
///
/// [`qsnc_memristor::ArtifactError::NotCompiled`] when the network has no
/// integer fast path (noisy or fault-active deployments), plus the write
/// errors of [`qsnc_memristor::save_artifact`].
pub fn export_artifact(
    snn: &SpikingNetwork,
    kind: qsnc_nn::ModelKind,
    quant: &QuantConfig,
    checkpoint_digest: u64,
    path: impl AsRef<std::path::Path>,
) -> Result<(), qsnc_memristor::ArtifactError> {
    let provenance = qsnc_memristor::Provenance {
        checkpoint_digest,
        weight_bits: quant.weight_bits,
        activation_bits: quant.activation_bits,
        model: kind.to_string(),
    };
    qsnc_memristor::save_artifact(snn, &kind.input_dims(), &provenance, path)
}

/// The degradation report of a deployed network as a [`Table`]: one row per
/// synaptic layer plus a `total` row, mirroring the frozen
/// `snc.fault.{cells,unrecoverable,remapped,masked}` telemetry counters.
pub fn degradation_table(snn: &SpikingNetwork) -> Table {
    let mut t = Table::new(
        "Degradation report",
        &["layer", "faulty cells", "unrecoverable", "remapped", "masked", "retries", "|w| lost"],
    );
    let mut push = |name: String, s: &qsnc_memristor::DegradationStats| {
        t.row(&[
            name,
            s.cells.to_string(),
            s.unrecoverable.to_string(),
            s.remapped.to_string(),
            s.masked.to_string(),
            s.retries.to_string(),
            format!("{:.0}", s.magnitude_lost),
        ]);
    };
    for (i, s) in snn.layer_degradation().iter().enumerate() {
        push(format!("synaptic {i}"), s);
    }
    push("total".into(), &snn.degradation());
    t
}

/// Accuracy of the deployed spiking system on test batches.
pub fn snc_accuracy(
    snn: &SpikingNetwork,
    batches: &[Batch],
    rng: Option<&mut TensorRng>,
) -> f32 {
    snn.evaluate(batches, rng)
}

/// Hardware speed/energy/area for a network's structure at `(M, N)` bits
/// — one row of Table 5.
pub fn hardware_report(net: &Sequential, m_bits: u32, n_bits: u32) -> HwReport {
    let model = HwModel::calibrated();
    model.evaluate_network(&net.synaptic_descriptors(), 32, m_bits, n_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{QuantConfig, TrainSettings};
    use crate::flow::train_quant_aware;
    use qsnc_data::synth_digits;
    use qsnc_nn::ModelKind;

    #[test]
    fn deployed_accuracy_tracks_software() {
        let mut rng = TensorRng::seed(0);
        let (train, test) = synth_digits(600, &mut rng).split(0.8);
        let settings = TrainSettings {
            epochs: 2,
            ..TrainSettings::default()
        };
        let quant = QuantConfig {
            finetune_epochs: 1,
            ..QuantConfig::paper(4, 4)
        };
        let model =
            train_quant_aware(ModelKind::Lenet, 0.25, &settings, &quant, &train, &test, 7);
        let snn = deploy_to_snc(&model.net, &quant, None).expect("deploy");
        let test_batches = test.batches(40, None);
        let hw_acc = snc_accuracy(&snn, &test_batches[..1], None);
        // One batch of 40 examples: hardware accuracy should be within a
        // few examples of the software-quantized accuracy.
        assert!(
            (hw_acc - model.quantized_accuracy).abs() < 0.15,
            "hw {hw_acc} vs sw {}",
            model.quantized_accuracy
        );
    }

    #[test]
    fn reliable_deploy_reports_degradation_table() {
        use qsnc_memristor::{FaultRates, ProgramPolicy};
        let mut rng = TensorRng::seed(2);
        let (train, test) = synth_digits(300, &mut rng).split(0.8);
        let settings = TrainSettings { epochs: 1, ..TrainSettings::default() };
        let quant = QuantConfig { finetune_epochs: 0, ..QuantConfig::paper(4, 4) };
        let model =
            train_quant_aware(ModelKind::Lenet, 0.25, &settings, &quant, &train, &test, 3);
        let rel =
            ReliabilityConfig::faulty(FaultRates::stuck(0.02), 5, ProgramPolicy::Remap);
        let snn = deploy_to_snc_reliable(&model.net, &quant, rel, None).expect("deploy");
        let table = degradation_table(&snn);
        // One row per synaptic layer plus the total row.
        assert_eq!(table.len(), snn.layer_degradation().len() + 1);
        assert!(snn.degradation().cells > 0);
        let total = table.rows().last().expect("total row");
        assert_eq!(total[0], "total");
        assert_eq!(total[1], snn.degradation().cells.to_string());
    }

    #[test]
    fn hardware_report_has_sane_magnitudes() {
        let mut rng = TensorRng::seed(1);
        let net = qsnc_nn::models::lenet(1.0, 10, &mut rng);
        let r8 = hardware_report(&net, 8, 8);
        let r4 = hardware_report(&net, 4, 4);
        assert!(r4.speed_mhz > r8.speed_mhz * 9.0);
        assert!(r4.energy_uj < r8.energy_uj);
        assert!(r4.area_mm2 < r8.area_mm2);
    }
}
