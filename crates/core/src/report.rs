//! ASCII table formatting and structured reporting for the experiment
//! binaries.
//!
//! The table generators in `qsnc-bench` print rows in the same layout as
//! the paper's tables so that EXPERIMENTS.md can be assembled by direct
//! comparison. [`Report`] bundles one binary's tables and notes and emits
//! them uniformly: rendered ASCII on stdout always, and — when
//! `QSNC_TELEMETRY=json` — a combined JSON document (tables + notes + the
//! full telemetry snapshot) in the BENCH_*.json house shape.

use qsnc_telemetry::json::Json;
use std::fmt::Write as _;

/// A simple fixed-layout ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a row from displayable items.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |widths: &[usize]| {
            let mut s = String::from("+");
            for w in widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths.iter()) {
                let _ = write!(s, " {cell:w$} |", w = w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&widths));
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(out, "{}", line(&widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        let _ = writeln!(out, "{}", line(&widths));
        out
    }
}

impl Table {
    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Converts the table to a JSON object: each row becomes an object
    /// keyed by the column headers, matching the row-array sections of
    /// BENCH_*.json.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|row| {
                Json::Obj(
                    self.header
                        .iter()
                        .zip(row.iter())
                        .map(|(h, c)| (h.clone(), Json::Str(c.clone())))
                        .collect(),
                )
            })
            .collect();
        Json::obj(vec![
            ("title", Json::Str(self.title.clone())),
            ("rows", Json::Arr(rows)),
        ])
    }

    /// Renders the table as CSV (header + rows), quoting cells that
    /// contain commas or quotes.
    pub fn to_csv(&self) -> String {
        fn field(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self.header.iter().map(|c| field(c)).collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| field(c)).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

/// One experiment binary's complete output: titled tables plus free-form
/// notes, emitted consistently across all of `qsnc-bench`.
///
/// [`Report::emit`] prints every table and note to stdout. When telemetry
/// runs in JSON mode (`QSNC_TELEMETRY=json`), it additionally produces a
/// JSON document combining the tables, the notes, and the full telemetry
/// snapshot — written to the path in `QSNC_REPORT_JSON` if set, otherwise
/// appended to stdout.
#[derive(Debug, Clone, Default)]
pub struct Report {
    title: String,
    tables: Vec<Table>,
    notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            ..Report::default()
        }
    }

    /// Appends a finished table.
    pub fn table(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Appends a free-form note line (printed after the tables).
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// The report's tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// The report's notes.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Renders every table and note as the ASCII block [`Report::emit`]
    /// prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for table in &self.tables {
            out.push_str(&table.render());
            out.push('\n');
        }
        for note in &self.notes {
            let _ = writeln!(out, "{note}");
        }
        out
    }

    /// Combined JSON document: title, tables, notes, and the current
    /// telemetry snapshot.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("title", Json::Str(self.title.clone())),
            (
                "tables",
                Json::Arr(self.tables.iter().map(Table::to_json).collect()),
            ),
            (
                "notes",
                Json::Arr(self.notes.iter().map(|n| Json::Str(n.clone())).collect()),
            ),
            ("telemetry", qsnc_telemetry::snapshot().to_json()),
        ])
    }

    /// Prints the report. In telemetry JSON mode the combined JSON document
    /// is written to `$QSNC_REPORT_JSON` (or stdout when unset); in
    /// recording mode an ASCII telemetry summary is appended.
    pub fn emit(&self) {
        print!("{}", self.render());
        match qsnc_telemetry::mode() {
            qsnc_telemetry::TelemetryMode::Json => {
                let doc = self.to_json().render_pretty(2);
                match std::env::var("QSNC_REPORT_JSON") {
                    Ok(path) if !path.is_empty() => {
                        if let Err(e) = std::fs::write(&path, &doc) {
                            eprintln!("failed to write {path}: {e}");
                        } else {
                            eprintln!("report JSON written to {path}");
                        }
                    }
                    _ => println!("{doc}"),
                }
            }
            qsnc_telemetry::TelemetryMode::Record => {
                for table in telemetry_summary_tables(&qsnc_telemetry::snapshot()) {
                    print!("\n{}", table.render());
                }
            }
            qsnc_telemetry::TelemetryMode::Off => {}
        }
    }
}

/// Renders a telemetry snapshot as ASCII summary tables (spans sorted by
/// total time, then counters, then histograms). Empty sections are omitted.
pub fn telemetry_summary_tables(snap: &qsnc_telemetry::Snapshot) -> Vec<Table> {
    let mut tables = Vec::new();
    if !snap.spans.is_empty() {
        let mut spans = snap.spans.clone();
        spans.sort_by_key(|s| std::cmp::Reverse(s.total_ns));
        let mut t = Table::new(
            "Telemetry: spans",
            &["span", "count", "total ms", "mean us", "max us"],
        );
        for s in &spans {
            t.row(&[
                s.path.clone(),
                s.count.to_string(),
                format!("{:.3}", s.total_ns as f64 / 1e6),
                format!("{:.1}", s.total_ns as f64 / s.count.max(1) as f64 / 1e3),
                format!("{:.1}", s.max_ns as f64 / 1e3),
            ]);
        }
        tables.push(t);
    }
    if !snap.counters.is_empty() {
        let mut t = Table::new("Telemetry: counters", &["counter", "value"]);
        for (name, value) in &snap.counters {
            t.row(&[name.clone(), value.to_string()]);
        }
        tables.push(t);
    }
    if !snap.histograms.is_empty() {
        let mut t = Table::new(
            "Telemetry: histograms",
            &["histogram", "count", "mean", "buckets"],
        );
        for h in &snap.histograms {
            let mean = if h.count == 0 { 0.0 } else { h.sum / h.count as f64 };
            let buckets = h
                .buckets
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join("/");
            t.row(&[
                h.name.clone(),
                h.count.to_string(),
                format!("{mean:.4}"),
                buckets,
            ]);
        }
        tables.push(t);
    }
    tables
}

/// Formats an accuracy as the paper does: `"98.16%"`.
pub fn pct(x: f32) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats an accuracy delta as the paper does: `"-0.02%"`.
pub fn pct_delta(ours: f32, reference: f32) -> String {
    format!("{:+.2}%", (ours - reference) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["Model", "Acc"]);
        t.row(&["Lenet".into(), "98.16%".into()]);
        t.row(&["A-very-long-name".into(), "85.35%".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| Lenet "));
        // All rendered lines after the title have the same width.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("Demo", &["A", "B"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_quotes_awkward_cells() {
        let mut t = Table::new("Demo", &["A", "B"]);
        t.row(&["plain".into(), "with,comma".into()]);
        t.row(&["with\"quote".into(), "x".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "A,B");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"with\"\"quote\",x");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.9816), "98.16%");
        assert_eq!(pct_delta(0.9814, 0.9816), "-0.02%");
        assert_eq!(pct_delta(0.99, 0.98), "+1.00%");
    }

    #[test]
    fn table_json_keys_rows_by_header() {
        let mut t = Table::new("T", &["Model", "Acc"]);
        t.row(&["lenet".into(), "98.16%".into()]);
        let j = t.to_json();
        let rows = j.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows[0].get("Model").and_then(Json::as_str), Some("lenet"));
        assert_eq!(rows[0].get("Acc").and_then(Json::as_str), Some("98.16%"));
    }

    #[test]
    fn report_renders_tables_then_notes_and_parses_as_json() {
        let mut r = Report::new("demo");
        let mut t = Table::new("T", &["A"]);
        t.row(&["x".into()]);
        r.table(t).note("note line");
        let text = r.render();
        assert!(text.contains("## T"));
        assert!(text.ends_with("note line\n"));
        let doc = r.to_json().render_pretty(2);
        let parsed = Json::parse(&doc).unwrap();
        for key in ["title", "tables", "notes", "telemetry"] {
            assert!(parsed.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn telemetry_summary_renders_recorded_data() {
        let _guard = qsnc_telemetry::testing::lock();
        qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Record);
        qsnc_telemetry::reset();
        qsnc_telemetry::counter_add("demo.counter", 3);
        qsnc_telemetry::observe("demo.hist", 0.4, &[0.5, 1.0]);
        {
            let _s = qsnc_telemetry::start_span("demo.span");
        }
        let tables = telemetry_summary_tables(&qsnc_telemetry::snapshot());
        qsnc_telemetry::reset();
        qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Off);
        assert_eq!(tables.len(), 3);
        let all: String = tables.iter().map(Table::render).collect();
        assert!(all.contains("demo.span"));
        assert!(all.contains("demo.counter"));
        assert!(all.contains("demo.hist"));
    }

    #[test]
    fn empty_snapshot_produces_no_summary_tables() {
        assert!(telemetry_summary_tables(&qsnc_telemetry::Snapshot::default()).is_empty());
    }
}
