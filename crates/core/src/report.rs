//! ASCII table formatting for the experiment binaries.
//!
//! The table generators in `qsnc-bench` print rows in the same layout as
//! the paper's tables so that EXPERIMENTS.md can be assembled by direct
//! comparison.

use std::fmt::Write as _;

/// A simple fixed-layout ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a row from displayable items.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |widths: &[usize]| {
            let mut s = String::from("+");
            for w in widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths.iter()) {
                let _ = write!(s, " {cell:w$} |", w = w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&widths));
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(out, "{}", line(&widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        let _ = writeln!(out, "{}", line(&widths));
        out
    }
}

impl Table {
    /// Renders the table as CSV (header + rows), quoting cells that
    /// contain commas or quotes.
    pub fn to_csv(&self) -> String {
        fn field(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self.header.iter().map(|c| field(c)).collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| field(c)).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats an accuracy as the paper does: `"98.16%"`.
pub fn pct(x: f32) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats an accuracy delta as the paper does: `"-0.02%"`.
pub fn pct_delta(ours: f32, reference: f32) -> String {
    format!("{:+.2}%", (ours - reference) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["Model", "Acc"]);
        t.row(&["Lenet".into(), "98.16%".into()]);
        t.row(&["A-very-long-name".into(), "85.35%".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| Lenet "));
        // All rendered lines after the title have the same width.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("Demo", &["A", "B"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_quotes_awkward_cells() {
        let mut t = Table::new("Demo", &["A", "B"]);
        t.row(&["plain".into(), "with,comma".into()]);
        t.row(&["with\"quote".into(), "x".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "A,B");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"with\"\"quote\",x");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.9816), "98.16%");
        assert_eq!(pct_delta(0.9814, 0.9816), "-0.02%");
        assert_eq!(pct_delta(0.99, 0.98), "+1.00%");
    }
}
