//! Configuration types for the end-to-end pipeline.

use qsnc_quant::{RegKind, WeightQuantMethod};

/// Full quantization configuration: the `(M, N)` pair of the paper plus
/// the training-time knobs of Eq. 2/3.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QuantConfig {
    /// Inter-layer signal bit width `M`.
    pub activation_bits: u32,
    /// Synaptic weight bit width `N`.
    pub weight_bits: u32,
    /// Regularization weight `λ` applied uniformly to every layer's
    /// signal penalty.
    pub lambda: f32,
    /// Sparsity coefficient `α` of Eq. 3 (paper: 0.1).
    pub alpha: f32,
    /// Which signal regularizer to train with.
    pub regularizer: RegKind,
    /// How weights are mapped to the fixed-point grid.
    pub weight_method: WeightQuantMethod,
    /// Epochs of straight-through fine-tuning with quantization enabled
    /// after the regularized training (0 disables).
    pub finetune_epochs: usize,
}

impl QuantConfig {
    /// The paper's proposed method at `(M, N)` bits: Neuron Convergence
    /// (α = 0.1) plus Weight Clustering.
    pub fn paper(activation_bits: u32, weight_bits: u32) -> Self {
        QuantConfig {
            activation_bits,
            weight_bits,
            lambda: 1e-5,
            alpha: 0.1,
            regularizer: RegKind::NeuronConvergence,
            weight_method: WeightQuantMethod::Clustered,
            finetune_epochs: 2,
        }
    }

    /// The "w/o" baseline at `(M, N)` bits: no regularization, direct
    /// post-training quantization of both signals and weights.
    pub fn direct(activation_bits: u32, weight_bits: u32) -> Self {
        QuantConfig {
            activation_bits,
            weight_bits,
            lambda: 0.0,
            alpha: 0.1,
            regularizer: RegKind::None,
            weight_method: WeightQuantMethod::DirectFixedPoint,
            finetune_epochs: 0,
        }
    }
}

/// Training hyper-parameters shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainSettings {
    /// Epochs of training.
    pub epochs: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay on weight tensors.
    pub weight_decay: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Multiply the learning rate by this factor…
    pub lr_decay: f32,
    /// …every this many epochs.
    pub lr_decay_every: usize,
    /// Print progress lines to stderr.
    pub verbose: bool,
}

impl Default for TrainSettings {
    fn default() -> Self {
        TrainSettings {
            epochs: 6,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            batch_size: 32,
            lr_decay: 0.5,
            lr_decay_every: 3,
            verbose: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_uses_proposed_mechanisms() {
        let c = QuantConfig::paper(4, 4);
        assert_eq!(c.regularizer, RegKind::NeuronConvergence);
        assert_eq!(c.weight_method, WeightQuantMethod::Clustered);
        assert!(c.lambda > 0.0);
        assert_eq!(c.alpha, 0.1);
    }

    #[test]
    fn direct_config_disables_recovery() {
        let c = QuantConfig::direct(3, 3);
        assert_eq!(c.regularizer, RegKind::None);
        assert_eq!(c.weight_method, WeightQuantMethod::DirectFixedPoint);
        assert_eq!(c.lambda, 0.0);
        assert_eq!(c.finetune_epochs, 0);
    }
}
