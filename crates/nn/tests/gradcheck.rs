//! Finite-difference gradient verification for every trainable layer.
//!
//! For each layer we embed it in a tiny scalar loss `L = Σ y·r` (random
//! projection `r`), compute analytic parameter and input gradients via
//! `backward`, and compare against central differences.

use qsnc_nn::layers::{AvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, Relu, Residual};
use qsnc_nn::{Layer, Mode};
use qsnc_tensor::{Conv2dSpec, Tensor, TensorRng};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// Loss = <forward(x), r>; returns (loss, analytic input grad) and leaves
/// parameter grads accumulated in the layer.
fn project_loss(layer: &mut dyn Layer, x: &Tensor, r: &Tensor) -> (f32, Tensor) {
    let y = layer.forward(x, Mode::Train);
    assert_eq!(y.shape(), r.shape(), "projection shape mismatch");
    let loss: f32 = y.iter().zip(r.iter()).map(|(&a, &b)| a * b).sum();
    let dx = layer.backward(r);
    (loss, dx)
}

fn loss_only(layer: &mut dyn Layer, x: &Tensor, r: &Tensor) -> f32 {
    let y = layer.forward(x, Mode::Train);
    y.iter().zip(r.iter()).map(|(&a, &b)| a * b).sum()
}

fn check_input_grad(layer: &mut dyn Layer, x: &Tensor, r: &Tensor) {
    layer.zero_grad();
    let (_, dx) = project_loss(layer, x, r);
    for i in (0..x.len()).step_by((x.len() / 16).max(1)) {
        let mut xp = x.clone();
        xp.as_mut_slice()[i] += EPS;
        let mut xm = x.clone();
        xm.as_mut_slice()[i] -= EPS;
        let lp = loss_only(layer, &xp, r);
        let lm = loss_only(layer, &xm, r);
        let numeric = (lp - lm) / (2.0 * EPS);
        let analytic = dx.as_slice()[i];
        assert!(
            (numeric - analytic).abs() < TOL * (1.0 + numeric.abs()),
            "input grad[{i}]: numeric {numeric} vs analytic {analytic}"
        );
    }
}

fn check_param_grads(layer: &mut dyn Layer, x: &Tensor, r: &Tensor) {
    layer.zero_grad();
    let _ = project_loss(layer, x, r);
    // Snapshot analytic gradients.
    let grads: Vec<(String, Tensor)> = layer
        .params()
        .iter()
        .map(|p| (p.name.clone(), p.grad.clone()))
        .collect();
    for (pi, (name, analytic_grad)) in grads.iter().enumerate() {
        let len = analytic_grad.len();
        for j in (0..len).step_by((len / 8).max(1)) {
            let orig = {
                let mut params = layer.params();
                let v = params[pi].value.as_mut_slice()[j];
                params[pi].value.as_mut_slice()[j] = v + EPS;
                v
            };
            let lp = loss_only(layer, x, r);
            {
                let mut params = layer.params();
                params[pi].value.as_mut_slice()[j] = orig - EPS;
            }
            let lm = loss_only(layer, x, r);
            {
                let mut params = layer.params();
                params[pi].value.as_mut_slice()[j] = orig;
            }
            let numeric = (lp - lm) / (2.0 * EPS);
            let analytic = analytic_grad.as_slice()[j];
            assert!(
                (numeric - analytic).abs() < TOL * (1.0 + numeric.abs()),
                "{name}[{j}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }
}

#[test]
fn linear_gradients() {
    let mut rng = TensorRng::seed(10);
    let mut layer = Linear::new("fc", 6, 4, &mut rng);
    let x = qsnc_tensor::init::uniform([3, 6], -1.0, 1.0, &mut rng);
    let r = qsnc_tensor::init::uniform([3, 4], -1.0, 1.0, &mut rng);
    check_input_grad(&mut layer, &x, &r);
    check_param_grads(&mut layer, &x, &r);
}

#[test]
fn conv2d_gradients() {
    let mut rng = TensorRng::seed(11);
    let mut layer = Conv2d::new("c", 2, 3, Conv2dSpec::new(3, 1, 1), &mut rng);
    let x = qsnc_tensor::init::uniform([2, 2, 5, 5], -1.0, 1.0, &mut rng);
    let r = qsnc_tensor::init::uniform([2, 3, 5, 5], -1.0, 1.0, &mut rng);
    check_input_grad(&mut layer, &x, &r);
    check_param_grads(&mut layer, &x, &r);
}

#[test]
fn strided_conv_gradients() {
    let mut rng = TensorRng::seed(12);
    let mut layer = Conv2d::new("c", 2, 2, Conv2dSpec::new(3, 2, 1), &mut rng);
    let x = qsnc_tensor::init::uniform([1, 2, 8, 8], -1.0, 1.0, &mut rng);
    let r = qsnc_tensor::init::uniform([1, 2, 4, 4], -1.0, 1.0, &mut rng);
    check_input_grad(&mut layer, &x, &r);
    check_param_grads(&mut layer, &x, &r);
}

#[test]
fn relu_gradients_away_from_kink() {
    let mut rng = TensorRng::seed(13);
    let mut layer = Relu::new();
    // Keep inputs away from 0 so finite differences are valid.
    let x = qsnc_tensor::init::uniform([4, 8], 0.2, 1.0, &mut rng);
    let r = qsnc_tensor::init::uniform([4, 8], -1.0, 1.0, &mut rng);
    check_input_grad(&mut layer, &x, &r);
}

#[test]
fn maxpool_gradients_with_distinct_values() {
    let mut rng = TensorRng::seed(14);
    let mut layer = MaxPool2d::new(2, 2);
    // Distinct values so the argmax is stable under ±EPS.
    let mut vals: Vec<f32> = (0..32).map(|i| i as f32 * 0.37).collect();
    rng.shuffle(&mut vals);
    let x = Tensor::from_vec(vals, [1, 2, 4, 4]);
    let r = qsnc_tensor::init::uniform([1, 2, 2, 2], -1.0, 1.0, &mut rng);
    check_input_grad(&mut layer, &x, &r);
}

#[test]
fn avgpool_gradients() {
    let mut rng = TensorRng::seed(15);
    let mut layer = AvgPool2d::new(2, 2);
    let x = qsnc_tensor::init::uniform([2, 2, 4, 4], -1.0, 1.0, &mut rng);
    let r = qsnc_tensor::init::uniform([2, 2, 2, 2], -1.0, 1.0, &mut rng);
    check_input_grad(&mut layer, &x, &r);
}

#[test]
fn flatten_gradients() {
    let mut rng = TensorRng::seed(16);
    let mut layer = Flatten::new();
    let x = qsnc_tensor::init::uniform([2, 3, 2, 2], -1.0, 1.0, &mut rng);
    let r = qsnc_tensor::init::uniform([2, 12], -1.0, 1.0, &mut rng);
    check_input_grad(&mut layer, &x, &r);
}

#[test]
fn batchnorm_gradients() {
    let mut rng = TensorRng::seed(17);
    let mut layer = BatchNorm2d::new("bn", 2);
    let x = qsnc_tensor::init::uniform([3, 2, 3, 3], -1.0, 1.0, &mut rng);
    let r = qsnc_tensor::init::uniform([3, 2, 3, 3], -1.0, 1.0, &mut rng);
    check_input_grad(&mut layer, &x, &r);
    check_param_grads(&mut layer, &x, &r);
}

#[test]
fn residual_block_gradients() {
    let mut rng = TensorRng::seed(18);
    let body: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new("a", 2, 2, Conv2dSpec::new(3, 1, 1), &mut rng)),
        Box::new(Conv2d::new("b", 2, 2, Conv2dSpec::new(3, 1, 1), &mut rng)),
    ];
    let mut layer = Residual::new(body);
    let x = qsnc_tensor::init::uniform([1, 2, 4, 4], -1.0, 1.0, &mut rng);
    let r = qsnc_tensor::init::uniform([1, 2, 4, 4], -1.0, 1.0, &mut rng);
    check_input_grad(&mut layer, &x, &r);
    check_param_grads(&mut layer, &x, &r);
}

#[test]
fn projection_residual_gradients() {
    let mut rng = TensorRng::seed(19);
    let body: Vec<Box<dyn Layer>> = vec![Box::new(Conv2d::new(
        "a",
        2,
        3,
        Conv2dSpec::new(3, 2, 1),
        &mut rng,
    ))];
    let shortcut: Vec<Box<dyn Layer>> = vec![Box::new(Conv2d::new(
        "p",
        2,
        3,
        Conv2dSpec::new(1, 2, 0),
        &mut rng,
    ))];
    let mut layer = Residual::with_shortcut(body, shortcut);
    let x = qsnc_tensor::init::uniform([1, 2, 6, 6], -1.0, 1.0, &mut rng);
    let r = qsnc_tensor::init::uniform([1, 3, 3, 3], -1.0, 1.0, &mut rng);
    check_input_grad(&mut layer, &x, &r);
    check_param_grads(&mut layer, &x, &r);
}
