//! Mini-batch training loop and evaluation helpers.

use crate::layer::Mode;
use crate::loss::{num_correct, softmax_cross_entropy};
use crate::optim::Optimizer;
use crate::sequential::Sequential;
use qsnc_tensor::{parallel, Tensor};

/// One mini-batch of examples: images `[n, …]` and integer class labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Input tensor whose leading dimension is the batch size.
    pub images: Tensor,
    /// One class label per example.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Creates a batch.
    ///
    /// # Panics
    ///
    /// Panics if the label count differs from the leading dimension of
    /// `images`.
    pub fn new(images: Tensor, labels: Vec<usize>) -> Self {
        assert_eq!(
            images.dims()[0],
            labels.len(),
            "batch size {} != label count {}",
            images.dims()[0],
            labels.len()
        );
        Batch { images, labels }
    }

    /// Number of examples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the batch has no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Aggregate statistics for one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean total loss (data + regularization) per batch.
    pub loss: f32,
    /// Mean data-term loss per batch.
    pub data_loss: f32,
    /// Mean regularization loss per batch (the paper's `Σ λ_i R_g(O_i)`).
    pub reg_loss: f32,
    /// Training accuracy over the epoch.
    pub accuracy: f32,
}

/// Runs one epoch of SGD over `batches`, returning statistics.
///
/// Regularization gradients are injected by the layers themselves during
/// `backward` (see the fake-quantization and regularizer layers in
/// `qsnc-quant`), so the loop only needs the data-term gradient here.
pub fn train_epoch(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    batches: &[Batch],
    epoch: usize,
) -> EpochStats {
    let _span = qsnc_telemetry::span!("train.epoch");
    let mut total_data = 0.0;
    let mut total_reg = 0.0;
    let mut correct = 0usize;
    let mut count = 0usize;
    for batch in batches {
        net.zero_grad();
        let logits = net.forward(&batch.images, Mode::Train);
        let (data_loss, grad) = softmax_cross_entropy(&logits, &batch.labels);
        let reg_loss = net.regularization_loss();
        net.backward(&grad);
        opt.step(&mut net.params());

        total_data += data_loss;
        total_reg += reg_loss;
        correct += num_correct(&logits, &batch.labels);
        count += batch.len();
    }
    let nb = batches.len().max(1) as f32;
    EpochStats {
        epoch,
        loss: (total_data + total_reg) / nb,
        data_loss: total_data / nb,
        reg_loss: total_reg / nb,
        accuracy: if count == 0 { 0.0 } else { correct as f32 / count as f32 },
    }
}

/// Evaluates classification accuracy over `batches` (inference mode).
///
/// Batches are sharded across the [`qsnc_tensor::parallel`] worker threads;
/// each worker runs its shard through its own clone of `net` (forward takes
/// `&mut self`), and exact per-shard correct counts are summed. The result is
/// identical at any thread count. With one worker, `net` itself is used and
/// no clone is made.
pub fn evaluate(net: &mut Sequential, batches: &[Batch]) -> f32 {
    let total: usize = batches.iter().map(Batch::len).sum();
    if total == 0 {
        return 0.0;
    }
    let correct: usize = if parallel::num_threads() == 1 || batches.len() < 2 {
        batches
            .iter()
            .map(|b| num_correct(&net.forward(&b.images, Mode::Eval), &b.labels))
            .sum()
    } else {
        let template: &Sequential = net;
        parallel::par_map_shards(batches, |_, shard| {
            let mut worker = template.clone();
            shard
                .iter()
                .map(|b| num_correct(&worker.forward(&b.images, Mode::Eval), &b.labels))
                .sum::<usize>()
        })
        .into_iter()
        .sum()
    };
    correct as f32 / total as f32
}

/// Per-epoch training callback, invoked by [`Trainer`] after each epoch's
/// statistics are computed.
///
/// Library code never writes to stderr on its own: progress reporting is the
/// observer's job. [`StderrObserver`] reproduces the classic verbose lines,
/// [`TelemetryObserver`] records time series into `qsnc-telemetry`, and
/// callers can implement the trait to do both or neither.
pub trait TrainObserver {
    /// Whether [`Trainer::fit_with_observer`] should evaluate the test
    /// batches after every epoch (an extra inference pass). Defaults to
    /// `false`.
    fn wants_test_accuracy(&self) -> bool {
        false
    }

    /// Called after each epoch. `net` has finished its optimizer step,
    /// `lr` is the learning rate the epoch ran with, and `test_acc` is
    /// `Some` only when test accuracy was evaluated (it is `NaN` when the
    /// caller supplied no test batches).
    fn on_epoch(&mut self, net: &mut Sequential, stats: &EpochStats, lr: f32, test_acc: Option<f32>);
}

/// The default verbose observer: prints one progress line per epoch to
/// stderr, in the same format the trainer used to emit directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrObserver;

impl TrainObserver for StderrObserver {
    fn wants_test_accuracy(&self) -> bool {
        true
    }

    fn on_epoch(&mut self, _net: &mut Sequential, stats: &EpochStats, lr: f32, test_acc: Option<f32>) {
        match test_acc {
            Some(acc) => eprintln!(
                "epoch {:>3}  loss {:.4} (data {:.4} + reg {:.4})  train acc {:.2}%  test acc {:.2}%",
                stats.epoch,
                stats.loss,
                stats.data_loss,
                stats.reg_loss,
                stats.accuracy * 100.0,
                acc * 100.0
            ),
            None => eprintln!(
                "epoch {:>3}  lr {:.5}  loss {:.4}  train acc {:.2}%",
                stats.epoch,
                lr,
                stats.loss,
                stats.accuracy * 100.0
            ),
        }
    }
}

/// Observer recording per-epoch `train.loss` / `train.data_loss` /
/// `train.reg_loss` / `train.accuracy` / `train.lr` (and, when evaluated,
/// `train.test_accuracy`) series into [`qsnc_telemetry`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TelemetryObserver;

impl TrainObserver for TelemetryObserver {
    fn on_epoch(&mut self, _net: &mut Sequential, stats: &EpochStats, lr: f32, test_acc: Option<f32>) {
        let epoch = stats.epoch as u64;
        qsnc_telemetry::record_series("train.loss", epoch, stats.loss as f64);
        qsnc_telemetry::record_series("train.data_loss", epoch, stats.data_loss as f64);
        qsnc_telemetry::record_series("train.reg_loss", epoch, stats.reg_loss as f64);
        qsnc_telemetry::record_series("train.accuracy", epoch, stats.accuracy as f64);
        qsnc_telemetry::record_series("train.lr", epoch, lr as f64);
        if let Some(acc) = test_acc {
            if !acc.is_nan() {
                qsnc_telemetry::record_series("train.test_accuracy", epoch, acc as f64);
            }
        }
    }
}

/// Configuration for [`Trainer`].
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training batches.
    pub epochs: usize,
    /// Multiply the learning rate by `lr_decay` every `lr_decay_every`
    /// epochs (1.0 disables).
    pub lr_decay: f32,
    /// Epoch period of the learning-rate decay.
    pub lr_decay_every: usize,
    /// Print progress lines to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            lr_decay: 1.0,
            lr_decay_every: 1,
            verbose: false,
        }
    }
}

/// Drives multi-epoch training with an optional learning-rate schedule.
#[derive(Debug, Clone, Copy, Default)]
pub struct Trainer {
    /// Training configuration.
    pub config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Trains with an explicit [`LrSchedule`](crate::schedule::LrSchedule):
    /// before each epoch the optimizer's rate is set to
    /// `schedule.rate(base_lr, epoch)` (ignores the config's step-decay
    /// fields). `verbose` routes through [`StderrObserver`].
    pub fn fit_scheduled(
        &self,
        net: &mut Sequential,
        opt: &mut dyn Optimizer,
        base_lr: f32,
        schedule: crate::schedule::LrSchedule,
        train_batches: &[Batch],
        test_batches: &[Batch],
    ) -> Vec<EpochStats> {
        let mut stderr = StderrObserver;
        let observer: Option<&mut dyn TrainObserver> =
            if self.config.verbose { Some(&mut stderr) } else { None };
        self.fit_scheduled_with_observer(net, opt, base_lr, schedule, train_batches, test_batches, observer)
    }

    /// [`Trainer::fit_scheduled`] with an explicit per-epoch observer.
    ///
    /// As before, the schedule path never evaluates `test_batches`; the
    /// observer always receives `test_acc = None`.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_scheduled_with_observer(
        &self,
        net: &mut Sequential,
        opt: &mut dyn Optimizer,
        base_lr: f32,
        schedule: crate::schedule::LrSchedule,
        train_batches: &[Batch],
        test_batches: &[Batch],
        mut observer: Option<&mut dyn TrainObserver>,
    ) -> Vec<EpochStats> {
        let _ = test_batches;
        let mut history = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            opt.set_learning_rate(schedule.rate(base_lr, epoch));
            let stats = train_epoch(net, opt, train_batches, epoch);
            if let Some(obs) = observer.as_deref_mut() {
                obs.on_epoch(net, &stats, opt.learning_rate(), None);
            }
            history.push(stats);
        }
        history
    }

    /// Trains `net` for the configured number of epochs, returning per-epoch
    /// statistics. `verbose` routes through [`StderrObserver`], which also
    /// reports accuracy on `test_batches` when they are non-empty.
    pub fn fit(
        &self,
        net: &mut Sequential,
        opt: &mut dyn Optimizer,
        train_batches: &[Batch],
        test_batches: &[Batch],
    ) -> Vec<EpochStats> {
        let mut stderr = StderrObserver;
        let observer: Option<&mut dyn TrainObserver> =
            if self.config.verbose { Some(&mut stderr) } else { None };
        self.fit_with_observer(net, opt, train_batches, test_batches, observer)
    }

    /// [`Trainer::fit`] with an explicit per-epoch observer.
    ///
    /// Test accuracy is evaluated only when the observer asks for it via
    /// [`TrainObserver::wants_test_accuracy`]; with no test batches the
    /// observer receives `Some(NaN)`, matching the old verbose output.
    pub fn fit_with_observer(
        &self,
        net: &mut Sequential,
        opt: &mut dyn Optimizer,
        train_batches: &[Batch],
        test_batches: &[Batch],
        mut observer: Option<&mut dyn TrainObserver>,
    ) -> Vec<EpochStats> {
        let mut history = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            if epoch > 0 && self.config.lr_decay != 1.0 && epoch % self.config.lr_decay_every == 0
            {
                opt.set_learning_rate(opt.learning_rate() * self.config.lr_decay);
            }
            let stats = train_epoch(net, opt, train_batches, epoch);
            if let Some(obs) = observer.as_deref_mut() {
                let test_acc = if obs.wants_test_accuracy() {
                    Some(if test_batches.is_empty() {
                        f32::NAN
                    } else {
                        evaluate(net, test_batches)
                    })
                } else {
                    None
                };
                obs.on_epoch(net, &stats, opt.learning_rate(), test_acc);
            }
            history.push(stats);
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use crate::optim::Sgd;
    use qsnc_tensor::TensorRng;

    /// Two linearly separable blobs.
    fn blob_batches(rng: &mut TensorRng, batches: usize, per_batch: usize) -> Vec<Batch> {
        (0..batches)
            .map(|_| {
                let mut images = Vec::new();
                let mut labels = Vec::new();
                for _ in 0..per_batch {
                    let class = rng.index(2);
                    let center = if class == 0 { -1.0 } else { 1.0 };
                    images.push(center + rng.normal_with(0.0, 0.3));
                    images.push(center + rng.normal_with(0.0, 0.3));
                    labels.push(class);
                }
                Batch::new(Tensor::from_vec(images, [per_batch, 2]), labels)
            })
            .collect()
    }

    fn blob_net(rng: &mut TensorRng) -> Sequential {
        let mut net = Sequential::new();
        net.push(Linear::new("fc1", 2, 8, rng));
        net.push(Relu::new());
        net.push(Linear::new("fc2", 8, 2, rng));
        net
    }

    #[test]
    fn training_learns_separable_blobs() {
        let mut rng = TensorRng::seed(0);
        let train = blob_batches(&mut rng, 10, 16);
        let test = blob_batches(&mut rng, 4, 16);
        let mut net = blob_net(&mut rng);
        let mut opt = Sgd::with_momentum(0.1, 0.9, 0.0);
        let before = evaluate(&mut net, &test);
        let trainer = Trainer::new(TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut net, &mut opt, &train, &test);
        let after = evaluate(&mut net, &test);
        assert!(after > 0.95, "accuracy after training: {after} (before {before})");
        // Loss should broadly decrease.
        assert!(history.last().unwrap().loss < history.first().unwrap().loss);
    }

    #[test]
    fn lr_decay_applies() {
        let mut rng = TensorRng::seed(1);
        let train = blob_batches(&mut rng, 2, 8);
        let mut net = blob_net(&mut rng);
        let mut opt = Sgd::new(1.0);
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            lr_decay: 0.5,
            lr_decay_every: 1,
            verbose: false,
        });
        trainer.fit(&mut net, &mut opt, &train, &[]);
        assert!((opt.learning_rate() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn scheduled_training_applies_rates() {
        use crate::schedule::LrSchedule;
        let mut rng = TensorRng::seed(3);
        let train = blob_batches(&mut rng, 4, 8);
        let mut net = blob_net(&mut rng);
        let mut opt = Sgd::new(1.0);
        let trainer = Trainer::new(TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        });
        let schedule = LrSchedule::Step { gamma: 0.1, every: 2 };
        trainer.fit_scheduled(&mut net, &mut opt, 0.5, schedule, &train, &[]);
        // Last epoch (3): 0.5 · 0.1 = 0.05.
        assert!((opt.learning_rate() - 0.05).abs() < 1e-6);
    }

    #[test]
    fn evaluate_empty_is_zero() {
        let mut rng = TensorRng::seed(2);
        let mut net = blob_net(&mut rng);
        assert_eq!(evaluate(&mut net, &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn batch_label_mismatch_panics() {
        Batch::new(Tensor::zeros([2, 2]), vec![0]);
    }
}
