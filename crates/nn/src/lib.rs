//! # qsnc-nn
//!
//! Neural-network substrate for the qsnc reproduction of
//! *"Towards Accurate and High-Speed Spiking Neuromorphic Systems with Data
//! Quantization-Aware Deep Networks"* (Liu & Liu, DAC 2018).
//!
//! The paper trains its networks in Torch; this crate is the from-scratch
//! equivalent: a [`Layer`] trait with exact backpropagation, the concrete
//! layers in [`layers`], the [`Sequential`] container, softmax
//! cross-entropy and optimizers, a mini-batch [`train`] loop, and the three
//! Table 1 topologies in [`models`].
//!
//! Quantization-aware training is *not* here — `qsnc-quant` provides it by
//! implementing [`Layer`] for its fake-quantization and regularizer stages
//! and splicing them into a [`Sequential`].
//!
//! # Examples
//!
//! ```
//! use qsnc_nn::{models, Mode};
//! use qsnc_tensor::{Tensor, TensorRng};
//!
//! let mut rng = TensorRng::seed(0);
//! let mut net = models::lenet(0.25, 10, &mut rng);
//! let logits = net.forward(&Tensor::zeros([1, 1, 28, 28]), Mode::Eval);
//! assert_eq!(logits.dims(), &[1, 10]);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
mod layer;
pub mod layers;
pub mod metrics;
pub mod loss;
pub mod models;
pub mod optim;
pub mod schedule;
mod sequential;
pub mod train;

pub use checkpoint::{
    checkpoint_digest, load_params, read_checkpoint, save_params, CheckpointError,
};
pub use layer::{Layer, LayerDesc, Mode, Param};
pub use metrics::{top_k_accuracy, ConfusionMatrix};
pub use models::ModelKind;
pub use schedule::LrSchedule;
pub use sequential::Sequential;
pub use train::{
    Batch, EpochStats, StderrObserver, TelemetryObserver, TrainConfig, TrainObserver, Trainer,
};
