//! First-order optimizers.
//!
//! Optimizer state (momentum buffers, Adam moments) is keyed by the position
//! of each parameter in the `params()` enumeration, which is stable for a
//! fixed network structure. Mutating the layer stack between steps resets
//! the state via [`Optimizer::reset`].

use crate::layer::Param;
use qsnc_tensor::Tensor;

/// A gradient-based parameter updater.
pub trait Optimizer: std::fmt::Debug + Send {
    /// Applies one update step to `params`, consuming their accumulated
    /// gradients (the caller zeroes gradients afterwards).
    fn step(&mut self, params: &mut [Param<'_>]);

    /// Clears internal state (momentum/moment buffers).
    fn reset(&mut self);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and weight decay.
///
/// Weight decay is applied only to parameters flagged `is_weight`, matching
/// common practice (no decay on biases or batch-norm affine terms).
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        Sgd::with_momentum(lr, 0.0, 0.0)
    }

    /// SGD with momentum and weight decay.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [Param<'_>]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| Tensor::zeros(p.value.dims())).collect();
        }
        for (i, p) in params.iter_mut().enumerate() {
            let wd = if p.is_weight { self.weight_decay } else { 0.0 };
            let v = &mut self.velocity[i];
            for ((vi, &gi), wi) in v
                .iter_mut()
                .zip(p.grad.iter())
                .zip(p.value.as_mut_slice().iter_mut())
            {
                let g = gi + wd * *wi;
                *vi = self.momentum * *vi + g;
                *wi -= self.lr * *vi;
            }
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba), with decoupled weight decay on weights.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the standard β₁=0.9, β₂=0.999.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        Adam::with_decay(lr, 0.0)
    }

    /// Adam with decoupled weight decay (AdamW-style) on weight tensors.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn with_decay(lr: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [Param<'_>]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| Tensor::zeros(p.value.dims())).collect();
            self.v = params.iter().map(|p| Tensor::zeros(p.value.dims())).collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            let wd = if p.is_weight { self.weight_decay } else { 0.0 };
            let m = self.m[i].as_mut_slice();
            let v = self.v[i].as_mut_slice();
            for (j, (wi, &gi)) in p
                .value
                .as_mut_slice()
                .iter_mut()
                .zip(p.grad.iter())
                .enumerate()
            {
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * gi;
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * gi * gi;
                let m_hat = m[j] / bc1;
                let v_hat = v[j] / bc2;
                *wi -= self.lr * (m_hat / (v_hat.sqrt() + self.eps) + wd * *wi);
            }
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_step(opt: &mut dyn Optimizer, w: &mut Tensor, steps: usize) -> f32 {
        // Minimize f(w) = ½‖w‖²; gradient = w.
        for _ in 0..steps {
            let mut g = w.clone();
            let mut params = vec![Param {
                name: "w".into(),
                value: w,
                grad: &mut g,
                is_weight: true,
            }];
            opt.step(&mut params);
        }
        w.norm_l2()
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut w = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let start = w.norm_l2();
        let end = quad_step(&mut Sgd::new(0.1), &mut w, 50);
        assert!(end < start * 0.01, "start {start} end {end}");
    }

    #[test]
    fn sgd_momentum_descends_faster() {
        let mut w1 = Tensor::from_slice(&[5.0]);
        let mut w2 = Tensor::from_slice(&[5.0]);
        let plain = quad_step(&mut Sgd::new(0.01), &mut w1, 30);
        let momentum = quad_step(&mut Sgd::with_momentum(0.01, 0.9, 0.0), &mut w2, 30);
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut w = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let start = w.norm_l2();
        let end = quad_step(&mut Adam::new(0.3), &mut w, 100);
        assert!(end < start * 0.05, "start {start} end {end}");
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut w = Tensor::from_slice(&[1.0]);
        let mut g = Tensor::zeros([1]);
        let mut opt = Sgd::with_momentum(0.1, 0.0, 0.5);
        for _ in 0..10 {
            let mut params = vec![Param {
                name: "w".into(),
                value: &mut w,
                grad: &mut g,
                is_weight: true,
            }];
            opt.step(&mut params);
        }
        assert!(w.as_slice()[0] < 1.0);
        assert!(w.as_slice()[0] > 0.0);
    }

    #[test]
    fn no_decay_on_biases() {
        let mut b = Tensor::from_slice(&[1.0]);
        let mut g = Tensor::zeros([1]);
        let mut opt = Sgd::with_momentum(0.1, 0.0, 0.5);
        let mut params = vec![Param {
            name: "b".into(),
            value: &mut b,
            grad: &mut g,
            is_weight: false,
        }];
        opt.step(&mut params);
        assert_eq!(b.as_slice()[0], 1.0);
    }

    #[test]
    fn lr_schedule_roundtrip() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_panics() {
        Sgd::new(0.0);
    }
}
