//! Saving and loading network parameters.
//!
//! Networks are trait-object stacks, so qsnc persists *parameters by name*
//! rather than whole architectures: rebuild the topology in code (the model
//! zoo is deterministic), then [`load_params`] into it. The on-disk format
//! is a small self-describing binary layout:
//!
//! ```text
//! magic "QSNC" | version u32 | param count u32 |
//!   per param: name len u32 | name utf-8 | rank u32 | dims u32… | f32 data…
//! ```
//!
//! All integers and floats are little-endian.

use crate::sequential::Sequential;
use qsnc_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"QSNC";
const VERSION: u32 = 1;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream did not start with the expected magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// A stored name was not valid UTF-8.
    BadName,
    /// The checkpoint is missing a parameter the network has.
    MissingParam(String),
    /// A stored tensor's shape disagrees with the network's parameter.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Dims stored in the checkpoint.
        stored: Vec<usize>,
        /// Dims the network expects.
        expected: Vec<usize>,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a qsnc checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadName => write!(f, "checkpoint contains a non-utf8 name"),
            CheckpointError::MissingParam(n) => {
                write!(f, "checkpoint is missing parameter {n}")
            }
            CheckpointError::ShapeMismatch { name, stored, expected } => write!(
                f,
                "parameter {name}: stored shape {stored:?} != expected {expected:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Largest allocation the reader makes ahead of bytes actually received.
/// Declared lengths in the stream are untrusted; they are only honoured one
/// chunk at a time.
const READ_CHUNK: usize = 64 * 1024;

/// Reads exactly `len` bytes, growing the buffer at most [`READ_CHUNK`]
/// ahead of the data actually received — a hostile declared length hits
/// `UnexpectedEof` after buffering only what the stream really contained,
/// instead of reserving multi-GiB up front.
fn read_exact_budgeted<R: Read>(r: &mut R, len: usize) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    let mut remaining = len;
    while remaining > 0 {
        let chunk = remaining.min(READ_CHUNK);
        let start = buf.len();
        buf.resize(start + chunk, 0);
        r.read_exact(&mut buf[start..])?;
        remaining -= chunk;
    }
    Ok(buf)
}

/// 64-bit FNV-1a digest of a serialized checkpoint (or any byte string).
///
/// This is the provenance hash deployment artifacts record: `qsnc deploy`
/// digests the exact checkpoint bytes it compiled from, so a serving
/// process can verify which trained parameters a `.qsnca` artifact came
/// from without re-reading the training stack.
pub fn checkpoint_digest(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Writes every parameter of `net` (weights, biases, norm affine terms) to
/// `w`. A `&mut File` or `&mut Vec<u8>` both work.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on write failure.
pub fn save_params<W: Write>(net: &mut Sequential, mut w: W) -> Result<(), CheckpointError> {
    let params = net.params();
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u32(&mut w, params.len() as u32)?;
    for p in &params {
        write_u32(&mut w, p.name.len() as u32)?;
        w.write_all(p.name.as_bytes())?;
        write_u32(&mut w, p.value.shape().rank() as u32)?;
        for &d in p.value.dims() {
            write_u32(&mut w, d as u32)?;
        }
        for &v in p.value.iter() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a checkpoint into a name → tensor map.
///
/// # Errors
///
/// Returns [`CheckpointError`] on malformed input.
pub fn read_checkpoint<R: Read>(mut r: R) -> Result<HashMap<String, Tensor>, CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    // Every count below comes from the (possibly corrupt or hostile)
    // stream: nothing is allocated from a declared size until the
    // corresponding bytes have actually been read, chunk by chunk.
    let count = read_u32(&mut r)? as usize;
    let mut map = HashMap::new();
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        let name_buf = read_exact_budgeted(&mut r, name_len)?;
        let name = String::from_utf8(name_buf).map_err(|_| CheckpointError::BadName)?;
        let rank = read_u32(&mut r)? as usize;
        let mut dims = Vec::new();
        for _ in 0..rank {
            dims.push(read_u32(&mut r)? as usize);
        }
        let len = dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .and_then(|n| n.checked_mul(4))
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("declared tensor shape {dims:?} overflows the byte count"),
                )
            })?;
        let raw = read_exact_budgeted(&mut r, len)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        map.insert(name, Tensor::from_vec(data, dims));
    }
    Ok(map)
}

/// Loads a checkpoint into `net` by parameter name.
///
/// # Errors
///
/// Returns [`CheckpointError`] if the stream is malformed, a parameter is
/// missing, or shapes disagree. On error the network may be partially
/// updated.
pub fn load_params<R: Read>(net: &mut Sequential, r: R) -> Result<(), CheckpointError> {
    let map = read_checkpoint(r)?;
    for p in net.params() {
        let stored = map
            .get(&p.name)
            .ok_or_else(|| CheckpointError::MissingParam(p.name.clone()))?;
        if stored.shape() != p.value.shape() {
            return Err(CheckpointError::ShapeMismatch {
                name: p.name.clone(),
                stored: stored.dims().to_vec(),
                expected: p.value.dims().to_vec(),
            });
        }
        *p.value = stored.clone();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use qsnc_tensor::TensorRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = TensorRng::seed(seed);
        let mut net = Sequential::new();
        net.push(Linear::new("fc1", 4, 8, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new("fc2", 8, 2, &mut rng));
        net
    }

    fn weights_of(net: &mut Sequential) -> Vec<Tensor> {
        net.params().iter().map(|p| p.value.clone()).collect()
    }

    #[test]
    fn round_trip_preserves_all_params() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        let mut b = net(2); // different init
        assert_ne!(weights_of(&mut a), weights_of(&mut b));
        load_params(&mut b, buf.as_slice()).unwrap();
        assert_eq!(weights_of(&mut a), weights_of(&mut b));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut b = net(0);
        let err = load_params(&mut b, &b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut b = net(2);
        let err = load_params(&mut b, buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        // A network with different layer widths but same names.
        let mut rng = TensorRng::seed(3);
        let mut b = Sequential::new();
        b.push(Linear::new("fc1", 4, 16, &mut rng));
        b.push(Linear::new("fc2", 16, 2, &mut rng));
        let err = load_params(&mut b, buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn missing_param_is_reported() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        let mut rng = TensorRng::seed(4);
        let mut b = Sequential::new();
        b.push(Linear::new("other", 4, 8, &mut rng));
        let err = load_params(&mut b, buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::MissingParam(_)), "{err}");
    }

    #[test]
    fn absurd_declared_element_count_is_rejected_without_allocating() {
        // Header declaring one parameter whose single dim claims u32::MAX
        // elements (16 GiB of f32 data) followed by almost no bytes. The
        // budgeted reader must fail with an I/O error after buffering only
        // the bytes actually present — this test would OOM/abort otherwise.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes()); // param count
        buf.extend_from_slice(&1u32.to_le_bytes()); // name len
        buf.push(b'w');
        buf.extend_from_slice(&1u32.to_le_bytes()); // rank
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // dim 0
        buf.extend_from_slice(&[0u8; 16]); // a token amount of "data"
        let err = read_checkpoint(buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn absurd_declared_name_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // 4 GiB name
        buf.extend_from_slice(b"tiny");
        let err = read_checkpoint(buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn overflowing_shape_product_is_rejected() {
        // Dims whose product overflows usize must be caught by checked_mul,
        // not wrap to a tiny allocation that then misreads the stream.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(b'w');
        buf.extend_from_slice(&3u32.to_le_bytes()); // rank 3
        for _ in 0..3 {
            buf.extend_from_slice(&u32::MAX.to_le_bytes());
        }
        let err = read_checkpoint(buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        // FNV-1a-64 known-answer vectors.
        assert_eq!(checkpoint_digest(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checkpoint_digest(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        let d = checkpoint_digest(&buf);
        assert_eq!(d, checkpoint_digest(&buf), "digest must be deterministic");
        let mut flipped = buf.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert_ne!(d, checkpoint_digest(&flipped));
    }

    #[test]
    fn checkpoint_map_contents() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        let map = read_checkpoint(buf.as_slice()).unwrap();
        assert_eq!(map.len(), 4);
        assert!(map.contains_key("fc1.weight"));
        assert_eq!(map["fc1.weight"].dims(), &[8, 4]);
        assert_eq!(map["fc2.bias"].dims(), &[2]);
    }
}
