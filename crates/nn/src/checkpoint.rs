//! Saving and loading network parameters.
//!
//! Networks are trait-object stacks, so qsnc persists *parameters by name*
//! rather than whole architectures: rebuild the topology in code (the model
//! zoo is deterministic), then [`load_params`] into it. The on-disk format
//! is a small self-describing binary layout:
//!
//! ```text
//! magic "QSNC" | version u32 | param count u32 |
//!   per param: name len u32 | name utf-8 | rank u32 | dims u32… | f32 data…
//! ```
//!
//! All integers and floats are little-endian.

use crate::sequential::Sequential;
use qsnc_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"QSNC";
const VERSION: u32 = 1;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream did not start with the expected magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// A stored name was not valid UTF-8.
    BadName,
    /// The checkpoint is missing a parameter the network has.
    MissingParam(String),
    /// A stored tensor's shape disagrees with the network's parameter.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Dims stored in the checkpoint.
        stored: Vec<usize>,
        /// Dims the network expects.
        expected: Vec<usize>,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a qsnc checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadName => write!(f, "checkpoint contains a non-utf8 name"),
            CheckpointError::MissingParam(n) => {
                write!(f, "checkpoint is missing parameter {n}")
            }
            CheckpointError::ShapeMismatch { name, stored, expected } => write!(
                f,
                "parameter {name}: stored shape {stored:?} != expected {expected:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes every parameter of `net` (weights, biases, norm affine terms) to
/// `w`. A `&mut File` or `&mut Vec<u8>` both work.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on write failure.
pub fn save_params<W: Write>(net: &mut Sequential, mut w: W) -> Result<(), CheckpointError> {
    let params = net.params();
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u32(&mut w, params.len() as u32)?;
    for p in &params {
        write_u32(&mut w, p.name.len() as u32)?;
        w.write_all(p.name.as_bytes())?;
        write_u32(&mut w, p.value.shape().rank() as u32)?;
        for &d in p.value.dims() {
            write_u32(&mut w, d as u32)?;
        }
        for &v in p.value.iter() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a checkpoint into a name → tensor map.
///
/// # Errors
///
/// Returns [`CheckpointError`] on malformed input.
pub fn read_checkpoint<R: Read>(mut r: R) -> Result<HashMap<String, Tensor>, CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let count = read_u32(&mut r)? as usize;
    let mut map = HashMap::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        let mut name_buf = vec![0u8; name_len];
        r.read_exact(&mut name_buf)?;
        let name = String::from_utf8(name_buf).map_err(|_| CheckpointError::BadName)?;
        let rank = read_u32(&mut r)? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u32(&mut r)? as usize);
        }
        let len: usize = dims.iter().product();
        let mut data = vec![0.0f32; len];
        for v in &mut data {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        map.insert(name, Tensor::from_vec(data, dims));
    }
    Ok(map)
}

/// Loads a checkpoint into `net` by parameter name.
///
/// # Errors
///
/// Returns [`CheckpointError`] if the stream is malformed, a parameter is
/// missing, or shapes disagree. On error the network may be partially
/// updated.
pub fn load_params<R: Read>(net: &mut Sequential, r: R) -> Result<(), CheckpointError> {
    let map = read_checkpoint(r)?;
    for p in net.params() {
        let stored = map
            .get(&p.name)
            .ok_or_else(|| CheckpointError::MissingParam(p.name.clone()))?;
        if stored.shape() != p.value.shape() {
            return Err(CheckpointError::ShapeMismatch {
                name: p.name.clone(),
                stored: stored.dims().to_vec(),
                expected: p.value.dims().to_vec(),
            });
        }
        *p.value = stored.clone();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use qsnc_tensor::TensorRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = TensorRng::seed(seed);
        let mut net = Sequential::new();
        net.push(Linear::new("fc1", 4, 8, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new("fc2", 8, 2, &mut rng));
        net
    }

    fn weights_of(net: &mut Sequential) -> Vec<Tensor> {
        net.params().iter().map(|p| p.value.clone()).collect()
    }

    #[test]
    fn round_trip_preserves_all_params() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        let mut b = net(2); // different init
        assert_ne!(weights_of(&mut a), weights_of(&mut b));
        load_params(&mut b, buf.as_slice()).unwrap();
        assert_eq!(weights_of(&mut a), weights_of(&mut b));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut b = net(0);
        let err = load_params(&mut b, &b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut b = net(2);
        let err = load_params(&mut b, buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        // A network with different layer widths but same names.
        let mut rng = TensorRng::seed(3);
        let mut b = Sequential::new();
        b.push(Linear::new("fc1", 4, 16, &mut rng));
        b.push(Linear::new("fc2", 16, 2, &mut rng));
        let err = load_params(&mut b, buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn missing_param_is_reported() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        let mut rng = TensorRng::seed(4);
        let mut b = Sequential::new();
        b.push(Linear::new("other", 4, 8, &mut rng));
        let err = load_params(&mut b, buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::MissingParam(_)), "{err}");
    }

    #[test]
    fn checkpoint_map_contents() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();
        let map = read_checkpoint(buf.as_slice()).unwrap();
        assert_eq!(map.len(), 4);
        assert!(map.contains_key("fc1.weight"));
        assert_eq!(map["fc1.weight"].dims(), &[8, 4]);
        assert_eq!(map["fc2.bias"].dims(), &[2]);
    }
}
