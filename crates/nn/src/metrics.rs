//! Classification metrics beyond plain accuracy.

use qsnc_tensor::Tensor;

/// A confusion matrix over `classes` classes; entry `(actual, predicted)`
/// counts examples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "class count must be positive");
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records a single prediction.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(actual < self.classes && predicted < self.classes, "label out of range");
        self.counts[actual * self.classes + predicted] += 1;
    }

    /// Records a batch of logits against labels.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is not `[n, classes]` or labels mismatch.
    pub fn record_batch(&mut self, logits: &Tensor, labels: &[usize]) {
        assert_eq!(logits.shape().rank(), 2, "logits must be [n, classes]");
        assert_eq!(logits.dims()[1], self.classes, "class count mismatch");
        assert_eq!(logits.dims()[0], labels.len(), "label count mismatch");
        for (pred, &actual) in logits.argmax_rows().into_iter().zip(labels.iter()) {
            self.record(actual, pred);
        }
    }

    /// Count at `(actual, predicted)`.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual * self.classes + predicted]
    }

    /// Total recorded examples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f32 / total as f32
    }

    /// Recall per class (NaN-free: 0 for absent classes).
    pub fn per_class_recall(&self) -> Vec<f32> {
        (0..self.classes)
            .map(|c| {
                let row: usize = (0..self.classes).map(|p| self.count(c, p)).sum();
                if row == 0 {
                    0.0
                } else {
                    self.count(c, c) as f32 / row as f32
                }
            })
            .collect()
    }

    /// Precision per class (0 for classes never predicted).
    pub fn per_class_precision(&self) -> Vec<f32> {
        (0..self.classes)
            .map(|p| {
                let col: usize = (0..self.classes).map(|c| self.count(c, p)).sum();
                if col == 0 {
                    0.0
                } else {
                    self.count(p, p) as f32 / col as f32
                }
            })
            .collect()
    }

    /// The most confused (actual, predicted, count) off-diagonal pair, if
    /// any misclassification was recorded.
    pub fn worst_confusion(&self) -> Option<(usize, usize, usize)> {
        let mut best: Option<(usize, usize, usize)> = None;
        for a in 0..self.classes {
            for p in 0..self.classes {
                if a != p {
                    let n = self.count(a, p);
                    if n > 0 && best.is_none_or(|(_, _, bn)| n > bn) {
                        best = Some((a, p, n));
                    }
                }
            }
        }
        best
    }
}

/// Top-`k` accuracy of `[n, classes]` logits: an example counts as correct
/// when its label is among the `k` highest logits.
///
/// # Panics
///
/// Panics if `logits` is not rank 2, labels mismatch, or `k == 0`.
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> f32 {
    assert!(k > 0, "k must be positive");
    assert_eq!(logits.shape().rank(), 2, "logits must be [n, classes]");
    let (n, classes) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), n, "label count mismatch");
    if n == 0 {
        return 0.0;
    }
    let data = logits.as_slice();
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = &data[r * classes..(r + 1) * classes];
        let target = row[label];
        // Rank = number of strictly larger entries.
        let rank = row.iter().filter(|&&v| v > target).count();
        if rank < k {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_accuracy() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(1, 1);
        cm.record(2, 1);
        cm.record(2, 2);
        assert_eq!(cm.total(), 4);
        assert!((cm.accuracy() - 0.75).abs() < 1e-6);
        assert_eq!(cm.count(2, 1), 1);
    }

    #[test]
    fn per_class_metrics() {
        let mut cm = ConfusionMatrix::new(2);
        // class 0: 3 correct, 1 predicted as 1; class 1: 2 correct.
        for _ in 0..3 {
            cm.record(0, 0);
        }
        cm.record(0, 1);
        for _ in 0..2 {
            cm.record(1, 1);
        }
        let recall = cm.per_class_recall();
        assert!((recall[0] - 0.75).abs() < 1e-6);
        assert!((recall[1] - 1.0).abs() < 1e-6);
        let precision = cm.per_class_precision();
        assert!((precision[0] - 1.0).abs() < 1e-6);
        assert!((precision[1] - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn record_batch_from_logits() {
        let mut cm = ConfusionMatrix::new(2);
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], [2, 2]);
        cm.record_batch(&logits, &[0, 0]);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.worst_confusion(), Some((0, 1, 1)));
    }

    #[test]
    fn empty_matrix_is_harmless() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.worst_confusion(), None);
        assert!(cm.per_class_recall().iter().all(|&r| r == 0.0));
    }

    #[test]
    fn top_k_behaviour() {
        let logits = Tensor::from_vec(
            vec![
                0.5, 0.3, 0.2, // label 1 is 2nd
                0.1, 0.2, 0.7, // label 0 is 3rd
            ],
            [2, 3],
        );
        assert_eq!(top_k_accuracy(&logits, &[1, 0], 1), 0.0);
        assert!((top_k_accuracy(&logits, &[1, 0], 2) - 0.5).abs() < 1e-6);
        assert_eq!(top_k_accuracy(&logits, &[1, 0], 3), 1.0);
    }

    #[test]
    fn top_1_equals_plain_accuracy() {
        use crate::loss::accuracy;
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.4, 0.6, 0.7, 0.3], [3, 2]);
        let labels = [0usize, 1, 1];
        assert_eq!(top_k_accuracy(&logits, &labels, 1), accuracy(&logits, &labels));
    }
}
