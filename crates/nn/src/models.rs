//! The model zoo of Table 1: LeNet, AlexNet, and ResNet topologies.
//!
//! Topologies follow the paper's Table 1 exactly in layer *structure*
//! (LeNet: 2 conv 5×5 + 2 FC; AlexNet: 1 conv 5×5 + 4 conv 3×3 + 3 FC;
//! ResNet: 17 conv 3×3 + 1 FC). Channel widths are controlled by a `width`
//! multiplier so the accuracy experiments can run at CPU-friendly scale
//! while the hardware experiments (Table 5) evaluate Eq. 1 at paper scale.

use crate::layers::{AvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, Relu, Residual};
use crate::layer::Layer;
use crate::sequential::Sequential;
use qsnc_tensor::{Conv2dSpec, TensorRng};

/// Which of the paper's three networks to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ModelKind {
    /// LeNet on 28×28×1 inputs (MNIST-class task).
    Lenet,
    /// AlexNet-style CIFAR network on 32×32×3 inputs.
    Alexnet,
    /// 18-layer residual network (17 conv + 1 FC) on 32×32×3 inputs.
    Resnet,
}

impl ModelKind {
    /// Input dimensions `[c, h, w]` the network expects.
    pub fn input_dims(self) -> [usize; 3] {
        match self {
            ModelKind::Lenet => [1, 28, 28],
            ModelKind::Alexnet | ModelKind::Resnet => [3, 32, 32],
        }
    }

    /// Display name matching the paper's tables.
    pub fn paper_name(self) -> &'static str {
        match self {
            ModelKind::Lenet => "Lenet",
            ModelKind::Alexnet => "Alexnet",
            ModelKind::Resnet => "Resnet",
        }
    }

    /// Number of computation-unit layers in Table 5 (conv + FC stages).
    pub fn table5_layer_count(self) -> usize {
        match self {
            ModelKind::Lenet => 4,
            ModelKind::Alexnet => 8,
            ModelKind::Resnet => 18,
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

fn scaled(base: usize, width: f32) -> usize {
    ((base as f32 * width).round() as usize).max(1)
}

/// Builds LeNet: conv 5×5 → pool → conv 5×5 → pool → FC → FC.
///
/// `width = 1.0` gives the classic 6/16-channel LeNet; smaller values shrink
/// every stage proportionally. `classes` is the output count.
pub fn lenet(width: f32, classes: usize, rng: &mut TensorRng) -> Sequential {
    let c1 = scaled(6, width);
    let c2 = scaled(16, width);
    let hidden = scaled(84, width);
    let mut net = Sequential::new();
    net.push(Conv2d::new("conv1", 1, c1, Conv2dSpec::new(5, 1, 2), rng));
    net.push(Relu::new());
    net.push(MaxPool2d::new(2, 2)); // 28 → 14
    net.push(Conv2d::new("conv2", c1, c2, Conv2dSpec::new(5, 1, 0), rng));
    net.push(Relu::new());
    net.push(MaxPool2d::new(2, 2)); // 10 → 5
    net.push(Flatten::new());
    net.push(Linear::new("fc1", c2 * 5 * 5, hidden, rng));
    net.push(Relu::new());
    net.push(Linear::new("fc2", hidden, classes, rng));
    net
}

/// Builds the AlexNet-style CIFAR network:
/// conv 5×5, then 4× conv 3×3 (pooling after stages), then 3 FC layers.
pub fn alexnet(width: f32, classes: usize, rng: &mut TensorRng) -> Sequential {
    let c1 = scaled(32, width);
    let c2 = scaled(64, width);
    let c3 = scaled(128, width);
    let h1 = scaled(256, width);
    let h2 = scaled(128, width);
    let mut net = Sequential::new();
    net.push(Conv2d::new("conv1", 3, c1, Conv2dSpec::new(5, 1, 2), rng));
    net.push(Relu::new());
    net.push(MaxPool2d::new(2, 2)); // 32 → 16
    net.push(Conv2d::new("conv2", c1, c2, Conv2dSpec::new(3, 1, 1), rng));
    net.push(Relu::new());
    net.push(Conv2d::new("conv3", c2, c2, Conv2dSpec::new(3, 1, 1), rng));
    net.push(Relu::new());
    net.push(MaxPool2d::new(2, 2)); // 16 → 8
    net.push(Conv2d::new("conv4", c2, c3, Conv2dSpec::new(3, 1, 1), rng));
    net.push(Relu::new());
    net.push(Conv2d::new("conv5", c3, c3, Conv2dSpec::new(3, 1, 1), rng));
    net.push(Relu::new());
    net.push(MaxPool2d::new(2, 2)); // 8 → 4
    net.push(Flatten::new());
    net.push(Linear::new("fc1", c3 * 4 * 4, h1, rng));
    net.push(Relu::new());
    net.push(Linear::new("fc2", h1, h2, rng));
    net.push(Relu::new());
    net.push(Linear::new("fc3", h2, classes, rng));
    net
}

fn basic_block(
    label: &str,
    in_c: usize,
    out_c: usize,
    stride: usize,
    rng: &mut TensorRng,
) -> Residual {
    let body: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(
            format!("{label}.conv1"),
            in_c,
            out_c,
            Conv2dSpec::new(3, stride, 1),
            rng,
        )),
        Box::new(BatchNorm2d::new(format!("{label}.bn1"), out_c)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(
            format!("{label}.conv2"),
            out_c,
            out_c,
            Conv2dSpec::new(3, 1, 1),
            rng,
        )),
        Box::new(BatchNorm2d::new(format!("{label}.bn2"), out_c)),
    ];
    if stride != 1 || in_c != out_c {
        let shortcut: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(
                format!("{label}.proj"),
                in_c,
                out_c,
                Conv2dSpec::new(1, stride, 0),
                rng,
            )),
            Box::new(BatchNorm2d::new(format!("{label}.bnp"), out_c)),
        ];
        Residual::with_shortcut(body, shortcut)
    } else {
        Residual::new(body)
    }
}

/// Builds the 18-layer residual network of Table 1:
/// one stem conv plus 8 basic blocks (16 convs) = 17 conv 3×3, then global
/// average pooling and one FC layer. Projection shortcuts (1×1) are used at
/// stage transitions, as in the original ResNet; the paper's conv count
/// refers to the 3×3 convolutions.
pub fn resnet(width: f32, classes: usize, rng: &mut TensorRng) -> Sequential {
    let c1 = scaled(16, width);
    let c2 = scaled(32, width);
    let c3 = scaled(64, width);
    let mut net = Sequential::new();
    net.push(Conv2d::new("stem", 3, c1, Conv2dSpec::new(3, 1, 1), rng));
    net.push(BatchNorm2d::new("stem.bn", c1));
    net.push(Relu::new());
    // Stage 1: 3 blocks at c1, 32×32. As in the original ResNet, ReLU
    // follows each block's residual add — these are the inter-layer
    // signals the paper quantizes.
    for (label, in_c, out_c, stride) in [
        ("s1b1", c1, c1, 1),
        ("s1b2", c1, c1, 1),
        ("s1b3", c1, c1, 1),
        // Stage 2: 3 blocks at c2, 16×16.
        ("s2b1", c1, c2, 2),
        ("s2b2", c2, c2, 1),
        ("s2b3", c2, c2, 1),
        // Stage 3: 2 blocks at c3, 8×8 → 16 block convs + stem = 17 convs.
        ("s3b1", c2, c3, 2),
        ("s3b2", c3, c3, 1),
    ] {
        net.push(basic_block(label, in_c, out_c, stride, rng));
        net.push(Relu::new());
    }
    net.push(AvgPool2d::global(8));
    net.push(Flatten::new());
    net.push(Linear::new("fc", c3, classes, rng));
    net
}

/// Builds a model by kind with the given width multiplier.
pub fn build_model(kind: ModelKind, width: f32, classes: usize, rng: &mut TensorRng) -> Sequential {
    match kind {
        ModelKind::Lenet => lenet(width, classes, rng),
        ModelKind::Alexnet => alexnet(width, classes, rng),
        ModelKind::Resnet => resnet(width, classes, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{LayerDesc, Mode};
    use qsnc_tensor::Tensor;

    fn conv_count(net: &Sequential) -> usize {
        net.synaptic_descriptors()
            .iter()
            .filter(|d| matches!(d, LayerDesc::Conv { .. }))
            .count()
    }

    fn fc_count(net: &Sequential) -> usize {
        net.synaptic_descriptors()
            .iter()
            .filter(|d| matches!(d, LayerDesc::Linear { .. }))
            .count()
    }

    #[test]
    fn lenet_matches_table1_structure() {
        let mut rng = TensorRng::seed(0);
        let net = lenet(1.0, 10, &mut rng);
        assert_eq!(conv_count(&net), 2);
        assert_eq!(fc_count(&net), 2);
    }

    #[test]
    fn lenet_forward_shape() {
        let mut rng = TensorRng::seed(1);
        let mut net = lenet(0.5, 10, &mut rng);
        let x = Tensor::zeros([2, 1, 28, 28]);
        assert_eq!(net.forward(&x, Mode::Eval).dims(), &[2, 10]);
    }

    #[test]
    fn alexnet_matches_table1_structure() {
        let mut rng = TensorRng::seed(2);
        let net = alexnet(1.0, 10, &mut rng);
        assert_eq!(conv_count(&net), 5); // 1×(5×5) + 4×(3×3)
        assert_eq!(fc_count(&net), 3);
        let kernels: Vec<usize> = net
            .synaptic_descriptors()
            .iter()
            .filter_map(|d| match d {
                LayerDesc::Conv { kernel, .. } => Some(*kernel),
                _ => None,
            })
            .collect();
        assert_eq!(kernels, vec![5, 3, 3, 3, 3]);
    }

    #[test]
    fn alexnet_forward_shape() {
        let mut rng = TensorRng::seed(3);
        let mut net = alexnet(0.25, 10, &mut rng);
        let x = Tensor::zeros([1, 3, 32, 32]);
        assert_eq!(net.forward(&x, Mode::Eval).dims(), &[1, 10]);
    }

    #[test]
    fn resnet_has_17_threebythree_convs() {
        let mut rng = TensorRng::seed(4);
        let net = resnet(1.0, 10, &mut rng);
        let three_by_three = net
            .synaptic_descriptors()
            .iter()
            .filter(|d| matches!(d, LayerDesc::Conv { kernel: 3, .. }))
            .count();
        assert_eq!(three_by_three, 17);
        assert_eq!(fc_count(&net), 1);
    }

    #[test]
    fn resnet_forward_shape() {
        let mut rng = TensorRng::seed(5);
        let mut net = resnet(0.25, 10, &mut rng);
        let x = Tensor::zeros([1, 3, 32, 32]);
        assert_eq!(net.forward(&x, Mode::Eval).dims(), &[1, 10]);
    }

    #[test]
    fn resnet_trains_one_step() {
        use crate::loss::softmax_cross_entropy;
        use crate::optim::{Optimizer, Sgd};
        let mut rng = TensorRng::seed(6);
        let mut net = resnet(0.25, 10, &mut rng);
        let x = qsnc_tensor::init::uniform([2, 3, 32, 32], 0.0, 1.0, &mut rng);
        let logits = net.forward(&x, Mode::Train);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss.is_finite());
        net.backward(&grad);
        let mut opt = Sgd::new(0.01);
        opt.step(&mut net.params());
    }

    #[test]
    fn width_scales_weight_count() {
        let mut rng = TensorRng::seed(7);
        let full = lenet(1.0, 10, &mut rng).weight_count();
        let half = lenet(0.5, 10, &mut rng).weight_count();
        assert!(half < full);
    }

    #[test]
    fn table5_layer_counts() {
        assert_eq!(ModelKind::Lenet.table5_layer_count(), 4);
        assert_eq!(ModelKind::Alexnet.table5_layer_count(), 8);
        assert_eq!(ModelKind::Resnet.table5_layer_count(), 18);
    }
}
