//! The [`Layer`] trait: the unit of composition for every network in qsnc.

use qsnc_tensor::Tensor;

/// Whether a forward pass is part of training or inference.
///
/// Training mode enables behaviour like dropout masking and batch-norm
/// statistics updates; evaluation mode uses running statistics and disables
/// stochastic regularizers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Forward pass during training (caches state for backward).
    Train,
    /// Forward pass during inference.
    Eval,
}

/// A mutable view of one learnable parameter and its gradient accumulator.
///
/// Returned by [`Layer::params`]; optimizers iterate these views to apply
/// updates, and the weight-quantization passes in `qsnc-quant` use them to
/// rewrite weights in place.
#[derive(Debug)]
pub struct Param<'a> {
    /// Human-readable identifier, e.g. `"conv1.weight"`.
    pub name: String,
    /// The parameter tensor.
    pub value: &'a mut Tensor,
    /// Gradient of the loss with respect to `value`, accumulated by
    /// `backward`.
    pub grad: &'a mut Tensor,
    /// `true` for weight matrices/filters that should be quantized and decay;
    /// `false` for biases and batch-norm affine parameters.
    pub is_weight: bool,
}

/// Structural description of a layer, used by the crossbar mapper (Eq. 1 of
/// the paper) and the report generators.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum LayerDesc {
    /// 2-D convolution with `out_channels` filters of size
    /// `kernel × kernel × in_channels`.
    Conv {
        /// Input channel count (the paper's `d_i = J^{i-1}`).
        in_channels: usize,
        /// Filter count (the paper's `J^i`).
        out_channels: usize,
        /// Square kernel size (the paper's `s_i`).
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
    /// Fully connected layer `out × in`.
    Linear {
        /// Input feature count.
        in_features: usize,
        /// Output feature count.
        out_features: usize,
    },
    /// A layer with no synaptic weights (activation, pooling, reshape…).
    Other,
}

/// One stage of a feed-forward network.
///
/// A layer owns its parameters and the activations it must remember between
/// `forward` and `backward`. Calling [`backward`](Layer::backward) before a
/// training-mode [`forward`](Layer::forward) is a logic error and may panic.
///
/// The trait is object-safe: networks store `Box<dyn Layer>`, which lets the
/// quantization crate interleave its fake-quantization and regularizer
/// layers with the standard ones defined here.
///
/// `Send + Sync` are supertraits so a network can be shared immutably with
/// worker threads, which then make their own mutable copies via
/// [`clone_layer`](Layer::clone_layer) for batch-parallel evaluation. Layers
/// hold plain data (or thread-safe handles like the quantization switch), so
/// this costs implementations nothing.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Short human-readable layer kind, e.g. `"conv2d"`.
    fn name(&self) -> &'static str;

    /// Upcast for downcasting to the concrete layer type; deployment code
    /// (the memristor mapper) uses this to read layer internals.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable upcast for downcasting, used by calibration passes that
    /// rewrite layer internals in place.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Boxed deep copy of the layer: parameters, configuration, and running
    /// statistics. Cached training activations may or may not be copied —
    /// a clone is only guaranteed ready for `forward`, not `backward`.
    ///
    /// Batch-parallel evaluation relies on this to give every worker thread
    /// its own copy of the network, since `forward` takes `&mut self`.
    /// Stages sharing state through handles (e.g. a quantization switch)
    /// share that state with their clones.
    fn clone_layer(&self) -> Box<dyn Layer>;

    /// Computes the layer output for `x`.
    ///
    /// In [`Mode::Train`], the layer caches whatever it needs for
    /// [`backward`](Layer::backward).
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor;

    /// Propagates `grad` (∂loss/∂output) backwards, accumulating parameter
    /// gradients and returning ∂loss/∂input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if no training-mode forward preceded this
    /// call or if `grad` has the wrong shape.
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// Mutable views of the layer's learnable parameters, if any.
    fn params(&mut self) -> Vec<Param<'_>> {
        Vec::new()
    }

    /// Extra loss contributed by the layer (e.g. an activation
    /// regularizer). Evaluated after `forward`.
    fn regularization_loss(&self) -> f32 {
        0.0
    }

    /// A copy of the layer's most recent output, when the layer chooses to
    /// expose one (used for activation histograms, Fig. 4 of the paper).
    fn output_tap(&self) -> Option<Tensor> {
        None
    }

    /// Structural description for hardware mapping and reporting.
    fn descriptor(&self) -> LayerDesc {
        LayerDesc::Other
    }

    /// Descriptors of synaptic layers nested inside this layer, for
    /// container layers such as residual blocks. `None` for plain layers.
    fn nested_descriptors(&self) -> Option<Vec<LayerDesc>> {
        None
    }

    /// Mutable access to nested layer stacks, for container layers. Used by
    /// `qsnc-quant` to splice fake-quantization stages inside residual
    /// blocks. Plain layers return an empty vector.
    fn inner_stacks_mut(&mut self) -> Vec<&mut Vec<Box<dyn Layer>>> {
        Vec::new()
    }

    /// Clears all accumulated parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params() {
            p.grad.fill(0.0);
        }
    }
}

impl LayerDesc {
    /// Number of synaptic weights this layer contributes (excluding biases),
    /// matching the "Weights" row of Table 1.
    pub fn weight_count(&self) -> usize {
        match *self {
            LayerDesc::Conv {
                in_channels,
                out_channels,
                kernel,
                ..
            } => in_channels * out_channels * kernel * kernel,
            LayerDesc::Linear {
                in_features,
                out_features,
            } => in_features * out_features,
            LayerDesc::Other => 0,
        }
    }

    /// Returns `true` for layers with synaptic weights (conv / linear).
    pub fn is_synaptic(&self) -> bool {
        !matches!(self, LayerDesc::Other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_count_conv() {
        let d = LayerDesc::Conv {
            in_channels: 3,
            out_channels: 8,
            kernel: 5,
            stride: 1,
            padding: 2,
        };
        assert_eq!(d.weight_count(), 3 * 8 * 25);
        assert!(d.is_synaptic());
    }

    #[test]
    fn weight_count_linear_and_other() {
        let d = LayerDesc::Linear {
            in_features: 10,
            out_features: 4,
        };
        assert_eq!(d.weight_count(), 40);
        assert_eq!(LayerDesc::Other.weight_count(), 0);
        assert!(!LayerDesc::Other.is_synaptic());
    }
}
