//! Loss functions: value and gradient in one pass.

use qsnc_tensor::{softmax_rows, Tensor};

/// Softmax cross-entropy over `[n, classes]` logits against integer labels.
///
/// Returns `(mean loss, ∂loss/∂logits)`. This is the `E_D(W)` term of the
/// paper's Eq. 2; the regularization terms are added by the network layers.
///
/// # Panics
///
/// Panics if `logits` is not rank 2, `labels.len()` differs from the batch
/// size, or any label is out of range.
///
/// # Examples
///
/// ```
/// use qsnc_nn::loss::softmax_cross_entropy;
/// use qsnc_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![5.0, -5.0], [1, 2]);
/// let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
/// assert!(loss < 0.01);           // confident and correct → tiny loss
/// assert_eq!(grad.dims(), &[1, 2]);
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().rank(), 2, "logits must be [n, classes]");
    let (n, classes) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), n, "label count {} != batch size {}", labels.len(), n);

    let probs = softmax_rows(logits);
    let p = probs.as_slice();
    let mut loss = 0.0f32;
    let mut grad = probs.clone().into_vec();
    let inv_n = 1.0 / n as f32;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range for {classes} classes");
        // Clamp avoids -inf on a fully wrong, saturated prediction.
        loss -= p[r * classes + label].max(1e-12).ln();
        grad[r * classes + label] -= 1.0;
    }
    for g in &mut grad {
        *g *= inv_n;
    }
    (loss * inv_n, Tensor::from_vec(grad, [n, classes]))
}

/// Mean squared error between predictions and targets of identical shape.
///
/// Returns `(mean loss, ∂loss/∂pred)`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len() as f32;
    let diff = pred - target;
    let loss = diff.iter().map(|&d| d * d).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Number of correctly classified rows of `[n, classes]` logits.
///
/// The integer form lets evaluation sum exact counts across batches (and
/// across worker threads) instead of re-weighting per-batch ratios — the
/// result cannot depend on how the batches were grouped or sharded.
///
/// # Panics
///
/// Panics if `logits` is not rank 2 or the label count mismatches.
pub fn num_correct(logits: &Tensor, labels: &[usize]) -> usize {
    assert_eq!(logits.shape().rank(), 2, "logits must be [n, classes]");
    assert_eq!(labels.len(), logits.dims()[0], "label count mismatch");
    let preds = logits.argmax_rows();
    preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count()
}

/// Classification accuracy of `[n, classes]` logits against labels.
///
/// # Panics
///
/// Panics if `logits` is not rank 2 or the label count mismatches.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    if labels.is_empty() {
        assert_eq!(logits.shape().rank(), 2, "logits must be [n, classes]");
        assert_eq!(labels.len(), logits.dims()[0], "label count mismatch");
        return 0.0;
    }
    num_correct(logits, labels) as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros([2, 4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for r in 0..2 {
            let s: f32 = grad.as_slice()[r * 4..(r + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_gradient_sign() {
        let logits = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        // Correct class gradient is negative (push up), wrong positive.
        assert!(grad.as_slice()[1] < 0.0);
        assert!(grad.as_slice()[0] > 0.0);
    }

    #[test]
    fn cross_entropy_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2], [1, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2]);
        let eps = 1e-3;
        for i in 0..3 {
            let mut plus = logits.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&plus, &[2]);
            let (lm, _) = softmax_cross_entropy(&minus, &[2]);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad.as_slice()[i]).abs() < 1e-3,
                "dim {i}: numeric {num} vs analytic {}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        softmax_cross_entropy(&Tensor::zeros([1, 2]), &[5]);
    }

    #[test]
    fn mse_value_and_grad() {
        let pred = Tensor::from_slice(&[1.0, 2.0]);
        let target = Tensor::from_slice(&[0.0, 0.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], [3, 2]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }
}
