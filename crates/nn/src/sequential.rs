//! The [`Sequential`] network container.

use crate::layer::{Layer, LayerDesc, Mode, Param};
use qsnc_tensor::Tensor;

/// A feed-forward network: an ordered stack of [`Layer`]s.
///
/// `Sequential` is the single network type in qsnc — residual topologies are
/// expressed through the [`Residual`](crate::layers::Residual) layer, and
/// quantization-aware training inserts extra layers from `qsnc-quant`
/// between the standard ones.
///
/// # Examples
///
/// ```
/// use qsnc_nn::{Sequential, Mode};
/// use qsnc_nn::layers::{Linear, Relu};
/// use qsnc_tensor::{Tensor, TensorRng};
///
/// let mut rng = TensorRng::seed(0);
/// let mut net = Sequential::new();
/// net.push(Linear::new("fc1", 4, 8, &mut rng));
/// net.push(Relu::new());
/// net.push(Linear::new("fc2", 8, 2, &mut rng));
///
/// let x = Tensor::zeros([1, 4]);
/// let logits = net.forward(&x, Mode::Eval);
/// assert_eq!(logits.dims(), &[1, 2]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential").field("layers", &names).finish()
    }
}

impl Clone for Sequential {
    /// Deep copy via [`Layer::clone_layer`]: parameters, configuration, and
    /// running statistics are copied; shared handles (the quantization
    /// switch) stay shared. Batch-parallel evaluation clones one network
    /// per worker thread this way.
    fn clone(&self) -> Self {
        Sequential {
            layers: self.layers.iter().map(|l| l.clone_layer()).collect(),
        }
    }
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Inserts a boxed layer at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index > len()`.
    pub fn insert_boxed(&mut self, index: usize, layer: Box<dyn Layer>) {
        self.layers.insert(index, layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layer stack.
    pub fn layers_mut(&mut self) -> &mut Vec<Box<dyn Layer>> {
        &mut self.layers
    }

    /// Runs a forward pass through every layer.
    ///
    /// When telemetry is recording, each layer's wall-clock time is tracked
    /// under the span `nn.forward.{index:02}.{name}` and the network output
    /// contributes to the `nn.forward.elements` / `nn.forward.zeros`
    /// sparsity counters.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut h = x.clone();
        let instrument = qsnc_telemetry::enabled();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let _span = if instrument {
                Some(qsnc_telemetry::start_span(format!(
                    "nn.forward.{i:02}.{}",
                    layer.name()
                )))
            } else {
                None
            };
            h = layer.forward(&h, mode);
        }
        if instrument {
            let zeros = h.iter().filter(|&&v| v == 0.0).count() as u64;
            qsnc_telemetry::counter_add("nn.forward.elements", h.len() as u64);
            qsnc_telemetry::counter_add("nn.forward.zeros", zeros);
        }
        h
    }

    /// Propagates a loss gradient backwards through every layer,
    /// accumulating parameter gradients.
    ///
    /// When telemetry is recording, each layer's wall-clock time is tracked
    /// under the span `nn.backward.{index:02}.{name}`.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        let instrument = qsnc_telemetry::enabled();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            let _span = if instrument {
                Some(qsnc_telemetry::start_span(format!(
                    "nn.backward.{i:02}.{}",
                    layer.name()
                )))
            } else {
                None
            };
            g = layer.backward(&g);
        }
        g
    }

    /// Mutable views of every learnable parameter in network order.
    pub fn params(&mut self) -> Vec<Param<'_>> {
        self.layers.iter_mut().flat_map(|l| l.params()).collect()
    }

    /// Clears all parameter gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total regularization loss across all layers (e.g. the Neuron
    /// Convergence terms added by `qsnc-quant`). Valid after a forward pass.
    pub fn regularization_loss(&self) -> f32 {
        self.layers.iter().map(|l| l.regularization_loss()).sum()
    }

    /// Most recent activation snapshots from layers that expose one (ReLU
    /// taps), in network order. Used by the Fig. 4 histogram experiment.
    pub fn activation_taps(&self) -> Vec<Tensor> {
        self.layers.iter().filter_map(|l| l.output_tap()).collect()
    }

    /// Structural descriptors of all synaptic layers, including those nested
    /// in residual blocks, in network order. This is the input to the Eq. 1
    /// crossbar mapper.
    pub fn synaptic_descriptors(&self) -> Vec<LayerDesc> {
        let mut out = Vec::new();
        for layer in &self.layers {
            let d = layer.descriptor();
            if d.is_synaptic() {
                out.push(d);
            } else if let Some(nested) = layer.nested_descriptors() {
                out.extend(nested);
            }
        }
        out
    }

    /// Total synaptic weight count (Table 1's "Weights" row).
    pub fn weight_count(&self) -> usize {
        self.synaptic_descriptors()
            .iter()
            .map(LayerDesc::weight_count)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear, Relu};
    use qsnc_tensor::TensorRng;

    fn tiny_net(rng: &mut TensorRng) -> Sequential {
        let mut net = Sequential::new();
        net.push(Linear::new("fc1", 4, 8, rng));
        net.push(Relu::new());
        net.push(Linear::new("fc2", 8, 3, rng));
        net
    }

    #[test]
    fn forward_backward_shapes() {
        let mut rng = TensorRng::seed(0);
        let mut net = tiny_net(&mut rng);
        let x = qsnc_tensor::init::uniform([5, 4], -1.0, 1.0, &mut rng);
        let y = net.forward(&x, Mode::Train);
        assert_eq!(y.dims(), &[5, 3]);
        let dx = net.backward(&Tensor::ones([5, 3]));
        assert_eq!(dx.dims(), &[5, 4]);
    }

    #[test]
    fn params_enumerates_all() {
        let mut rng = TensorRng::seed(1);
        let mut net = tiny_net(&mut rng);
        let params = net.params();
        assert_eq!(params.len(), 4);
        assert_eq!(params[0].name, "fc1.weight");
        assert!(params[0].is_weight);
        assert!(!params[1].is_weight);
    }

    #[test]
    fn zero_grad_clears() {
        let mut rng = TensorRng::seed(2);
        let mut net = tiny_net(&mut rng);
        let x = qsnc_tensor::init::uniform([2, 4], -1.0, 1.0, &mut rng);
        net.forward(&x, Mode::Train);
        net.backward(&Tensor::ones([2, 3]));
        assert!(net.params().iter().any(|p| p.grad.norm_l2() > 0.0));
        net.zero_grad();
        assert!(net.params().iter().all(|p| p.grad.norm_l2() == 0.0));
    }

    #[test]
    fn taps_follow_relu() {
        let mut rng = TensorRng::seed(3);
        let mut net = tiny_net(&mut rng);
        let x = qsnc_tensor::init::uniform([2, 4], -1.0, 1.0, &mut rng);
        net.forward(&x, Mode::Eval);
        let taps = net.activation_taps();
        assert_eq!(taps.len(), 1);
        assert_eq!(taps[0].dims(), &[2, 8]);
    }

    #[test]
    fn descriptors_and_weight_count() {
        let mut rng = TensorRng::seed(4);
        let mut net = Sequential::new();
        net.push(Flatten::new());
        net.push(Linear::new("fc", 10, 5, &mut rng));
        let desc = net.synaptic_descriptors();
        assert_eq!(desc.len(), 1);
        assert_eq!(net.weight_count(), 50);
    }
}
