//! 2-D batch normalization.

use crate::layer::{Layer, Mode, Param};
use qsnc_tensor::Tensor;

/// Batch normalization over the channel axis of `[n, c, h, w]` tensors.
///
/// Needed to train the ResNet variant of Table 1 to convergence. Running
/// statistics follow the usual exponential moving average with the given
/// `momentum`.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    label: String,
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    // Cached by training-mode forward.
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    dims: [usize; 4],
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(label: impl Into<String>, channels: usize) -> Self {
        assert!(channels > 0, "channel count must be positive");
        BatchNorm2d {
            label: label.into(),
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Tensor::ones([channels]),
            beta: Tensor::zeros([channels]),
            grad_gamma: Tensor::zeros([channels]),
            grad_beta: Tensor::zeros([channels]),
            running_mean: Tensor::zeros([channels]),
            running_var: Tensor::ones([channels]),
            cache: None,
        }
    }

    /// The equivalent per-channel affine transform in evaluation mode:
    /// `y = a·x + b` with `a = γ/√(σ²+ε)`, `b = β − a·μ` (running stats).
    /// Used to fold batch norm into the preceding convolution at
    /// deployment.
    pub fn eval_affine(&self) -> (Vec<f32>, Vec<f32>) {
        let gamma = self.gamma.as_slice();
        let beta = self.beta.as_slice();
        let mean = self.running_mean.as_slice();
        let var = self.running_var.as_slice();
        let mut a = vec![0.0f32; self.channels];
        let mut b = vec![0.0f32; self.channels];
        for c in 0..self.channels {
            a[c] = gamma[c] / (var[c] + self.eps).sqrt();
            b[c] = beta[c] - a[c] * mean[c];
        }
        (a, b)
    }

    fn stats(x: &Tensor, channels: usize) -> (Vec<f32>, Vec<f32>) {
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        assert_eq!(c, channels, "batchnorm channel mismatch");
        let m = (n * h * w) as f32;
        let xs = x.as_slice();
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for in_ in 0..n {
            for (ic, acc) in mean.iter_mut().enumerate() {
                let off = (in_ * c + ic) * h * w;
                *acc += xs[off..off + h * w].iter().sum::<f32>();
            }
        }
        for v in &mut mean {
            *v /= m;
        }
        for in_ in 0..n {
            for (ic, m) in mean.iter().enumerate() {
                let off = (in_ * c + ic) * h * w;
                var[ic] += xs[off..off + h * w]
                    .iter()
                    .map(|&x| (x - m) * (x - m))
                    .sum::<f32>();
            }
        }
        for v in &mut var {
            *v /= m;
        }
        (mean, var)
    }
}

impl Layer for BatchNorm2d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "batchnorm2d"
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(x.shape().rank(), 4, "batchnorm2d expects [n,c,h,w]");
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let (mean, var) = if mode == Mode::Train {
            let (mean, var) = Self::stats(x, self.channels);
            for ic in 0..c {
                let rm = self.running_mean.as_mut_slice();
                rm[ic] = (1.0 - self.momentum) * rm[ic] + self.momentum * mean[ic];
                let rv = self.running_var.as_mut_slice();
                rv[ic] = (1.0 - self.momentum) * rv[ic] + self.momentum * var[ic];
            }
            (mean, var)
        } else {
            (
                self.running_mean.as_slice().to_vec(),
                self.running_var.as_slice().to_vec(),
            )
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let xs = x.as_slice();
        let mut x_hat = vec![0.0f32; x.len()];
        let mut y = vec![0.0f32; x.len()];
        let gamma = self.gamma.as_slice();
        let beta = self.beta.as_slice();
        for in_ in 0..n {
            for ic in 0..c {
                let off = (in_ * c + ic) * h * w;
                for i in off..off + h * w {
                    let xh = (xs[i] - mean[ic]) * inv_std[ic];
                    x_hat[i] = xh;
                    y[i] = gamma[ic] * xh + beta[ic];
                }
            }
        }
        if mode == Mode::Train {
            self.cache = Some(BnCache {
                x_hat: Tensor::from_vec(x_hat, x.dims()),
                inv_std,
                dims: [n, c, h, w],
            });
        }
        Tensor::from_vec(y, x.dims())
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("batchnorm2d backward called before training-mode forward");
        let [n, c, h, w] = cache.dims;
        assert_eq!(grad.dims(), &[n, c, h, w], "batchnorm2d grad shape mismatch");
        let m = (n * h * w) as f32;
        let gs = grad.as_slice();
        let xh = cache.x_hat.as_slice();

        // Per-channel reductions.
        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xhat = vec![0.0f32; c];
        for in_ in 0..n {
            for ic in 0..c {
                let off = (in_ * c + ic) * h * w;
                for i in off..off + h * w {
                    sum_dy[ic] += gs[i];
                    sum_dy_xhat[ic] += gs[i] * xh[i];
                }
            }
        }
        for ic in 0..c {
            self.grad_gamma.as_mut_slice()[ic] += sum_dy_xhat[ic];
            self.grad_beta.as_mut_slice()[ic] += sum_dy[ic];
        }

        let gamma = self.gamma.as_slice();
        let mut dx = vec![0.0f32; grad.len()];
        for in_ in 0..n {
            for ic in 0..c {
                let off = (in_ * c + ic) * h * w;
                let scale = gamma[ic] * cache.inv_std[ic];
                for i in off..off + h * w {
                    dx[i] = scale * (gs[i] - sum_dy[ic] / m - xh[i] * sum_dy_xhat[ic] / m);
                }
            }
        }
        Tensor::from_vec(dx, grad.dims())
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        vec![
            Param {
                name: format!("{}.gamma", self.label),
                value: &mut self.gamma,
                grad: &mut self.grad_gamma,
                is_weight: false,
            },
            Param {
                name: format!("{}.beta", self.label),
                value: &mut self.beta,
                grad: &mut self.grad_beta,
                is_weight: false,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsnc_tensor::TensorRng;

    #[test]
    fn train_forward_normalizes_per_channel() {
        let mut rng = TensorRng::seed(0);
        let x = qsnc_tensor::init::normal([4, 3, 5, 5], 3.0, 2.0, &mut rng);
        let mut bn = BatchNorm2d::new("bn", 3);
        let y = bn.forward(&x, Mode::Train);
        // Each channel of the output should be ~N(0,1).
        let (n, c, h, w) = (4, 3, 5, 5);
        for ic in 0..c {
            let mut vals = Vec::new();
            for in_ in 0..n {
                let off = (in_ * c + ic) * h * w;
                vals.extend_from_slice(&y.as_slice()[off..off + h * w]);
            }
            let t = Tensor::from_slice(&vals);
            assert!(t.mean().abs() < 1e-4, "mean {}", t.mean());
            assert!((t.std() - 1.0).abs() < 1e-2, "std {}", t.std());
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = TensorRng::seed(1);
        let mut bn = BatchNorm2d::new("bn", 2);
        // Train a few batches so running stats settle.
        for _ in 0..200 {
            let x = qsnc_tensor::init::normal([8, 2, 3, 3], 5.0, 3.0, &mut rng);
            bn.forward(&x, Mode::Train);
        }
        let x = qsnc_tensor::init::normal([8, 2, 3, 3], 5.0, 3.0, &mut rng);
        let y = bn.forward(&x, Mode::Eval);
        // Should approximately normalize fresh data from the same dist.
        assert!(y.mean().abs() < 0.3, "mean {}", y.mean());
        assert!((y.std() - 1.0).abs() < 0.3, "std {}", y.std());
    }

    #[test]
    fn backward_gradient_sums() {
        let mut rng = TensorRng::seed(2);
        let x = qsnc_tensor::init::normal([2, 2, 4, 4], 0.0, 1.0, &mut rng);
        let mut bn = BatchNorm2d::new("bn", 2);
        bn.forward(&x, Mode::Train);
        let g = Tensor::ones([2, 2, 4, 4]);
        let dx = bn.backward(&g);
        assert_eq!(dx.dims(), x.dims());
        // dBeta is the per-channel gradient sum: 2*4*4 = 32 per channel.
        assert_eq!(bn.grad_beta.as_slice(), &[32.0, 32.0]);
        // With dy = 1 everywhere, dx sums to ~0 (normalization removes mean).
        assert!(dx.sum().abs() < 1e-3);
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut bn = BatchNorm2d::new("bn", 1);
        bn.gamma = Tensor::from_slice(&[2.0]);
        bn.beta = Tensor::from_slice(&[1.0]);
        let x = Tensor::from_vec(vec![-1.0, 1.0], [2, 1, 1, 1]);
        let y = bn.forward(&x, Mode::Train);
        // x_hat = ±1 (mean 0, var 1), so y = ±2 + 1.
        assert!((y.as_slice()[0] - (-1.0)).abs() < 1e-3);
        assert!((y.as_slice()[1] - 3.0).abs() < 1e-3);
    }
}
