//! Residual (skip-connection) blocks for the ResNet of Table 1.

use crate::layer::{Layer, LayerDesc, Mode, Param};
use qsnc_tensor::Tensor;

/// A residual block: `y = body(x) + shortcut(x)`.
///
/// The body is an arbitrary layer stack; the shortcut is usually the
/// identity, or a 1×1 strided convolution when the block changes resolution
/// or width. Both paths are trained; the sum's gradient fans out to both.
pub struct Residual {
    body: Vec<Box<dyn Layer>>,
    shortcut: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Residual")
            .field("body_layers", &self.body.len())
            .field("shortcut_layers", &self.shortcut.len())
            .finish()
    }
}

impl Residual {
    /// Creates a residual block with an identity shortcut.
    pub fn new(body: Vec<Box<dyn Layer>>) -> Self {
        Residual {
            body,
            shortcut: Vec::new(),
        }
    }

    /// Creates a residual block with a projection shortcut (e.g. a strided
    /// 1×1 convolution when the body changes shape).
    pub fn with_shortcut(body: Vec<Box<dyn Layer>>, shortcut: Vec<Box<dyn Layer>>) -> Self {
        Residual { body, shortcut }
    }

    /// The layers of the main path.
    pub fn body(&self) -> &[Box<dyn Layer>] {
        &self.body
    }

    /// Mutable access to the main path (used by quantization rewrites).
    pub fn body_mut(&mut self) -> &mut Vec<Box<dyn Layer>> {
        &mut self.body
    }

    /// The layers of the shortcut path (empty means identity).
    pub fn shortcut_layers(&self) -> &[Box<dyn Layer>] {
        &self.shortcut
    }

    /// All synaptic descriptors within the block (body then shortcut).
    pub fn inner_descriptors(&self) -> Vec<LayerDesc> {
        self.body
            .iter()
            .chain(self.shortcut.iter())
            .map(|l| l.descriptor())
            .filter(|d| d.is_synaptic())
            .collect()
    }
}

impl Layer for Residual {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Residual {
            body: self.body.iter().map(|l| l.clone_layer()).collect(),
            shortcut: self.shortcut.iter().map(|l| l.clone_layer()).collect(),
        })
    }

    fn name(&self) -> &'static str {
        "residual"
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut main = x.clone();
        for layer in &mut self.body {
            main = layer.forward(&main, mode);
        }
        let mut skip = x.clone();
        for layer in &mut self.shortcut {
            skip = layer.forward(&skip, mode);
        }
        assert_eq!(
            main.shape(),
            skip.shape(),
            "residual paths disagree: body {} vs shortcut {}",
            main.shape(),
            skip.shape()
        );
        &main + &skip
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g_main = grad.clone();
        for layer in self.body.iter_mut().rev() {
            g_main = layer.backward(&g_main);
        }
        let mut g_skip = grad.clone();
        for layer in self.shortcut.iter_mut().rev() {
            g_skip = layer.backward(&g_skip);
        }
        &g_main + &g_skip
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        self.body
            .iter_mut()
            .chain(self.shortcut.iter_mut())
            .flat_map(|l| l.params())
            .collect()
    }

    fn regularization_loss(&self) -> f32 {
        self.body
            .iter()
            .chain(self.shortcut.iter())
            .map(|l| l.regularization_loss())
            .sum()
    }

    fn nested_descriptors(&self) -> Option<Vec<LayerDesc>> {
        Some(self.inner_descriptors())
    }

    fn inner_stacks_mut(&mut self) -> Vec<&mut Vec<Box<dyn Layer>>> {
        vec![&mut self.body, &mut self.shortcut]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Identity, Relu};
    use qsnc_tensor::{Conv2dSpec, TensorRng};

    #[test]
    fn identity_shortcut_adds_input() {
        // Body is identity too, so output = 2x.
        let mut block = Residual::new(vec![Box::new(Identity::new())]);
        let x = Tensor::from_slice(&[1.0, 2.0]).reshape([1, 2]);
        let y = block.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[2.0, 4.0]);
        let dx = block.backward(&Tensor::ones([1, 2]));
        assert_eq!(dx.as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn conv_body_shapes() {
        let mut rng = TensorRng::seed(0);
        let spec = Conv2dSpec::new(3, 1, 1);
        let body: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new("a", 4, 4, spec, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Conv2d::new("b", 4, 4, spec, &mut rng)),
        ];
        let mut block = Residual::new(body);
        let x = qsnc_tensor::init::uniform([2, 4, 6, 6], -1.0, 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train);
        assert_eq!(y.dims(), x.dims());
        let dx = block.backward(&Tensor::ones(y.dims()));
        assert_eq!(dx.dims(), x.dims());
        assert_eq!(block.params().len(), 4); // 2 convs × (weight, bias)
        assert_eq!(block.inner_descriptors().len(), 2);
    }

    #[test]
    fn projection_shortcut_changes_width() {
        let mut rng = TensorRng::seed(1);
        let body: Vec<Box<dyn Layer>> = vec![Box::new(Conv2d::new(
            "body",
            2,
            4,
            Conv2dSpec::new(3, 1, 1),
            &mut rng,
        ))];
        let shortcut: Vec<Box<dyn Layer>> = vec![Box::new(Conv2d::new(
            "proj",
            2,
            4,
            Conv2dSpec::new(1, 1, 0),
            &mut rng,
        ))];
        let mut block = Residual::with_shortcut(body, shortcut);
        let x = qsnc_tensor::init::uniform([1, 2, 5, 5], -1.0, 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train);
        assert_eq!(y.dims(), &[1, 4, 5, 5]);
    }

    #[test]
    #[should_panic(expected = "residual paths disagree")]
    fn mismatched_paths_panic() {
        let mut rng = TensorRng::seed(2);
        let body: Vec<Box<dyn Layer>> = vec![Box::new(Conv2d::new(
            "body",
            2,
            4,
            Conv2dSpec::new(3, 1, 1),
            &mut rng,
        ))];
        let mut block = Residual::new(body);
        let x = Tensor::zeros([1, 2, 5, 5]);
        block.forward(&x, Mode::Eval);
    }
}
