//! Spatial pooling layers.

use crate::layer::{Layer, Mode};
use qsnc_tensor::{Conv2dSpec, Tensor};

/// Max pooling over `[n, c, h, w]` inputs with a square window.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    spec: Conv2dSpec,
    // flat input index of each output's max, plus shapes, cached for backward.
    argmax: Option<Vec<usize>>,
    input_dims: Option<[usize; 4]>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given window and stride.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    pub fn new(window: usize, stride: usize) -> Self {
        MaxPool2d {
            spec: Conv2dSpec::new(window, stride, 0),
            argmax: None,
            input_dims: None,
        }
    }

    /// Pooling window edge length.
    pub fn window(&self) -> usize {
        self.spec.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.spec.stride
    }
}

impl Layer for MaxPool2d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(x.shape().rank(), 4, "maxpool2d expects [n,c,h,w]");
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let oh = self.spec.output_size(h);
        let ow = self.spec.output_size(w);
        let k = self.spec.kernel;
        let s = self.spec.stride;
        let xs = x.as_slice();
        let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
        let mut arg = vec![0usize; n * c * oh * ow];
        for in_ in 0..n {
            for ic in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let oidx = ((in_ * c + ic) * oh + oy) * ow + ox;
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy * s + ky;
                                let ix = ox * s + kx;
                                let iidx = ((in_ * c + ic) * h + iy) * w + ix;
                                if xs[iidx] > out[oidx] {
                                    out[oidx] = xs[iidx];
                                    arg[oidx] = iidx;
                                }
                            }
                        }
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.argmax = Some(arg);
            self.input_dims = Some([n, c, h, w]);
        }
        Tensor::from_vec(out, [n, c, oh, ow])
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let arg = self
            .argmax
            .as_ref()
            .expect("maxpool2d backward called before training-mode forward");
        let [n, c, h, w] = self.input_dims.expect("missing cached dims");
        assert_eq!(grad.len(), arg.len(), "maxpool2d grad length mismatch");
        let mut dx = Tensor::zeros([n, c, h, w]);
        let data = dx.as_mut_slice();
        for (&g, &idx) in grad.iter().zip(arg.iter()) {
            data[idx] += g;
        }
        dx
    }
}

/// Average pooling over `[n, c, h, w]` inputs with a square window.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    spec: Conv2dSpec,
    input_dims: Option<[usize; 4]>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with the given window and stride.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    pub fn new(window: usize, stride: usize) -> Self {
        AvgPool2d {
            spec: Conv2dSpec::new(window, stride, 0),
            input_dims: None,
        }
    }

    /// Global average pooling helper: a window covering the full map.
    pub fn global(h: usize) -> Self {
        AvgPool2d::new(h, 1)
    }

    /// Pooling window edge length.
    pub fn window(&self) -> usize {
        self.spec.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.spec.stride
    }
}

impl Layer for AvgPool2d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "avgpool2d"
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(x.shape().rank(), 4, "avgpool2d expects [n,c,h,w]");
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let oh = self.spec.output_size(h);
        let ow = self.spec.output_size(w);
        let k = self.spec.kernel;
        let s = self.spec.stride;
        let norm = 1.0 / (k * k) as f32;
        let xs = x.as_slice();
        let mut out = vec![0.0f32; n * c * oh * ow];
        for in_ in 0..n {
            for ic in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..k {
                            for kx in 0..k {
                                acc += xs[((in_ * c + ic) * h + oy * s + ky) * w + ox * s + kx];
                            }
                        }
                        out[((in_ * c + ic) * oh + oy) * ow + ox] = acc * norm;
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.input_dims = Some([n, c, h, w]);
        }
        Tensor::from_vec(out, [n, c, oh, ow])
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let [n, c, h, w] = self
            .input_dims
            .expect("avgpool2d backward called before training-mode forward");
        let oh = self.spec.output_size(h);
        let ow = self.spec.output_size(w);
        let k = self.spec.kernel;
        let s = self.spec.stride;
        let norm = 1.0 / (k * k) as f32;
        assert_eq!(grad.dims(), &[n, c, oh, ow], "avgpool2d grad shape mismatch");
        let gs = grad.as_slice();
        let mut dx = Tensor::zeros([n, c, h, w]);
        let data = dx.as_mut_slice();
        for in_ in 0..n {
            for ic in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = gs[((in_ * c + ic) * oh + oy) * ow + ox] * norm;
                        for ky in 0..k {
                            for kx in 0..k {
                                data[((in_ * c + ic) * h + oy * s + ky) * w + ox * s + kx] += g;
                            }
                        }
                    }
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_forward_known_values() {
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0],
            [1, 1, 4, 4],
        );
        let mut pool = MaxPool2d::new(2, 2);
        let y = pool.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 4.0, 3.0], [1, 1, 2, 2]);
        let mut pool = MaxPool2d::new(2, 2);
        pool.forward(&x, Mode::Train);
        let dx = pool.backward(&Tensor::from_vec(vec![5.0], [1, 1, 1, 1]));
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn avgpool_forward_and_backward() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], [1, 1, 2, 2]);
        let mut pool = AvgPool2d::new(2, 2);
        let y = pool.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[4.0]);
        let dx = pool.backward(&Tensor::from_vec(vec![4.0], [1, 1, 1, 1]));
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn global_avgpool_reduces_to_one_pixel() {
        let x = Tensor::ones([2, 3, 4, 4]);
        let mut pool = AvgPool2d::global(4);
        let y = pool.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[2, 3, 1, 1]);
        assert!(y.iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn maxpool_overlapping_windows_accumulate_grad() {
        // stride 1 window 2 on 3-wide input: center pixel may win twice.
        let x = Tensor::from_vec(vec![0.0, 9.0, 0.0, 0.0, 9.0, 0.0, 0.0, 0.0, 0.0], [1, 1, 3, 3]);
        let mut pool = MaxPool2d::new(2, 1);
        pool.forward(&x, Mode::Train);
        let dx = pool.backward(&Tensor::ones([1, 1, 2, 2]));
        // All four windows' maxima are the two 9s; total grad mass preserved.
        assert_eq!(dx.sum(), 4.0);
    }
}
