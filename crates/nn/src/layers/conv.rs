//! 2-D convolution layer (im2col + GEMM forward, exact adjoint backward).

use crate::layer::{Layer, LayerDesc, Mode, Param};
use qsnc_tensor::linalg::gemm;
use qsnc_tensor::{col2im, im2col, matmul, transpose, Conv2dSpec, Tensor, TensorRng};

/// A 2-D convolution over `[n, c, h, w]` inputs with square kernels.
///
/// Weights are stored `[f, c, k, k]`; biases `[f]`. Initialization is
/// Kaiming/He normal, appropriate for the ReLU networks of the paper.
#[derive(Debug, Clone)]
pub struct Conv2d {
    label: String,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
    // Cached by training-mode forward for backward.
    cached_cols: Option<Tensor>,
    cached_input_dims: Option<[usize; 4]>,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        label: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        spec: Conv2dSpec,
        rng: &mut TensorRng,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0, "channel counts must be positive");
        let k = spec.kernel;
        let fan_in = in_channels * k * k;
        let weight =
            qsnc_tensor::init::he_normal([out_channels, in_channels, k, k], fan_in, rng);
        Conv2d {
            label: label.into(),
            grad_weight: Tensor::zeros(weight.dims()),
            weight,
            bias: Tensor::zeros([out_channels]),
            grad_bias: Tensor::zeros([out_channels]),
            spec,
            in_channels,
            out_channels,
            cached_cols: None,
            cached_input_dims: None,
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Immutable view of the filter tensor `[f, c, k, k]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Immutable view of the per-filter bias `[f]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Replaces the filter tensor (used by quantization passes).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs from the current weights.
    pub fn set_weight(&mut self, weight: Tensor) {
        assert_eq!(weight.shape(), self.weight.shape(), "weight shape mismatch");
        self.weight = weight;
    }
}

impl Layer for Conv2d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(x.shape().rank(), 4, "conv2d expects [n,c,h,w], got {}", x.shape());
        assert_eq!(
            x.dims()[1],
            self.in_channels,
            "conv2d {} expects {} input channels, got {}",
            self.label,
            self.in_channels,
            x.dims()[1]
        );
        if mode == Mode::Eval {
            // Inference needs no cached columns: use the batch-parallel
            // per-image lowering, which skips the output reorder entirely.
            return qsnc_tensor::conv2d(x, &self.weight, Some(&self.bias), self.spec);
        }
        let (n, _, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let oh = self.spec.output_size(h);
        let ow = self.spec.output_size(w);
        let cols = im2col(x, self.spec);
        let cols_n = n * oh * ow;
        let f = self.out_channels;
        let ckk = cols.dims()[0];

        let mut out = vec![0.0f32; f * cols_n];
        gemm(f, ckk, cols_n, self.weight.as_slice(), cols.as_slice(), &mut out);

        // Reorder [f, n·oh·ow] → [n, f, oh, ow] with bias.
        let mut y = vec![0.0f32; n * f * oh * ow];
        let bias = self.bias.as_slice();
        for fi in 0..f {
            for in_ in 0..n {
                let src = &out[(fi * n + in_) * oh * ow..(fi * n + in_ + 1) * oh * ow];
                let dst = &mut y[(in_ * f + fi) * oh * ow..(in_ * f + fi + 1) * oh * ow];
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d = s + bias[fi];
                }
            }
        }

        if mode == Mode::Train {
            self.cached_cols = Some(cols);
            self.cached_input_dims = Some([n, self.in_channels, h, w]);
        }
        Tensor::from_vec(y, [n, f, oh, ow])
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cols = self
            .cached_cols
            .as_ref()
            .expect("conv2d backward called before training-mode forward");
        let [n, c, h, w] = self.cached_input_dims.expect("missing cached input dims");
        let f = self.out_channels;
        let oh = self.spec.output_size(h);
        let ow = self.spec.output_size(w);
        assert_eq!(grad.dims(), &[n, f, oh, ow], "conv2d grad shape mismatch");

        // Reorder grad [n, f, oh, ow] → g [f, n·oh·ow] to match column order.
        let cols_n = n * oh * ow;
        let mut g = vec![0.0f32; f * cols_n];
        let gs = grad.as_slice();
        for in_ in 0..n {
            for fi in 0..f {
                let src = &gs[(in_ * f + fi) * oh * ow..(in_ * f + fi + 1) * oh * ow];
                let dst = &mut g[(fi * n + in_) * oh * ow..(fi * n + in_ + 1) * oh * ow];
                dst.copy_from_slice(src);
            }
        }
        let g_t = Tensor::from_vec(g, [f, cols_n]);

        // dW = g × colsᵀ, reshaped to [f, c, k, k].
        let cols_t = transpose(cols);
        let dw = matmul(&g_t, &cols_t);
        self.grad_weight += &dw.into_reshaped(self.weight.dims());

        // db = row sums of g.
        {
            let gb = self.grad_bias.as_mut_slice();
            let gsl = g_t.as_slice();
            for fi in 0..f {
                gb[fi] += gsl[fi * cols_n..(fi + 1) * cols_n].iter().sum::<f32>();
            }
        }

        // dx = col2im(Wᵀ × g).
        let k = self.spec.kernel;
        let w_mat = self.weight.reshape([f, c * k * k]);
        let w_t = transpose(&w_mat);
        let dcols = matmul(&w_t, &g_t);
        col2im(&dcols, n, c, h, w, self.spec)
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        vec![
            Param {
                name: format!("{}.weight", self.label),
                value: &mut self.weight,
                grad: &mut self.grad_weight,
                is_weight: true,
            },
            Param {
                name: format!("{}.bias", self.label),
                value: &mut self.bias,
                grad: &mut self.grad_bias,
                is_weight: false,
            },
        ]
    }

    fn descriptor(&self) -> LayerDesc {
        LayerDesc::Conv {
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            kernel: self.spec.kernel,
            stride: self.spec.stride,
            padding: self.spec.padding,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let mut rng = TensorRng::seed(0);
        let mut layer = Conv2d::new("c", 3, 8, Conv2dSpec::new(3, 1, 1), &mut rng);
        let x = qsnc_tensor::init::uniform([2, 3, 8, 8], -1.0, 1.0, &mut rng);
        let y = layer.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn matches_reference_conv() {
        let mut rng = TensorRng::seed(1);
        let spec = Conv2dSpec::new(3, 1, 1);
        let mut layer = Conv2d::new("c", 2, 4, spec, &mut rng);
        let x = qsnc_tensor::init::uniform([1, 2, 6, 6], -1.0, 1.0, &mut rng);
        let y = layer.forward(&x, Mode::Eval);
        let reference =
            qsnc_tensor::conv2d_direct(&x, layer.weight(), Some(&Tensor::zeros([4])), spec);
        for (a, b) in y.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn backward_shapes_and_accumulation() {
        let mut rng = TensorRng::seed(2);
        let mut layer = Conv2d::new("c", 2, 3, Conv2dSpec::new(3, 1, 0), &mut rng);
        let x = qsnc_tensor::init::uniform([2, 2, 5, 5], -1.0, 1.0, &mut rng);
        let y = layer.forward(&x, Mode::Train);
        let g = Tensor::ones(y.dims());
        let dx = layer.backward(&g);
        assert_eq!(dx.dims(), x.dims());
        let norm1 = layer.grad_weight.norm_l2();
        assert!(norm1 > 0.0);
        // Second backward accumulates.
        layer.forward(&x, Mode::Train);
        layer.backward(&g);
        assert!(layer.grad_weight.norm_l2() > norm1);
        layer.zero_grad();
        assert_eq!(layer.grad_weight.norm_l2(), 0.0);
    }

    #[test]
    #[should_panic(expected = "backward called before")]
    fn backward_without_forward_panics() {
        let mut rng = TensorRng::seed(3);
        let mut layer = Conv2d::new("c", 1, 1, Conv2dSpec::new(3, 1, 0), &mut rng);
        layer.backward(&Tensor::zeros([1, 1, 1, 1]));
    }

    #[test]
    fn descriptor_reports_shape() {
        let mut rng = TensorRng::seed(4);
        let layer = Conv2d::new("c", 3, 16, Conv2dSpec::new(5, 1, 2), &mut rng);
        assert_eq!(
            layer.descriptor(),
            LayerDesc::Conv {
                in_channels: 3,
                out_channels: 16,
                kernel: 5,
                stride: 1,
                padding: 2
            }
        );
        assert_eq!(layer.descriptor().weight_count(), 3 * 16 * 25);
    }
}
