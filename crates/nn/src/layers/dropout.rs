//! Inverted dropout.

use crate::layer::{Layer, Mode};
use qsnc_tensor::{Tensor, TensorRng};

/// Inverted dropout: during training, zeroes each activation with
/// probability `p` and scales survivors by `1/(1-p)`; a no-op at eval time.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: TensorRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, rng: TensorRng) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1)");
        Dropout { p, rng, mask: None }
    }
}

impl Layer for Dropout {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Eval || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mask: Vec<f32> = (0..x.len())
            .map(|_| if self.rng.chance(self.p) { 0.0 } else { 1.0 / keep })
            .collect();
        let data = x
            .iter()
            .zip(mask.iter())
            .map(|(&v, &m)| v * m)
            .collect();
        self.mask = Some(mask);
        Tensor::from_vec(data, x.dims())
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        match &self.mask {
            None => grad.clone(),
            Some(mask) => {
                assert_eq!(grad.len(), mask.len(), "dropout grad length mismatch");
                let data = grad
                    .iter()
                    .zip(mask.iter())
                    .map(|(&g, &m)| g * m)
                    .collect();
                Tensor::from_vec(data, grad.dims())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, TensorRng::seed(0));
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(d.forward(&x, Mode::Eval), x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut d = Dropout::new(0.3, TensorRng::seed(1));
        let x = Tensor::ones([10000]);
        let y = d.forward(&x, Mode::Train);
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, TensorRng::seed(2));
        let x = Tensor::ones([100]);
        let y = d.forward(&x, Mode::Train);
        let dx = d.backward(&Tensor::ones([100]));
        // Gradient is zero exactly where the output was zeroed.
        for (o, g) in y.iter().zip(dx.iter()) {
            assert_eq!(*o == 0.0, *g == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn invalid_p_panics() {
        Dropout::new(1.0, TensorRng::seed(0));
    }
}
