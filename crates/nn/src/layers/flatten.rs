//! Shape adapters between convolutional and dense stages.

use crate::layer::{Layer, Mode};
use qsnc_tensor::Tensor;

/// Flattens `[n, c, h, w]` (or any rank ≥ 2) to `[n, c·h·w]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        assert!(x.shape().rank() >= 2, "flatten expects rank >= 2, got {}", x.shape());
        let n = x.dims()[0];
        let rest: usize = x.dims()[1..].iter().product();
        if mode == Mode::Train {
            self.input_dims = Some(x.dims().to_vec());
        }
        x.reshape([n, rest])
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let dims = self
            .input_dims
            .as_ref()
            .expect("flatten backward called before training-mode forward");
        grad.reshape(dims.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_restore() {
        let x = Tensor::zeros([2, 3, 4, 5]);
        let mut layer = Flatten::new();
        let y = layer.forward(&x, Mode::Train);
        assert_eq!(y.dims(), &[2, 60]);
        let dx = layer.backward(&y);
        assert_eq!(dx.dims(), &[2, 3, 4, 5]);
    }

    #[test]
    fn flatten_rank2_is_noop() {
        let x = Tensor::zeros([4, 7]);
        let mut layer = Flatten::new();
        assert_eq!(layer.forward(&x, Mode::Eval).dims(), &[4, 7]);
    }
}
