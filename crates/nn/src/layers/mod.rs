//! Concrete layer implementations.

mod activation;
mod batchnorm;
mod conv;
mod dropout;
mod flatten;
mod linear;
mod pool;
mod residual;

pub use activation::{Identity, Relu};
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::{AvgPool2d, MaxPool2d};
pub use residual::Residual;
