//! Activation layers.

use crate::layer::{Layer, Mode};
use qsnc_tensor::Tensor;

/// Rectified linear unit: `max(x, 0)`.
///
/// ReLU outputs are the "inter-layer signals" the paper's Neuron Convergence
/// regularizer acts on; the layer therefore exposes its most recent output
/// through [`Layer::output_tap`] so experiment code can histogram it
/// (Fig. 4).
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
    tap: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let y = x.relu();
        if mode == Mode::Train {
            self.mask = Some(x.iter().map(|&v| v > 0.0).collect());
        }
        self.tap = Some(y.clone());
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("relu backward called before training-mode forward");
        assert_eq!(grad.len(), mask.len(), "relu grad length mismatch");
        let data = grad
            .iter()
            .zip(mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad.dims())
    }

    fn output_tap(&self) -> Option<Tensor> {
        self.tap.clone()
    }
}

/// Identity layer — useful as a placeholder shortcut in residual blocks.
#[derive(Debug, Clone, Default)]
pub struct Identity;

impl Identity {
    /// Creates an identity layer.
    pub fn new() -> Self {
        Identity
    }
}

impl Layer for Identity {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "identity"
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        x.clone()
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        grad.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_clamps_negatives() {
        let mut layer = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = layer.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut layer = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.5, 2.0]);
        layer.forward(&x, Mode::Train);
        let dx = layer.backward(&Tensor::from_slice(&[1.0, 1.0, 1.0]));
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn relu_zero_input_has_zero_gradient() {
        // Subgradient convention: derivative at exactly 0 is 0.
        let mut layer = Relu::new();
        layer.forward(&Tensor::from_slice(&[0.0]), Mode::Train);
        let dx = layer.backward(&Tensor::from_slice(&[5.0]));
        assert_eq!(dx.as_slice(), &[0.0]);
    }

    #[test]
    fn relu_tap_exposes_output() {
        let mut layer = Relu::new();
        layer.forward(&Tensor::from_slice(&[-1.0, 3.0]), Mode::Eval);
        let tap = layer.output_tap().expect("tap");
        assert_eq!(tap.as_slice(), &[0.0, 3.0]);
    }

    #[test]
    fn identity_passes_through() {
        let mut layer = Identity::new();
        let x = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(layer.forward(&x, Mode::Train), x);
        assert_eq!(layer.backward(&x), x);
    }
}
