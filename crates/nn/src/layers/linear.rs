//! Fully connected (dense) layer.

use crate::layer::{Layer, LayerDesc, Mode, Param};
use qsnc_tensor::{gemm_bt, matmul, transpose, Tensor, TensorRng};

/// A fully connected layer: `y = x · Wᵀ + b` over `[n, in]` inputs.
///
/// Weights are stored `[out, in]` so each output row maps directly onto one
/// crossbar column in the memristor deployment.
#[derive(Debug, Clone)]
pub struct Linear {
    label: String,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a dense layer with Xavier-uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new(
        label: impl Into<String>,
        in_features: usize,
        out_features: usize,
        rng: &mut TensorRng,
    ) -> Self {
        assert!(in_features > 0 && out_features > 0, "feature counts must be positive");
        let weight = qsnc_tensor::init::xavier_uniform(
            [out_features, in_features],
            in_features,
            out_features,
            rng,
        );
        Linear {
            label: label.into(),
            grad_weight: Tensor::zeros(weight.dims()),
            weight,
            bias: Tensor::zeros([out_features]),
            grad_bias: Tensor::zeros([out_features]),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Immutable view of the weight matrix `[out, in]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Immutable view of the bias vector `[out]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Replaces the weight matrix (used by quantization passes).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs from the current weights.
    pub fn set_weight(&mut self, weight: Tensor) {
        assert_eq!(weight.shape(), self.weight.shape(), "weight shape mismatch");
        self.weight = weight;
    }
}

impl Layer for Linear {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(x.shape().rank(), 2, "linear expects [n, features], got {}", x.shape());
        assert_eq!(
            x.dims()[1],
            self.in_features,
            "linear {} expects {} features, got {}",
            self.label,
            self.in_features,
            x.dims()[1]
        );
        // W is stored [out, in]: gemm_bt consumes it as the transposed
        // operand directly, so no [in, out] copy is materialized per call.
        let n = x.dims()[0];
        let mut out = vec![0.0f32; n * self.out_features];
        gemm_bt(
            n,
            self.in_features,
            self.out_features,
            x.as_slice(),
            self.weight.as_slice(),
            &mut out,
        );
        let bias = self.bias.as_slice();
        for r in 0..n {
            for (o, &b) in out[r * self.out_features..(r + 1) * self.out_features]
                .iter_mut()
                .zip(bias.iter())
            {
                *o += b;
            }
        }
        if mode == Mode::Train {
            self.cached_input = Some(x.clone());
        }
        Tensor::from_vec(out, [n, self.out_features])
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("linear backward called before training-mode forward");
        let n = x.dims()[0];
        assert_eq!(grad.dims(), &[n, self.out_features], "linear grad shape mismatch");

        // dW = gradᵀ · x
        let dw = matmul(&transpose(grad), x);
        self.grad_weight += &dw;

        // db = column sums of grad.
        {
            let gb = self.grad_bias.as_mut_slice();
            let gs = grad.as_slice();
            for r in 0..n {
                for (o, g) in gb.iter_mut().zip(&gs[r * self.out_features..]) {
                    *o += g;
                }
            }
        }

        // dx = grad · W
        matmul(grad, &self.weight)
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        vec![
            Param {
                name: format!("{}.weight", self.label),
                value: &mut self.weight,
                grad: &mut self.grad_weight,
                is_weight: true,
            },
            Param {
                name: format!("{}.bias", self.label),
                value: &mut self.bias,
                grad: &mut self.grad_bias,
                is_weight: false,
            },
        ]
    }

    fn descriptor(&self) -> LayerDesc {
        LayerDesc::Linear {
            in_features: self.in_features,
            out_features: self.out_features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual() {
        let mut rng = TensorRng::seed(0);
        let mut layer = Linear::new("fc", 3, 2, &mut rng);
        layer.set_weight(Tensor::from_vec(
            vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0],
            [2, 3],
        ));
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3]);
        let y = layer.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[1.0, 5.0]);
    }

    #[test]
    fn backward_gradients() {
        let mut rng = TensorRng::seed(1);
        let mut layer = Linear::new("fc", 2, 2, &mut rng);
        layer.set_weight(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
        let x = Tensor::from_vec(vec![1.0, 1.0], [1, 2]);
        layer.forward(&x, Mode::Train);
        let dx = layer.backward(&Tensor::from_vec(vec![1.0, 0.0], [1, 2]));
        // dx = grad · W = [1, 0]·[[1,2],[3,4]] = [1, 2]
        assert_eq!(dx.as_slice(), &[1.0, 2.0]);
        // dW = gradᵀ · x = [[1],[0]]·[1,1] = [[1,1],[0,0]]
        assert_eq!(layer.grad_weight.as_slice(), &[1.0, 1.0, 0.0, 0.0]);
        assert_eq!(layer.grad_bias.as_slice(), &[1.0, 0.0]);
    }

    #[test]
    fn batch_forward() {
        let mut rng = TensorRng::seed(2);
        let mut layer = Linear::new("fc", 4, 3, &mut rng);
        let x = qsnc_tensor::init::uniform([5, 4], -1.0, 1.0, &mut rng);
        let y = layer.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[5, 3]);
    }

    #[test]
    #[should_panic(expected = "expects 4 features")]
    fn wrong_feature_count_panics() {
        let mut rng = TensorRng::seed(3);
        let mut layer = Linear::new("fc", 4, 3, &mut rng);
        layer.forward(&Tensor::zeros([1, 5]), Mode::Eval);
    }

    #[test]
    fn descriptor() {
        let mut rng = TensorRng::seed(4);
        let layer = Linear::new("fc", 4, 3, &mut rng);
        assert_eq!(
            layer.descriptor(),
            LayerDesc::Linear {
                in_features: 4,
                out_features: 3
            }
        );
    }
}
