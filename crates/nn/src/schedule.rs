//! Learning-rate schedules.
//!
//! A [`LrSchedule`] maps an epoch index to a learning-rate multiplier; the
//! training loop applies it on top of the optimizer's base rate. The
//! paper's training recipe corresponds to [`LrSchedule::Step`].

/// A deterministic learning-rate schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LrSchedule {
    /// Constant multiplier 1.
    #[default]
    Constant,
    /// Multiply by `gamma` every `every` epochs (classic step decay).
    Step {
        /// Decay factor per step.
        gamma: f32,
        /// Epochs between decays.
        every: usize,
    },
    /// Cosine annealing from 1 down to `floor` over `total_epochs`.
    Cosine {
        /// Final multiplier at the end of training.
        floor: f32,
        /// Total epochs the schedule spans.
        total_epochs: usize,
    },
    /// Linear warmup from `start` to 1 over `warmup_epochs`, constant
    /// afterwards.
    Warmup {
        /// Initial multiplier.
        start: f32,
        /// Epochs to reach 1.0.
        warmup_epochs: usize,
    },
}

impl LrSchedule {
    /// Multiplier for `epoch` (0-based).
    pub fn multiplier(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Step { gamma, every } => {
                let steps = epoch.checked_div(every).unwrap_or(0);
                gamma.powi(steps as i32)
            }
            LrSchedule::Cosine {
                floor,
                total_epochs,
            } => {
                if total_epochs <= 1 {
                    return floor;
                }
                let t = (epoch.min(total_epochs - 1)) as f32 / (total_epochs - 1) as f32;
                floor + (1.0 - floor) * 0.5 * (1.0 + (std::f32::consts::PI * t).cos())
            }
            LrSchedule::Warmup {
                start,
                warmup_epochs,
            } => {
                if warmup_epochs == 0 || epoch >= warmup_epochs {
                    1.0
                } else {
                    start + (1.0 - start) * (epoch as f32 / warmup_epochs as f32)
                }
            }
        }
    }

    /// The absolute learning rate for `epoch` given a base rate.
    pub fn rate(&self, base_lr: f32, epoch: usize) -> f32 {
        base_lr * self.multiplier(epoch)
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        let s = LrSchedule::Constant;
        for e in 0..10 {
            assert_eq!(s.multiplier(e), 1.0);
        }
    }

    #[test]
    fn step_decays_at_boundaries() {
        let s = LrSchedule::Step {
            gamma: 0.5,
            every: 3,
        };
        assert_eq!(s.multiplier(0), 1.0);
        assert_eq!(s.multiplier(2), 1.0);
        assert_eq!(s.multiplier(3), 0.5);
        assert_eq!(s.multiplier(6), 0.25);
        assert_eq!(s.rate(0.1, 6), 0.025);
    }

    #[test]
    fn step_with_zero_period_never_decays() {
        let s = LrSchedule::Step {
            gamma: 0.5,
            every: 0,
        };
        assert_eq!(s.multiplier(100), 1.0);
    }

    #[test]
    fn cosine_starts_high_ends_at_floor() {
        let s = LrSchedule::Cosine {
            floor: 0.1,
            total_epochs: 11,
        };
        assert!((s.multiplier(0) - 1.0).abs() < 1e-6);
        assert!((s.multiplier(10) - 0.1).abs() < 1e-6);
        // Monotone decreasing.
        let mut prev = f32::INFINITY;
        for e in 0..11 {
            let m = s.multiplier(e);
            assert!(m <= prev + 1e-6);
            prev = m;
        }
        // Clamps beyond the end.
        assert!((s.multiplier(50) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn warmup_ramps_then_holds() {
        let s = LrSchedule::Warmup {
            start: 0.2,
            warmup_epochs: 4,
        };
        assert!((s.multiplier(0) - 0.2).abs() < 1e-6);
        assert!(s.multiplier(2) > s.multiplier(1));
        assert_eq!(s.multiplier(4), 1.0);
        assert_eq!(s.multiplier(9), 1.0);
    }
}
