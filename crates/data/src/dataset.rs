//! In-memory labelled image datasets and batching.

use qsnc_nn::Batch;
use qsnc_tensor::{Tensor, TensorRng};

/// A labelled image dataset held in memory as one `[n, c, h, w]` tensor.
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not rank 4, the label count differs from the
    /// leading dimension, or any label is `>= classes`.
    pub fn new(images: Tensor, labels: Vec<usize>, classes: usize) -> Self {
        assert_eq!(images.shape().rank(), 4, "images must be [n,c,h,w]");
        assert_eq!(
            images.dims()[0],
            labels.len(),
            "image count {} != label count {}",
            images.dims()[0],
            labels.len()
        );
        assert!(
            labels.iter().all(|&l| l < classes),
            "label out of range for {classes} classes"
        );
        Dataset {
            images,
            labels,
            classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The full image tensor `[n, c, h, w]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The labels, one per example.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-example dimensions `[c, h, w]`.
    pub fn example_dims(&self) -> [usize; 3] {
        [
            self.images.dims()[1],
            self.images.dims()[2],
            self.images.dims()[3],
        ]
    }

    /// Copies example `i` as a `[1, c, h, w]` tensor with its label.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn example(&self, i: usize) -> (Tensor, usize) {
        assert!(i < self.len(), "example index out of bounds");
        let [c, h, w] = self.example_dims();
        let stride = c * h * w;
        let data = self.images.as_slice()[i * stride..(i + 1) * stride].to_vec();
        (Tensor::from_vec(data, [1, c, h, w]), self.labels[i])
    }

    /// Splits into `(train, test)` at `train_fraction` of the examples.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_fraction < 1`.
    pub fn split(&self, train_fraction: f32) -> (Dataset, Dataset) {
        assert!(
            (0.0..1.0).contains(&train_fraction) && train_fraction > 0.0,
            "train fraction must be in (0, 1)"
        );
        let n_train = ((self.len() as f32) * train_fraction).round() as usize;
        let n_train = n_train.clamp(1, self.len().saturating_sub(1));
        let [c, h, w] = self.example_dims();
        let stride = c * h * w;
        let (a, b) = self.images.as_slice().split_at(n_train * stride);
        let train = Dataset::new(
            Tensor::from_vec(a.to_vec(), [n_train, c, h, w]),
            self.labels[..n_train].to_vec(),
            self.classes,
        );
        let n_test = self.len() - n_train;
        let test = Dataset::new(
            Tensor::from_vec(b.to_vec(), [n_test, c, h, w]),
            self.labels[n_train..].to_vec(),
            self.classes,
        );
        (train, test)
    }

    /// Builds mini-batches of at most `batch_size` examples. When `rng` is
    /// provided the example order is shuffled first.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batches(&self, batch_size: usize, rng: Option<&mut TensorRng>) -> Vec<Batch> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..self.len()).collect();
        if let Some(rng) = rng {
            rng.shuffle(&mut order);
        }
        let [c, h, w] = self.example_dims();
        let stride = c * h * w;
        let src = self.images.as_slice();
        order
            .chunks(batch_size)
            .map(|chunk| {
                let mut data = Vec::with_capacity(chunk.len() * stride);
                let mut labels = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    data.extend_from_slice(&src[i * stride..(i + 1) * stride]);
                    labels.push(self.labels[i]);
                }
                Batch::new(Tensor::from_vec(data, [chunk.len(), c, h, w]), labels)
            })
            .collect()
    }

    /// Normalizes images in place to zero mean / unit variance over the
    /// whole dataset, returning `(mean, std)` used.
    pub fn normalize(&mut self) -> (f32, f32) {
        let mean = self.images.mean();
        let std = self.images.std().max(1e-6);
        self.images.map_inplace(|x| (x - mean) / std);
        (mean, std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let images = Tensor::from_vec((0..n * 4).map(|x| x as f32).collect(), [n, 1, 2, 2]);
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(images, labels, 3)
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy(6);
        assert_eq!(d.len(), 6);
        assert_eq!(d.classes(), 3);
        assert_eq!(d.example_dims(), [1, 2, 2]);
        let (img, label) = d.example(1);
        assert_eq!(label, 1);
        assert_eq!(img.as_slice(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn split_preserves_everything() {
        let d = toy(10);
        let (train, test) = d.split(0.8);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        assert_eq!(train.len() + test.len(), d.len());
        // Test partition starts where train ends.
        assert_eq!(test.example(0).0.as_slice()[0], 32.0);
    }

    #[test]
    fn batches_cover_all_examples() {
        let d = toy(10);
        let batches = d.batches(3, None);
        assert_eq!(batches.len(), 4);
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 10);
        assert_eq!(batches[3].len(), 1); // remainder batch
    }

    #[test]
    fn shuffled_batches_are_permutation() {
        let d = toy(30);
        let mut rng = TensorRng::seed(0);
        let batches = d.batches(7, Some(&mut rng));
        let mut labels: Vec<usize> = batches.iter().flat_map(|b| b.labels.clone()).collect();
        labels.sort_unstable();
        let mut expected: Vec<usize> = d.labels().to_vec();
        expected.sort_unstable();
        assert_eq!(labels, expected);
    }

    #[test]
    fn shuffle_changes_order_deterministically() {
        let d = toy(30);
        let mut r1 = TensorRng::seed(5);
        let mut r2 = TensorRng::seed(5);
        let b1 = d.batches(30, Some(&mut r1));
        let b2 = d.batches(30, Some(&mut r2));
        assert_eq!(b1[0].labels, b2[0].labels);
        let plain = d.batches(30, None);
        assert_ne!(b1[0].labels, plain[0].labels);
    }

    #[test]
    fn normalize_zero_mean_unit_std() {
        let mut d = toy(8);
        d.normalize();
        assert!(d.images().mean().abs() < 1e-4);
        assert!((d.images().std() - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_labels_panic() {
        Dataset::new(Tensor::zeros([1, 1, 1, 1]), vec![5], 3);
    }
}
