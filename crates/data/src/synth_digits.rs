//! `SynthDigits`: a deterministic, MNIST-shaped synthetic digit task.
//!
//! The paper evaluates on MNIST, which cannot be redistributed with this
//! repository. `SynthDigits` substitutes a procedurally generated 28×28×1
//! ten-class task: seven-segment digit glyphs rasterized with randomized
//! stroke thickness, translation, contrast, and pixel noise. The resulting
//! task has the properties the experiments need — learnable to high accuracy
//! by LeNet, degraded by aggressive quantization, recovered by the paper's
//! regularized training — while remaining fully reproducible from a seed.

use crate::dataset::Dataset;
use qsnc_tensor::{Tensor, TensorRng};

/// Image edge length.
pub const SIDE: usize = 28;
/// Number of classes.
pub const CLASSES: usize = 10;

/// Segment endpoints in glyph coordinates (x, y), 0 ≤ x < 20, 0 ≤ y < 26.
type Segment = ((f32, f32), (f32, f32));

/// The classic seven segments: A top, B top-right, C bottom-right,
/// D bottom, E bottom-left, F top-left, G middle.
const SEGMENTS: [Segment; 7] = [
    ((4.0, 3.0), (15.0, 3.0)),   // A
    ((15.0, 3.0), (15.0, 12.0)), // B
    ((15.0, 12.0), (15.0, 21.0)),// C
    ((4.0, 21.0), (15.0, 21.0)), // D
    ((4.0, 12.0), (4.0, 21.0)),  // E
    ((4.0, 3.0), (4.0, 12.0)),   // F
    ((4.0, 12.0), (15.0, 12.0)), // G
];

/// Which segments each digit lights (bitmask over A..G).
const DIGIT_SEGMENTS: [u8; 10] = [
    0b0111111, // 0: ABCDEF
    0b0000110, // 1: BC
    0b1011011, // 2: ABDEG
    0b1001111, // 3: ABCDG
    0b1100110, // 4: BCFG
    0b1101101, // 5: ACDFG
    0b1111101, // 6: ACDEFG
    0b0000111, // 7: ABC
    0b1111111, // 8: all
    0b1101111, // 9: ABCDFG
];

fn distance_to_segment(px: f32, py: f32, seg: Segment) -> f32 {
    let ((x1, y1), (x2, y2)) = seg;
    let (dx, dy) = (x2 - x1, y2 - y1);
    let len2 = dx * dx + dy * dy;
    let t = if len2 == 0.0 {
        0.0
    } else {
        (((px - x1) * dx + (py - y1) * dy) / len2).clamp(0.0, 1.0)
    };
    let (cx, cy) = (x1 + t * dx, y1 + t * dy);
    ((px - cx) * (px - cx) + (py - cy) * (py - cy)).sqrt()
}

/// Rasterizes one digit glyph with the given augmentation parameters.
fn render_digit(
    digit: usize,
    dx: f32,
    dy: f32,
    thickness: f32,
    contrast: f32,
    noise_sigma: f32,
    rng: &mut TensorRng,
) -> Vec<f32> {
    let mask = DIGIT_SEGMENTS[digit];
    let mut img = vec![0.0f32; SIDE * SIDE];
    for y in 0..SIDE {
        for x in 0..SIDE {
            // Map pixel back into glyph coordinates.
            let gx = x as f32 - 4.0 - dx;
            let gy = y as f32 - 2.0 - dy;
            let mut v: f32 = 0.0;
            for (i, &seg) in SEGMENTS.iter().enumerate() {
                if mask & (1 << i) == 0 {
                    continue;
                }
                let d = distance_to_segment(gx, gy, seg);
                // Soft-edged stroke.
                let intensity = (1.0 - (d - thickness).max(0.0)).clamp(0.0, 1.0);
                v = v.max(intensity);
            }
            let noisy = v * contrast + rng.normal_with(0.0, noise_sigma);
            img[y * SIDE + x] = noisy.clamp(0.0, 1.0);
        }
    }
    img
}

/// Generates a `SynthDigits` dataset of `n` examples.
///
/// Classes are sampled uniformly; all augmentation is drawn from `rng`, so a
/// fixed seed reproduces the dataset exactly.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use qsnc_data::synth_digits;
/// use qsnc_tensor::TensorRng;
///
/// let mut rng = TensorRng::seed(1);
/// let data = synth_digits(100, &mut rng);
/// assert_eq!(data.len(), 100);
/// assert_eq!(data.example_dims(), [1, 28, 28]);
/// ```
pub fn synth_digits(n: usize, rng: &mut TensorRng) -> Dataset {
    assert!(n > 0, "dataset size must be positive");
    let mut data = Vec::with_capacity(n * SIDE * SIDE);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let digit = rng.index(CLASSES);
        let dx = rng.uniform(-2.5, 2.5);
        let dy = rng.uniform(-2.5, 2.5);
        let thickness = rng.uniform(0.8, 2.0);
        let contrast = rng.uniform(0.7, 1.0);
        let noise = rng.uniform(0.02, 0.10);
        data.extend(render_digit(digit, dx, dy, thickness, contrast, noise, rng));
        labels.push(digit);
    }
    Dataset::new(
        Tensor::from_vec(data, [n, 1, SIDE, SIDE]),
        labels,
        CLASSES,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let a = synth_digits(20, &mut TensorRng::seed(3));
        let b = synth_digits(20, &mut TensorRng::seed(3));
        assert_eq!(a.images(), b.images());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn pixel_range_is_unit_interval() {
        let d = synth_digits(50, &mut TensorRng::seed(1));
        assert!(d.images().min() >= 0.0);
        assert!(d.images().max() <= 1.0);
    }

    #[test]
    fn all_classes_appear() {
        let d = synth_digits(500, &mut TensorRng::seed(2));
        let mut seen = [false; CLASSES];
        for &l in d.labels() {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s), "missing classes: {seen:?}");
    }

    #[test]
    fn glyphs_are_distinguishable() {
        // Render each digit without augmentation; pairwise L2 distance must
        // be clearly nonzero, otherwise the task is degenerate.
        let mut rng = TensorRng::seed(4);
        let clean: Vec<Vec<f32>> = (0..CLASSES)
            .map(|d| render_digit(d, 0.0, 0.0, 1.2, 1.0, 0.0, &mut rng))
            .collect();
        for i in 0..CLASSES {
            for j in (i + 1)..CLASSES {
                let dist: f32 = clean[i]
                    .iter()
                    .zip(clean[j].iter())
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum::<f32>()
                    .sqrt();
                assert!(dist > 1.0, "digits {i} and {j} look identical (d={dist})");
            }
        }
    }

    #[test]
    fn one_and_eight_have_different_mass() {
        let mut rng = TensorRng::seed(5);
        let one: f32 = render_digit(1, 0.0, 0.0, 1.2, 1.0, 0.0, &mut rng).iter().sum();
        let eight: f32 = render_digit(8, 0.0, 0.0, 1.2, 1.0, 0.0, &mut rng).iter().sum();
        assert!(eight > 2.0 * one, "eight {eight} vs one {one}");
    }
}
