//! Loader for the MNIST IDX file format.
//!
//! If the real MNIST files are available on disk, experiments can run on
//! them instead of [`synth_digits`](crate::synth_digits); the
//! [`load_mnist_or_synthetic`] helper falls back transparently.

use crate::dataset::Dataset;
use crate::synth_digits::synth_digits;
use qsnc_tensor::{Tensor, TensorRng};
use std::fmt;
use std::fs;
use std::io::{self, Read};
use std::path::Path;

/// Errors raised while reading IDX files.
#[derive(Debug)]
pub enum LoadIdxError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic number did not identify the expected record type.
    BadMagic(u32),
    /// Image and label files disagree on the example count.
    CountMismatch {
        /// Number of images read.
        images: usize,
        /// Number of labels read.
        labels: usize,
    },
    /// File ended before the promised payload.
    Truncated,
}

impl fmt::Display for LoadIdxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadIdxError::Io(e) => write!(f, "i/o error reading idx file: {e}"),
            LoadIdxError::BadMagic(m) => write!(f, "unexpected idx magic number {m:#x}"),
            LoadIdxError::CountMismatch { images, labels } => {
                write!(f, "idx files disagree: {images} images vs {labels} labels")
            }
            LoadIdxError::Truncated => write!(f, "idx file truncated"),
        }
    }
}

impl std::error::Error for LoadIdxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadIdxError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadIdxError {
    fn from(e: io::Error) -> Self {
        LoadIdxError::Io(e)
    }
}

fn read_u32(r: &mut impl Read) -> Result<u32, LoadIdxError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf).map_err(|_| LoadIdxError::Truncated)?;
    Ok(u32::from_be_bytes(buf))
}

/// Reads an IDX3 image file (`magic 0x803`) into `(pixels, n, rows, cols)`
/// with pixels scaled to `[0, 1]`.
///
/// # Errors
///
/// Returns [`LoadIdxError`] on I/O failure, bad magic, or truncation.
pub fn read_idx_images(path: &Path) -> Result<(Vec<f32>, usize, usize, usize), LoadIdxError> {
    let mut f = fs::File::open(path)?;
    let magic = read_u32(&mut f)?;
    if magic != 0x0000_0803 {
        return Err(LoadIdxError::BadMagic(magic));
    }
    let n = read_u32(&mut f)? as usize;
    let rows = read_u32(&mut f)? as usize;
    let cols = read_u32(&mut f)? as usize;
    let mut raw = vec![0u8; n * rows * cols];
    f.read_exact(&mut raw).map_err(|_| LoadIdxError::Truncated)?;
    let pixels = raw.iter().map(|&b| b as f32 / 255.0).collect();
    Ok((pixels, n, rows, cols))
}

/// Reads an IDX1 label file (`magic 0x801`).
///
/// # Errors
///
/// Returns [`LoadIdxError`] on I/O failure, bad magic, or truncation.
pub fn read_idx_labels(path: &Path) -> Result<Vec<usize>, LoadIdxError> {
    let mut f = fs::File::open(path)?;
    let magic = read_u32(&mut f)?;
    if magic != 0x0000_0801 {
        return Err(LoadIdxError::BadMagic(magic));
    }
    let n = read_u32(&mut f)? as usize;
    let mut raw = vec![0u8; n];
    f.read_exact(&mut raw).map_err(|_| LoadIdxError::Truncated)?;
    Ok(raw.iter().map(|&b| b as usize).collect())
}

/// Loads an MNIST-style pair of IDX files into a [`Dataset`].
///
/// # Errors
///
/// Returns [`LoadIdxError`] if either file is unreadable, malformed, or the
/// counts disagree.
pub fn load_idx_pair(images: &Path, labels: &Path) -> Result<Dataset, LoadIdxError> {
    let (pixels, n, rows, cols) = read_idx_images(images)?;
    let labels = read_idx_labels(labels)?;
    if labels.len() != n {
        return Err(LoadIdxError::CountMismatch {
            images: n,
            labels: labels.len(),
        });
    }
    let classes = labels.iter().copied().max().unwrap_or(0) + 1;
    Ok(Dataset::new(
        Tensor::from_vec(pixels, [n, 1, rows, cols]),
        labels,
        classes.max(10),
    ))
}

/// Loads MNIST training data from `dir` (expecting the standard
/// `train-images-idx3-ubyte` / `train-labels-idx1-ubyte` names); on any
/// failure, generates `fallback_n` examples of [`synth_digits`] instead.
///
/// Returns the dataset and `true` if real MNIST was used.
pub fn load_mnist_or_synthetic(
    dir: &Path,
    fallback_n: usize,
    rng: &mut TensorRng,
) -> (Dataset, bool) {
    let images = dir.join("train-images-idx3-ubyte");
    let labels = dir.join("train-labels-idx1-ubyte");
    match load_idx_pair(&images, &labels) {
        Ok(data) => (data, true),
        Err(_) => (synth_digits(fallback_n, rng), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_idx_images(path: &Path, n: usize, rows: usize, cols: usize) {
        let mut f = fs::File::create(path).unwrap();
        f.write_all(&0x0000_0803u32.to_be_bytes()).unwrap();
        f.write_all(&(n as u32).to_be_bytes()).unwrap();
        f.write_all(&(rows as u32).to_be_bytes()).unwrap();
        f.write_all(&(cols as u32).to_be_bytes()).unwrap();
        let payload: Vec<u8> = (0..n * rows * cols).map(|i| (i % 256) as u8).collect();
        f.write_all(&payload).unwrap();
    }

    fn write_idx_labels(path: &Path, labels: &[u8]) {
        let mut f = fs::File::create(path).unwrap();
        f.write_all(&0x0000_0801u32.to_be_bytes()).unwrap();
        f.write_all(&(labels.len() as u32).to_be_bytes()).unwrap();
        f.write_all(labels).unwrap();
    }

    #[test]
    fn round_trip_synthetic_idx() {
        let dir = std::env::temp_dir().join("qsnc_idx_test");
        fs::create_dir_all(&dir).unwrap();
        let img = dir.join("imgs");
        let lbl = dir.join("lbls");
        write_idx_images(&img, 3, 4, 4);
        write_idx_labels(&lbl, &[0, 5, 9]);
        let data = load_idx_pair(&img, &lbl).unwrap();
        assert_eq!(data.len(), 3);
        assert_eq!(data.example_dims(), [1, 4, 4]);
        assert_eq!(data.labels(), &[0, 5, 9]);
        // First pixel of second image: raw byte 16 → 16/255.
        assert!((data.example(1).0.as_slice()[0] - 16.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn bad_magic_is_reported() {
        let dir = std::env::temp_dir().join("qsnc_idx_test2");
        fs::create_dir_all(&dir).unwrap();
        let img = dir.join("bad");
        fs::write(&img, 0xdeadbeefu32.to_be_bytes()).unwrap();
        match read_idx_images(&img) {
            Err(LoadIdxError::BadMagic(m)) => assert_eq!(m, 0xdeadbeef),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn count_mismatch_is_reported() {
        let dir = std::env::temp_dir().join("qsnc_idx_test3");
        fs::create_dir_all(&dir).unwrap();
        let img = dir.join("imgs");
        let lbl = dir.join("lbls");
        write_idx_images(&img, 2, 2, 2);
        write_idx_labels(&lbl, &[1]);
        assert!(matches!(
            load_idx_pair(&img, &lbl),
            Err(LoadIdxError::CountMismatch { images: 2, labels: 1 })
        ));
    }

    #[test]
    fn fallback_to_synthetic() {
        let mut rng = TensorRng::seed(0);
        let (data, real) =
            load_mnist_or_synthetic(Path::new("/nonexistent-dir"), 30, &mut rng);
        assert!(!real);
        assert_eq!(data.len(), 30);
    }
}
