//! # qsnc-data
//!
//! Datasets for the qsnc reproduction of the DAC 2018 data
//! quantization-aware deep networks paper.
//!
//! The paper evaluates on MNIST and CIFAR-10, which are not bundled here.
//! This crate provides deterministic synthetic stand-ins with the same
//! shapes and the same experimental role (see DESIGN.md §2 for why the
//! substitution preserves the phenomena under study):
//!
//! - [`synth_digits`]: 28×28×1 ten-class digit glyphs (MNIST stand-in).
//! - [`synth_objects`]: 32×32×3 ten-class colored shapes/textures (CIFAR
//!   stand-in).
//! - [`mnist`]: an IDX loader so real MNIST is used automatically when the
//!   files exist.
//!
//! All generation is seeded through [`qsnc_tensor::TensorRng`], so every
//! table in EXPERIMENTS.md is reproducible bit-for-bit.

#![warn(missing_docs)]

pub mod augment;
mod dataset;
pub mod mnist;
mod synth_digits;
mod synth_objects;

pub use dataset::Dataset;
pub use mnist::{load_idx_pair, load_mnist_or_synthetic, LoadIdxError};
pub use synth_digits::synth_digits;
pub use augment::{augment, AugmentConfig};
pub use synth_objects::{synth_objects, synth_objects_hard};
