//! `SynthObjects`: a deterministic, CIFAR-shaped synthetic object task.
//!
//! Substitutes CIFAR-10 with a procedurally generated 32×32×3 ten-class
//! task: colored geometric shapes and textures with randomized position,
//! scale, hue, and background noise. Harder than `SynthDigits` (color,
//! texture, and clutter) so, like CIFAR in the paper, it shows larger
//! quantization-induced accuracy loss than the digit task.

use crate::dataset::Dataset;
use qsnc_tensor::{Tensor, TensorRng};

/// Image edge length.
pub const SIDE: usize = 32;
/// Number of classes.
pub const CLASSES: usize = 10;

/// Per-class base colors (r, g, b) in `[0, 1]`.
const BASE_COLORS: [(f32, f32, f32); 10] = [
    (0.9, 0.2, 0.2),
    (0.2, 0.9, 0.2),
    (0.2, 0.3, 0.9),
    (0.9, 0.9, 0.2),
    (0.9, 0.2, 0.9),
    (0.2, 0.9, 0.9),
    (0.95, 0.6, 0.2),
    (0.6, 0.3, 0.8),
    (0.8, 0.8, 0.8),
    (0.5, 0.8, 0.4),
];

struct Params {
    cx: f32,
    cy: f32,
    size: f32,
    color: (f32, f32, f32),
    phase: f32,
}

/// Returns shape membership in `[0, 1]` for pixel `(x, y)` of class `class`.
fn shape_value(class: usize, x: f32, y: f32, p: &Params) -> f32 {
    let dx = x - p.cx;
    let dy = y - p.cy;
    let r = (dx * dx + dy * dy).sqrt();
    match class {
        // Solid disc.
        0 => ((p.size - r) * 0.8).clamp(0.0, 1.0),
        // Solid square.
        1 => {
            let d = dx.abs().max(dy.abs());
            ((p.size - d) * 0.8).clamp(0.0, 1.0)
        }
        // Upward triangle.
        2 => {
            let inside = dy > -p.size && dy < p.size && dx.abs() < (dy + p.size) * 0.6;
            if inside {
                1.0
            } else {
                0.0
            }
        }
        // Plus / cross.
        3 => {
            let arm = p.size * 0.35;
            if (dx.abs() < arm && dy.abs() < p.size) || (dy.abs() < arm && dx.abs() < p.size) {
                1.0
            } else {
                0.0
            }
        }
        // Ring (annulus).
        4 => {
            let band = (p.size * 0.3).max(1.5);
            (1.0 - ((r - p.size).abs() - band).max(0.0)).clamp(0.0, 1.0)
        }
        // Horizontal stripes.
        5 => {
            if ((y + p.phase) / 4.0).floor() as i64 % 2 == 0 {
                1.0
            } else {
                0.0
            }
        }
        // Vertical stripes.
        6 => {
            if ((x + p.phase) / 4.0).floor() as i64 % 2 == 0 {
                1.0
            } else {
                0.0
            }
        }
        // Checkerboard.
        7 => {
            let cell = 5.0;
            let cx = ((x + p.phase) / cell).floor() as i64;
            let cy = ((y + p.phase) / cell).floor() as i64;
            if (cx + cy) % 2 == 0 {
                1.0
            } else {
                0.0
            }
        }
        // Diagonal stripe band.
        8 => {
            let d = (dx + dy).abs() / std::f32::consts::SQRT_2;
            ((p.size * 0.6 - d) * 0.5).clamp(0.0, 1.0)
        }
        // Grid of dots.
        9 => {
            let cell = 7.0;
            let lx = (x + p.phase).rem_euclid(cell) - cell / 2.0;
            let ly = (y + p.phase).rem_euclid(cell) - cell / 2.0;
            let rr = (lx * lx + ly * ly).sqrt();
            ((2.2 - rr) * 0.9).clamp(0.0, 1.0)
        }
        _ => unreachable!("class out of range"),
    }
}

fn render_object(class: usize, rng: &mut TensorRng) -> Vec<f32> {
    let (br, bg, bb) = BASE_COLORS[class];
    let jitter = |rng: &mut TensorRng, v: f32| (v + rng.uniform(-0.15, 0.15)).clamp(0.05, 1.0);
    let p = Params {
        cx: SIDE as f32 / 2.0 + rng.uniform(-4.0, 4.0),
        cy: SIDE as f32 / 2.0 + rng.uniform(-4.0, 4.0),
        size: rng.uniform(7.0, 11.0),
        color: (jitter(rng, br), jitter(rng, bg), jitter(rng, bb)),
        phase: rng.uniform(0.0, 8.0),
    };
    let bg_level = rng.uniform(0.05, 0.25);
    let noise = rng.uniform(0.02, 0.08);
    let mut img = vec![0.0f32; 3 * SIDE * SIDE];
    for y in 0..SIDE {
        for x in 0..SIDE {
            let v = shape_value(class, x as f32, y as f32, &p);
            let idx = y * SIDE + x;
            let chans = [p.color.0, p.color.1, p.color.2];
            for (c, &col) in chans.iter().enumerate() {
                let base = bg_level + rng.normal_with(0.0, noise);
                let val = base * (1.0 - v) + col * v + rng.normal_with(0.0, noise);
                img[c * SIDE * SIDE + idx] = val.clamp(0.0, 1.0);
            }
        }
    }
    img
}

/// Generates a `SynthObjects` dataset of `n` examples.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use qsnc_data::synth_objects;
/// use qsnc_tensor::TensorRng;
///
/// let mut rng = TensorRng::seed(1);
/// let data = synth_objects(50, &mut rng);
/// assert_eq!(data.example_dims(), [3, 32, 32]);
/// ```
pub fn synth_objects(n: usize, rng: &mut TensorRng) -> Dataset {
    assert!(n > 0, "dataset size must be positive");
    let mut data = Vec::with_capacity(n * 3 * SIDE * SIDE);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let class = rng.index(CLASSES);
        data.extend(render_object(class, rng));
        labels.push(class);
    }
    Dataset::new(
        Tensor::from_vec(data, [n, 3, SIDE, SIDE]),
        labels,
        CLASSES,
    )
}

/// Generates the **hard** variant of the object task: smaller shapes,
/// random distractor shapes drawn in *other classes'* colors, an occluding
/// bar, and stronger noise. Float-trained networks plateau well below 100%
/// here, mirroring the CIFAR-10 regime of the paper more closely than the
/// clean task.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn synth_objects_hard(n: usize, rng: &mut TensorRng) -> Dataset {
    assert!(n > 0, "dataset size must be positive");
    let mut data = Vec::with_capacity(n * 3 * SIDE * SIDE);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let class = rng.index(CLASSES);
        let mut img = render_object(class, rng);

        // Overlay 1–2 distractor shapes at reduced opacity, in a color
        // belonging to a *different* class.
        let distractors = 1 + rng.index(2);
        for _ in 0..distractors {
            let other = (class + 1 + rng.index(CLASSES - 1)) % CLASSES;
            let (dr, dg, db) = BASE_COLORS[other];
            let p = Params {
                cx: rng.uniform(4.0, SIDE as f32 - 4.0),
                cy: rng.uniform(4.0, SIDE as f32 - 4.0),
                size: rng.uniform(3.0, 6.0),
                color: (dr, dg, db),
                phase: rng.uniform(0.0, 8.0),
            };
            // Distractors use geometric classes only (0..5) so texture
            // classes stay identifiable by their global pattern.
            let shape_class = rng.index(5);
            let alpha = rng.uniform(0.35, 0.6);
            let chans = [p.color.0, p.color.1, p.color.2];
            for y in 0..SIDE {
                for x in 0..SIDE {
                    let v = shape_value(shape_class, x as f32, y as f32, &p) * alpha;
                    if v > 0.0 {
                        let idx = y * SIDE + x;
                        for (c, &col) in chans.iter().enumerate() {
                            let pix = &mut img[c * SIDE * SIDE + idx];
                            *pix = (*pix * (1.0 - v) + col * v).clamp(0.0, 1.0);
                        }
                    }
                }
            }
        }

        // Occluding bar.
        if rng.chance(0.7) {
            let vertical = rng.chance(0.5);
            let pos = rng.index(SIDE - 4);
            let width = 2 + rng.index(3);
            let level = rng.uniform(0.0, 0.3);
            for t in 0..SIDE {
                for k in 0..width {
                    let (x, y) = if vertical { (pos + k, t) } else { (t, pos + k) };
                    let idx = y * SIDE + x;
                    for c in 0..3 {
                        img[c * SIDE * SIDE + idx] = level;
                    }
                }
            }
        }

        // Stronger pixel noise.
        for v in &mut img {
            *v = (*v + rng.normal_with(0.0, 0.12)).clamp(0.0, 1.0);
        }

        data.extend(img);
        labels.push(class);
    }
    Dataset::new(
        Tensor::from_vec(data, [n, 3, SIDE, SIDE]),
        labels,
        CLASSES,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let a = synth_objects(10, &mut TensorRng::seed(7));
        let b = synth_objects(10, &mut TensorRng::seed(7));
        assert_eq!(a.images(), b.images());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn pixel_range_is_unit_interval() {
        let d = synth_objects(20, &mut TensorRng::seed(1));
        assert!(d.images().min() >= 0.0);
        assert!(d.images().max() <= 1.0);
    }

    #[test]
    fn all_classes_appear() {
        let d = synth_objects(400, &mut TensorRng::seed(2));
        let mut seen = [false; CLASSES];
        for &l in d.labels() {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn classes_have_distinct_mean_images() {
        // Average several examples per class; the class means must differ
        // pairwise, otherwise the task carries no signal.
        let mut rng = TensorRng::seed(3);
        let mut means: Vec<Vec<f32>> = Vec::new();
        for class in 0..CLASSES {
            let mut acc = vec![0.0f32; 3 * SIDE * SIDE];
            for _ in 0..8 {
                for (a, v) in acc.iter_mut().zip(render_object(class, &mut rng)) {
                    *a += v / 8.0;
                }
            }
            means.push(acc);
        }
        for i in 0..CLASSES {
            for j in (i + 1)..CLASSES {
                let dist: f32 = means[i]
                    .iter()
                    .zip(means[j].iter())
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum::<f32>()
                    .sqrt();
                assert!(dist > 1.0, "classes {i} and {j} indistinguishable (d={dist})");
            }
        }
    }

    #[test]
    fn hard_variant_deterministic_and_shaped() {
        let a = synth_objects_hard(20, &mut TensorRng::seed(9));
        let b = synth_objects_hard(20, &mut TensorRng::seed(9));
        assert_eq!(a.images(), b.images());
        assert_eq!(a.example_dims(), [3, 32, 32]);
        assert!(a.images().min() >= 0.0 && a.images().max() <= 1.0);
    }

    #[test]
    fn hard_variant_differs_from_clean() {
        // The hard generator consumes extra randomness (clutter, occluder,
        // noise), so even the first example's pixels must differ.
        let clean = synth_objects(10, &mut TensorRng::seed(4));
        let hard = synth_objects_hard(10, &mut TensorRng::seed(4));
        assert_eq!(clean.labels()[0], hard.labels()[0], "first class draw matches");
        assert_ne!(clean.images(), hard.images());
    }

    #[test]
    fn hard_variant_keeps_all_classes() {
        let d = synth_objects_hard(400, &mut TensorRng::seed(6));
        let mut seen = [false; CLASSES];
        for &l in d.labels() {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shapes_fill_nontrivial_area() {
        let mut rng = TensorRng::seed(4);
        for class in 0..CLASSES {
            let img = render_object(class, &mut rng);
            let bright = img.iter().filter(|&&v| v > 0.5).count();
            assert!(
                bright > 30,
                "class {class} renders almost nothing ({bright} bright px)"
            );
        }
    }
}
