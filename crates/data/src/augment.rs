//! Image augmentation operators over [`Dataset`]s.
//!
//! Deterministic (seeded) augmentation used to harden the synthetic tasks
//! and by the training flows that want extra regularization: horizontal
//! flips, pad-and-crop translations, and cutout occlusion.

use crate::dataset::Dataset;
use qsnc_tensor::{Tensor, TensorRng};

fn example_view(images: &Tensor, i: usize) -> &[f32] {
    let stride: usize = images.dims()[1..].iter().product();
    &images.as_slice()[i * stride..(i + 1) * stride]
}

/// Horizontally mirrors one `[c, h, w]` example buffer.
fn flip_h(src: &[f32], c: usize, h: usize, w: usize, dst: &mut Vec<f32>) {
    for ic in 0..c {
        for y in 0..h {
            for x in 0..w {
                dst.push(src[(ic * h + y) * w + (w - 1 - x)]);
            }
        }
    }
}

/// Shifts one example by `(dx, dy)` with zero fill.
fn shift(src: &[f32], c: usize, h: usize, w: usize, dx: i32, dy: i32, dst: &mut Vec<f32>) {
    for ic in 0..c {
        for y in 0..h {
            for x in 0..w {
                let sx = x as i32 - dx;
                let sy = y as i32 - dy;
                let v = if sx >= 0 && sx < w as i32 && sy >= 0 && sy < h as i32 {
                    src[(ic * h + sy as usize) * w + sx as usize]
                } else {
                    0.0
                };
                dst.push(v);
            }
        }
    }
}

/// Zeroes a random `size × size` square across all channels (cutout).
#[allow(clippy::too_many_arguments)]
fn cutout(src: &[f32], c: usize, h: usize, w: usize, cx: usize, cy: usize, size: usize, dst: &mut Vec<f32>) {
    let x0 = cx.saturating_sub(size / 2);
    let y0 = cy.saturating_sub(size / 2);
    let x1 = (x0 + size).min(w);
    let y1 = (y0 + size).min(h);
    for ic in 0..c {
        for y in 0..h {
            for x in 0..w {
                let inside = x >= x0 && x < x1 && y >= y0 && y < y1;
                dst.push(if inside { 0.0 } else { src[(ic * h + y) * w + x] });
            }
        }
    }
}

/// Augmentation configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AugmentConfig {
    /// Probability of a horizontal flip.
    pub flip_prob: f32,
    /// Maximum |shift| in pixels for random translation (0 disables).
    pub max_shift: i32,
    /// Edge length of the cutout square (0 disables).
    pub cutout_size: usize,
    /// Probability of applying cutout.
    pub cutout_prob: f32,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        AugmentConfig {
            flip_prob: 0.5,
            max_shift: 2,
            cutout_size: 6,
            cutout_prob: 0.3,
        }
    }
}

/// Produces an augmented copy of `data`: each example receives the
/// configured random transformations (labels unchanged).
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn augment(data: &Dataset, config: &AugmentConfig, rng: &mut TensorRng) -> Dataset {
    assert!(!data.is_empty(), "cannot augment an empty dataset");
    let [c, h, w] = data.example_dims();
    let n = data.len();
    let mut out = Vec::with_capacity(n * c * h * w);
    let mut scratch = Vec::with_capacity(c * h * w);
    for i in 0..n {
        let mut current: Vec<f32> = example_view(data.images(), i).to_vec();
        if config.flip_prob > 0.0 && rng.chance(config.flip_prob) {
            scratch.clear();
            flip_h(&current, c, h, w, &mut scratch);
            std::mem::swap(&mut current, &mut scratch);
        }
        if config.max_shift > 0 {
            let dx = rng.index((2 * config.max_shift + 1) as usize) as i32 - config.max_shift;
            let dy = rng.index((2 * config.max_shift + 1) as usize) as i32 - config.max_shift;
            if dx != 0 || dy != 0 {
                scratch.clear();
                shift(&current, c, h, w, dx, dy, &mut scratch);
                std::mem::swap(&mut current, &mut scratch);
            }
        }
        if config.cutout_size > 0 && rng.chance(config.cutout_prob) {
            let cx = rng.index(w);
            let cy = rng.index(h);
            scratch.clear();
            cutout(&current, c, h, w, cx, cy, config.cutout_size, &mut scratch);
            std::mem::swap(&mut current, &mut scratch);
        }
        out.extend_from_slice(&current);
    }
    Dataset::new(
        Tensor::from_vec(out, [n, c, h, w]),
        data.labels().to_vec(),
        data.classes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        // 2 examples of 1×4×4 with recognizable content.
        let mut data = Vec::new();
        for i in 0..2 {
            for p in 0..16 {
                data.push((i * 16 + p) as f32);
            }
        }
        Dataset::new(Tensor::from_vec(data, [2, 1, 4, 4]), vec![0, 1], 2)
    }

    #[test]
    fn augment_preserves_shape_and_labels() {
        let d = toy();
        let mut rng = TensorRng::seed(0);
        let a = augment(&d, &AugmentConfig::default(), &mut rng);
        assert_eq!(a.len(), d.len());
        assert_eq!(a.example_dims(), d.example_dims());
        assert_eq!(a.labels(), d.labels());
    }

    #[test]
    fn augment_is_deterministic_by_seed() {
        let d = toy();
        let a = augment(&d, &AugmentConfig::default(), &mut TensorRng::seed(5));
        let b = augment(&d, &AugmentConfig::default(), &mut TensorRng::seed(5));
        assert_eq!(a.images(), b.images());
    }

    #[test]
    fn disabled_config_is_identity() {
        let d = toy();
        let cfg = AugmentConfig {
            flip_prob: 0.0,
            max_shift: 0,
            cutout_size: 0,
            cutout_prob: 0.0,
        };
        let a = augment(&d, &cfg, &mut TensorRng::seed(1));
        assert_eq!(a.images(), d.images());
    }

    #[test]
    fn flip_reverses_rows() {
        let d = toy();
        let cfg = AugmentConfig {
            flip_prob: 1.0,
            max_shift: 0,
            cutout_size: 0,
            cutout_prob: 0.0,
        };
        let a = augment(&d, &cfg, &mut TensorRng::seed(2));
        // First row of first example: 0 1 2 3 → 3 2 1 0.
        assert_eq!(&a.images().as_slice()[..4], &[3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn shift_fills_with_zeros() {
        let d = toy();
        let cfg = AugmentConfig {
            flip_prob: 0.0,
            max_shift: 3,
            cutout_size: 0,
            cutout_prob: 0.0,
        };
        let mut rng = TensorRng::seed(3);
        let a = augment(&d, &cfg, &mut rng);
        // Any shifted example should contain zeros from the fill (the toy
        // content has no zeros except the very first pixel).
        let zeros = a.images().count(|v| v == 0.0);
        assert!(zeros >= 1);
    }

    #[test]
    fn cutout_zeroes_a_square() {
        let d = toy();
        let cfg = AugmentConfig {
            flip_prob: 0.0,
            max_shift: 0,
            cutout_size: 2,
            cutout_prob: 1.0,
        };
        let a = augment(&d, &cfg, &mut TensorRng::seed(4));
        let zeros_after = a.images().count(|v| v == 0.0);
        let zeros_before = d.images().count(|v| v == 0.0);
        assert!(zeros_after > zeros_before);
    }
}
