//! Cold-start benchmark for the versioned `.qsnca` deployment artifact.
//!
//! The artifact exists so serve workers can reach first-inference without
//! touching the training stack: no topology rebuild, no checkpoint parse,
//! no weight re-clustering, no crossbar compile. This bench measures that
//! claim directly on the paper's flagship deployment (4-bit LeNet):
//!
//! 1. **Compile path** — quantize + `SpikingNetwork::compile` from an
//!    in-memory float network, the cost a worker pays without an artifact
//!    (training itself excluded, so this is a *lower bound* on the saving).
//! 2. **Cold start** — `load_artifact` (single `read` + strict decode)
//!    plus the first inference, measured from a cold handle each rep.
//!
//! Both are reported as the minimum over repetitions: scheduler noise on a
//! shared host is one-sided, so the fastest rep is the closest estimate of
//! the code itself. The bench asserts the acceptance gate — cold start
//! under 1 ms — and verifies the loaded engine is bit-identical to the
//! in-process one before timing anything.
//!
//! With `QSNC_BENCH_JSON` set, appends one JSON line with the cold-start
//! latency, its load/infer split, the compile-path time, and the speedup.
//!
//! Usage: `artifact_cold_start [reps]` (default 100).

use std::io::Write as _;
use std::time::Instant;

use qsnc_core::report::{Report, Table};
use qsnc_memristor::{load_artifact, save_artifact, DeployConfig, Provenance, SpikingNetwork};
use qsnc_nn::models;
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    WeightQuantMethod,
};
use qsnc_tensor::{init, Tensor, TensorRng};

/// The acceptance gate: open + decode + first inference, in microseconds.
const COLD_START_GATE_US: f64 = 1_000.0;

/// Builds the quantized 4-bit LeNet float network the compile path starts
/// from. Weights are randomly initialized — compile cost does not depend
/// on the weight values, only the topology.
fn quantized_lenet() -> qsnc_nn::Sequential {
    let mut rng = TensorRng::seed(0xC01D);
    let mut net = models::lenet(0.5, 10, &mut rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(4),
        0.0,
        ActivationQuantizer::new(4),
    );
    switch.set_enabled(true);
    quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
    net
}

fn compile(net: &qsnc_nn::Sequential) -> SpikingNetwork {
    let deploy = DeployConfig::paper(4, 4);
    let snn = SpikingNetwork::compile(net, &deploy, None).expect("compile");
    assert!(snn.has_fast_path(), "4-bit LeNet must compile the integer engine");
    snn
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);

    let net = quantized_lenet();
    let snn = compile(&net);
    let provenance = Provenance {
        checkpoint_digest: 0,
        weight_bits: 4,
        activation_bits: 4,
        model: "lenet".to_string(),
    };
    let path = std::env::temp_dir().join(format!("qsnc_cold_start_{}.qsnca", std::process::id()));
    save_artifact(&snn, &[1, 28, 28], &provenance, &path).expect("write artifact");
    let artifact_bytes = std::fs::metadata(&path).expect("artifact metadata").len();

    // Correctness before speed: the loaded engine must reproduce the
    // in-process engine bit-for-bit on several inputs.
    let mut rng = TensorRng::seed(7);
    let loaded = load_artifact(&path).expect("load artifact");
    for _ in 0..8 {
        let x = init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        assert!(snn.infer_into(&x, &mut a), "compiled engine lost its fast path");
        assert!(loaded.network.infer_into(&x, &mut b), "loaded engine has no fast path");
        assert!(
            a.iter().zip(&b).all(|(p, q)| p.to_bits() == q.to_bits()),
            "loaded artifact is not bit-identical to the in-process engine"
        );
    }
    drop(loaded);

    let probe: Tensor = init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng);

    // Compile path: what a worker pays to reach an engine without the
    // artifact (training excluded — this is a lower bound on the saving).
    let compile_us = (0..reps.div_ceil(10).max(3))
        .map(|_| {
            let t0 = Instant::now();
            let snn = compile(&net);
            let mut out = Vec::new();
            snn.infer_into(&probe, &mut out);
            t0.elapsed().as_secs_f64() * 1e6
        })
        .fold(f64::INFINITY, f64::min);

    // Cold start: open + decode + first inference, from a cold handle.
    let (mut load_us, mut infer_us, mut cold_us) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        let loaded = load_artifact(&path).expect("load artifact");
        let loaded_at = t0.elapsed().as_secs_f64() * 1e6;
        let mut out = Vec::new();
        assert!(loaded.network.infer_into(&probe, &mut out));
        let total = t0.elapsed().as_secs_f64() * 1e6;
        if total < cold_us {
            cold_us = total;
            load_us = loaded_at;
            infer_us = total - loaded_at;
        }
    }
    let _ = std::fs::remove_file(&path);

    let speedup = compile_us / cold_us;
    let mut table = Table::new(
        "artifact cold start — 4-bit LeNet, best of reps",
        &["Path", "Time (µs)"],
    );
    table.row(&["compile + first inference".to_string(), format!("{compile_us:.0}")]);
    table.row(&["artifact load".to_string(), format!("{load_us:.0}")]);
    table.row(&["first inference".to_string(), format!("{infer_us:.0}")]);
    table.row(&["cold start (load + infer)".to_string(), format!("{cold_us:.0}")]);

    let mut report = Report::new("artifact cold start");
    report
        .table(table)
        .note(format!(
            "artifact: {artifact_bytes} bytes; cold start {cold_us:.0}µs = {speedup:.1}x \
             faster than compiling in-process ({reps} reps, min)"
        ))
        .note("loaded engine verified bit-identical to the in-process engine before timing");
    report.emit();

    assert!(
        cold_us < COLD_START_GATE_US,
        "cold start {cold_us:.0}µs exceeds the {COLD_START_GATE_US:.0}µs gate"
    );
    assert!(
        speedup > 1.0,
        "artifact load ({cold_us:.0}µs) must beat in-process compile ({compile_us:.0}µs)"
    );

    if let Ok(path) = std::env::var("QSNC_BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                f,
                "{{\"name\": \"artifact_cold_start\", \"reps\": {reps}, \
                 \"artifact_bytes\": {artifact_bytes}, \"cold_start_us\": {cold_us:.1}, \
                 \"load_us\": {load_us:.1}, \"first_infer_us\": {infer_us:.1}, \
                 \"compile_us\": {compile_us:.1}, \"speedup\": {speedup:.2}, \
                 \"gate_us\": {COLD_START_GATE_US:.0}}}"
            );
        }
    }
}
