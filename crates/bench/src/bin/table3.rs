//! Regenerates **Table 3**: accuracy after *weight* quantization, with and
//! without Weight Clustering. Inter-layer signals stay fp32.
//!
//! ```bash
//! cargo run -p qsnc-bench --bin table3 --release
//! ```

use qsnc_bench::{
    recovery_row, restore_weights, snapshot_weights, Workload, SEED, TABLE_BITS,
};
use qsnc_core::report::{pct, Report, Table};
use qsnc_core::train_float;
use qsnc_nn::train::evaluate;
use qsnc_nn::ModelKind;
use qsnc_quant::{quantize_network_weights, WeightQuantMethod};

fn main() {
    let mut report = Report::new("Table 3 — weight quantization (signals fp32)");
    for kind in [ModelKind::Lenet, ModelKind::Alexnet, ModelKind::Resnet] {
        let w = Workload::standard(kind);
        let test_batches = w.test.batches(64, None);

        eprintln!("[{kind}] training fp32 baseline…");
        let (mut net, ideal) = train_float(kind, w.width, &w.settings, &w.train, &w.test, SEED);
        let snapshot = snapshot_weights(&mut net);

        let mut table = Table::new(
            format!("Table 3 — {kind}: weight quantization (signals fp32), ideal {}", pct(ideal)),
            &["Bits", "w/o (direct)", "w/ (clustered)", "Recovered acc.", "Acc. drop"],
        );
        for bits in TABLE_BITS {
            restore_weights(&mut net, &snapshot);
            quantize_network_weights(&mut net, bits, WeightQuantMethod::DirectFixedPoint);
            let without = evaluate(&mut net, &test_batches);

            restore_weights(&mut net, &snapshot);
            quantize_network_weights(&mut net, bits, WeightQuantMethod::Clustered);
            let with = evaluate(&mut net, &test_batches);

            recovery_row(&mut table, bits, without, with, ideal);
        }
        report.table(table);
    }
    report
        .note("paper Table 3 (MNIST/CIFAR-10): e.g. Lenet 3-bit w/o 94.52% → w/ 97.79%;")
        .note("Resnet 3-bit w/o 29% → w/ 88.1% (clustering recovers most of the loss).");
    report.emit();
}
