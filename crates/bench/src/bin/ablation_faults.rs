//! Extension ablation: robustness of the deployed 4-bit system to
//! memristor device faults and programming variation.
//!
//! Not a table in the paper itself, but the direct follow-up its authors
//! cite (ref. \[16\], "Rescuing memristor-based neuromorphic design with high
//! defects"): how fast does accuracy degrade with stuck-at faults and
//! write variation?
//!
//! ```bash
//! cargo run -p qsnc-bench --bin ablation_faults --release
//! ```

use qsnc_bench::{restore_weights, snapshot_weights, Workload, SEED};
use qsnc_core::report::{pct, Report, Table};
use qsnc_core::{train_quant_aware, QuantConfig};
use qsnc_memristor::{DeployConfig, SpikingNetwork};
use qsnc_nn::train::evaluate;
use qsnc_nn::ModelKind;
use qsnc_quant::{inject_network_faults, FaultModel};
use qsnc_tensor::TensorRng;

fn main() {
    let w = Workload::standard(ModelKind::Lenet);
    let test_batches = w.test.batches(64, None);
    eprintln!("training 4-bit quantization-aware LeNet…");
    let quant = QuantConfig::paper(4, 4);
    let model =
        train_quant_aware(ModelKind::Lenet, w.width, &w.settings, &quant, &w.train, &w.test, SEED);
    let mut report = Report::new("Ablation — device faults and write variation");
    report.note(format!("clean 4-bit accuracy: {}", pct(model.quantized_accuracy)));

    let mut net = model.net;
    let snapshot = snapshot_weights(&mut net);

    // Software-level fault injection (weights zeroed / saturated).
    let mut faults = Table::new(
        "Stuck-at fault sweep (4-bit LeNet, mean of 3 seeds)",
        &["Fault rate", "Stuck-at-0 acc.", "Stuck-at-max acc."],
    );
    for rate in [0.001f32, 0.005, 0.01, 0.05, 0.1] {
        let mut acc0 = 0.0;
        let mut acc_max = 0.0;
        for seed in 0..3u64 {
            let mut rng = TensorRng::seed(1000 + seed);
            restore_weights(&mut net, &snapshot);
            inject_network_faults(&mut net, FaultModel::StuckAtZero { rate }, &mut rng);
            acc0 += evaluate(&mut net, &test_batches) / 3.0;

            let mut rng = TensorRng::seed(2000 + seed);
            restore_weights(&mut net, &snapshot);
            inject_network_faults(&mut net, FaultModel::StuckAtMax { rate }, &mut rng);
            acc_max += evaluate(&mut net, &test_batches) / 3.0;
        }
        faults.row(&[format!("{:.1}%", rate * 100.0), pct(acc0), pct(acc_max)]);
    }
    restore_weights(&mut net, &snapshot);
    report.table(faults);

    // Device-level programming variation through the spiking pipeline.
    let mut variation = Table::new(
        "Write-variation sweep (4-bit LeNet on the spiking substrate, ~100 examples)",
        &["σ (ln g)", "Spiking accuracy"],
    );
    let sample = &test_batches[..2];
    for sigma in [0.0f32, 0.02, 0.05, 0.1, 0.2, 0.4] {
        let mut cfg = DeployConfig::paper(4, 4);
        cfg.device = cfg.device.with_noise(sigma, 0.0);
        let mut rng = TensorRng::seed(31);
        let snn = SpikingNetwork::compile(&net, &cfg, Some(&mut rng)).expect("compile");
        let acc = snn.evaluate(sample, None);
        variation.row(&[format!("{sigma:.2}"), pct(acc)]);
    }
    report
        .table(variation)
        .note("expected: graceful degradation — small fault rates and σ ≤ 0.1 cost little;")
        .note("stuck-at-max hurts more than stuck-at-0 (sparse signals tolerate missing")
        .note("synapses better than saturated ones).");
    report.emit();
}
