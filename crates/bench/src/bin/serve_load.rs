//! Load generator for the `qsnc-serve` batched inference server.
//!
//! Spawns the server in-process on an ephemeral port serving the 4-bit
//! LeNet (the paper's flagship deployment), then drives it with closed-loop
//! TCP clients — each sends a request, waits for the reply, repeats. Sweeps
//! several client counts and reports throughput plus p50/p99 latency per
//! sweep, which is where dynamic micro-batching shows up: more concurrent
//! clients → fuller batches → higher throughput at bounded latency.
//!
//! **Honest caveat:** generator and server share this process and (in the
//! single-core deployment configuration) one core, so client-side encode/
//! decode steals CPU from the engine. Absolute numbers are a lower bound;
//! the trend across client counts is the reproducible signal.
//!
//! With `QSNC_BENCH_JSON` set, appends one JSON line per client count.
//!
//! Usage: `serve_load [shots-per-client]` (default 200).

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qsnc_core::report::{Report, Table};
use qsnc_memristor::{DeployConfig, SpikingNetwork};
use qsnc_nn::models;
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    WeightQuantMethod,
};
use qsnc_serve::protocol::{self, Status};
use qsnc_serve::{ServeConfig, Server};
use qsnc_tensor::{init, TensorRng};

const CLIENT_COUNTS: [usize; 3] = [1, 4, 16];

struct Sweep {
    clients: usize,
    ok: usize,
    busy: usize,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64
}

fn run_sweep(addr: std::net::SocketAddr, clients: usize, shots: usize) -> Sweep {
    let start = Instant::now();
    let mut handles = Vec::new();
    for client in 0..clients {
        handles.push(std::thread::spawn(move || {
            let mut rng = TensorRng::seed(0xC11E17 + client as u64);
            let input: Vec<f32> = init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng)
                .as_slice()
                .to_vec();
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(60)))
                .expect("read timeout");
            let mut latencies = Vec::with_capacity(shots);
            let mut ok = 0usize;
            let mut busy = 0usize;
            for _ in 0..shots {
                let t0 = Instant::now();
                protocol::write_request(&mut stream, &input).expect("write");
                let reply = protocol::read_reply(&mut stream).expect("reply");
                match reply.status {
                    Status::Ok => {
                        ok += 1;
                        latencies.push(t0.elapsed().as_micros() as u64);
                    }
                    Status::Busy => busy += 1,
                    other => panic!("unexpected reply status {other:?}"),
                }
            }
            (latencies, ok, busy)
        }));
    }
    let mut latencies = Vec::new();
    let mut ok = 0usize;
    let mut busy = 0usize;
    for h in handles {
        let (l, o, b) = h.join().expect("client thread");
        latencies.extend(l);
        ok += o;
        busy += b;
    }
    let wall = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    Sweep {
        clients,
        ok,
        busy,
        throughput_rps: ok as f64 / wall,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    }
}

fn main() {
    let shots: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);

    let mut rng = TensorRng::seed(0);
    let mut net = models::lenet(0.5, 10, &mut rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(4),
        0.0,
        ActivationQuantizer::new(4),
    );
    switch.set_enabled(true);
    quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
    let deploy = DeployConfig::paper(4, 4);
    let snn = SpikingNetwork::compile(&net, &deploy, None).expect("compile");
    assert!(snn.has_fast_path(), "4-bit LeNet must compile the integer engine");

    let config = ServeConfig::from_env();
    let server = Server::spawn(Arc::new(snn), &[1, 28, 28], "127.0.0.1:0", config)
        .expect("spawn server");
    let addr = server.local_addr();

    let mut table = Table::new(
        "qsnc-serve load sweep — 4-bit LeNet, closed-loop clients",
        &["Clients", "Ok", "Busy", "Throughput (req/s)", "p50 (µs)", "p99 (µs)"],
    );
    let mut sweeps = Vec::new();
    for &clients in &CLIENT_COUNTS {
        // A short untimed warm-up so worker scratch arenas and per-batch
        // tensors are sized before the measured window.
        run_sweep(addr, clients, shots.div_ceil(10).max(5));
        let sweep = run_sweep(addr, clients, shots);
        table.row(&[
            format!("{}", sweep.clients),
            format!("{}", sweep.ok),
            format!("{}", sweep.busy),
            format!("{:.1}", sweep.throughput_rps),
            format!("{:.0}", sweep.p50_us),
            format!("{:.0}", sweep.p99_us),
        ]);
        sweeps.push(sweep);
    }
    server.shutdown();

    let mut report = Report::new("qsnc-serve load generator");
    report
        .table(table)
        .note(format!(
            "config: max_batch={}, max_delay_us={}, queue_cap={}, workers={}, {} shots/client",
            config.max_batch, config.max_delay_us, config.queue_cap, config.workers, shots
        ))
        .note("caveat: generator and server share one process (single-core deployment");
    report.note("config), so absolute throughput is a lower bound; the cross-client trend");
    report.note("is the signal. Busy replies are counted, not retried.");
    report.emit();

    if let Ok(path) = std::env::var("QSNC_BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            for s in &sweeps {
                let _ = writeln!(
                    f,
                    "{{\"name\": \"serve_lenet_4bit/clients_{}\", \"ok\": {}, \"busy\": {}, \
                     \"throughput_rps\": {:.1}, \"p50_us\": {:.0}, \"p99_us\": {:.0}}}",
                    s.clients, s.ok, s.busy, s.throughput_rps, s.p50_us, s.p99_us
                );
            }
        }
    }
}
